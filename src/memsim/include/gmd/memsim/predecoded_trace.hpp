#pragma once

/// \file predecoded_trace.hpp
/// A memory-event trace with the per-config preprocessing already done:
/// wide accesses split into word-granular requests, addresses decoded to
/// (channel, rank, bank, row, column), CPU ticks scaled to controller
/// cycles, and 64B endurance line indexes computed.  The decode depends
/// only on the mapping geometry and the two clocks — not on timing,
/// energy, or controller policy — so one predecoded trace feeds every
/// sweep point that shares those fields (e.g. all six NVM tRCD variants
/// of a cell), instead of re-running AddressDecoder::decode per event
/// per config.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "gmd/cpusim/memory_event.hpp"
#include "gmd/memsim/address.hpp"
#include "gmd/memsim/channel.hpp"
#include "gmd/memsim/config.hpp"

namespace gmd::memsim {

/// One channel's share of a partitioned PredecodedTrace: that channel's
/// requests and 64B endurance line indexes, contiguous and in original
/// arrival order.  Replaying slice c against channel c feeds it exactly
/// the subsequence the serial replay would have — the basis of the
/// channel-parallel path's bit-identity.
struct ChannelSlice {
  std::vector<Request> request;
  std::vector<std::uint64_t> line;
  std::size_t size() const { return request.size(); }
};

/// Ready-to-enqueue request stream, one entry per word-granular
/// request, in arrival order.  Replay hands each Request straight to
/// its channel — no per-event assembly left.
struct PredecodedTrace {
  std::vector<Request> request;        ///< Decoded, cycle-stamped.
  std::vector<std::uint32_t> channel;  ///< Target channel per request.
  std::vector<std::uint64_t> line;     ///< 64B line index (endurance).

  /// The decode key this trace was built for (see key()); simulate()
  /// refuses a config with a different key.
  std::string config_key;

  std::size_t size() const { return request.size(); }
  void reserve(std::size_t n);

  /// Splits, scales, and decodes one event onto the end of the arrays.
  /// `decoder` and `ticker` must have been built from `config` (the
  /// ticker carries the incremental tick-scaling state across events).
  void append_event(const MemoryConfig& config, const AddressDecoder& decoder,
                    TickConverter& ticker, const cpusim::MemoryEvent& event);

  /// Predecodes a whole trace for `config`'s decode geometry.
  static PredecodedTrace build(const MemoryConfig& config,
                               std::span<const cpusim::MemoryEvent> trace);

  /// Pull-based chunk source: each call returns the next span of events
  /// (valid until the next call); an empty span ends the stream.  Lets
  /// callers predecode straight off a chunked container (e.g. a GMDT
  /// trace store's ChunkIterator) without materializing the whole event
  /// vector first.
  using EventChunkSource =
      std::function<std::span<const cpusim::MemoryEvent>()>;

  /// Streaming predecode: pulls chunks from `source` until it returns
  /// an empty span.  `size_hint` (total events, if known) pre-sizes the
  /// arrays.  Equivalent to the span overload on the concatenation of
  /// the chunks.
  static PredecodedTrace build(const MemoryConfig& config,
                               const EventChunkSource& source,
                               std::size_t size_hint = 0);

  /// Number of requests routed to each of `num_channels` channels (one
  /// pass over the trace; every stored channel index must be below
  /// `num_channels`).
  std::vector<std::size_t> channel_event_counts(
      std::uint32_t num_channels) const;

  /// Per-channel partition of the trace, built on first use and cached
  /// on the shared heap object, so one build serves the parallel replay
  /// of every sweep point sharing this trace (thread-safe: concurrent
  /// callers synchronize on the build).  `num_channels` must match the
  /// decode geometry the trace was built for and must be the same on
  /// every call.
  const std::vector<ChannelSlice>& partition_by_channel(
      std::uint32_t num_channels) const;

  /// The fields the predecode depends on, serialized: mapping scheme,
  /// geometry, access size, and the two clocks.  Configs with equal
  /// keys can share one predecoded trace.
  static std::string key(const MemoryConfig& config);

 private:
  /// Heap-stable lazy partition cache: the struct stays movable (moves
  /// carry the shared_ptr) and copies share the already-built slices.
  struct PartitionCache {
    std::once_flag once;
    std::vector<ChannelSlice> slices;
    std::uint32_t num_channels = 0;
    std::size_t built_size = 0;  ///< Trace size at build; detects staleness.
  };
  std::shared_ptr<PartitionCache> partition_ =
      std::make_shared<PartitionCache>();
};

}  // namespace gmd::memsim
