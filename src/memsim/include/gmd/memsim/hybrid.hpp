#pragma once

/// \file hybrid.hpp
/// Hybrid (DRAM + NVM) main memory: a page-granular router in front of
/// two MemorySystems.  The paper's hybrid configurations combine DRAM
/// and NVM channels under one controller clock with a "fraction of
/// memory" split; here `dram_fraction` of pages (hashed, so both
/// technologies see every access pattern) land in DRAM and the rest in
/// NVM.

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "gmd/cpusim/memory_event.hpp"
#include "gmd/memsim/config.hpp"
#include "gmd/memsim/memory_system.hpp"
#include "gmd/memsim/metrics.hpp"
#include "gmd/memsim/predecoded_trace.hpp"

namespace gmd::memsim {

struct HybridConfig {
  MemoryConfig dram;          ///< DRAM side (dram.channels channels).
  MemoryConfig nvm;           ///< NVM side (nvm.channels channels).
  double dram_fraction = 0.5; ///< Fraction of pages routed to DRAM.
  std::uint32_t page_bytes = 4096;

  /// Hot-page promotion (the NGraph-style hybrid management the paper's
  /// related work describes): after this many accesses to an NVM-resident
  /// page, the page is copied into DRAM — the copy itself is simulated as
  /// page_bytes of NVM reads plus DRAM writes — and served from DRAM
  /// afterwards.  0 disables migration (the paper's static split).
  std::uint32_t migration_threshold = 0;

  std::uint32_t total_channels() const {
    return dram.channels + nvm.channels;
  }
  void validate() const;
};

/// Builds the paper's hybrid preset: `channels` split evenly between a
/// DRAM side and an NVM side, both at `clock_mhz`, NVM tRCD as given.
HybridConfig make_hybrid_config(std::uint32_t channels,
                                std::uint32_t clock_mhz,
                                std::uint32_t cpu_freq_mhz,
                                std::uint32_t nvm_trcd,
                                double dram_fraction = 0.5);

class HybridMemory {
 public:
  explicit HybridMemory(const HybridConfig& config);

  /// Routes one trace event to the owning technology by page.
  void enqueue_event(const cpusim::MemoryEvent& event);

  /// Drains both sides and merges their metrics: channel-level metrics
  /// average over all channels of both technologies, bank-level over
  /// all banks, latencies request-weighted.
  MemoryMetrics finish();

  static MemoryMetrics simulate(const HybridConfig& config,
                                std::span<const cpusim::MemoryEvent> trace);

  /// Fast path over pre-routed, pre-decoded side traces (see
  /// predecode_hybrid).  Only valid for static splits
  /// (migration_threshold == 0), where routing does not depend on the
  /// access history; identical results to the event path.
  static MemoryMetrics simulate(const HybridConfig& config,
                                const PredecodedTrace& dram_trace,
                                const PredecodedTrace& nvm_trace);

  /// True when `address` routes to the DRAM side (static hash or a
  /// promoted hot page).
  bool routes_to_dram(std::uint64_t address) const;

  /// True when `address` hashes to the DRAM side of a static split —
  /// the routing every access gets before any page is promoted.
  static bool static_routes_to_dram(const HybridConfig& config,
                                    std::uint64_t address);

  /// Merges per-side metrics the way finish() reports them: counters
  /// summed, latencies request-weighted, rate metrics channel- or
  /// bank-weighted.
  static MemoryMetrics merge_metrics(const MemoryMetrics& dram,
                                     const MemoryMetrics& nvm);

  /// Pages promoted so far (0 when migration is disabled).
  std::uint64_t pages_migrated() const { return pages_migrated_; }

 private:
  void migrate_page(std::uint64_t page, std::uint64_t tick);

  HybridConfig config_;
  MemorySystem dram_;
  MemorySystem nvm_;
  std::unordered_map<std::uint64_t, std::uint32_t> nvm_page_hits_;
  std::unordered_set<std::uint64_t> promoted_pages_;
  std::uint64_t pages_migrated_ = 0;
};

/// Routes and predecodes a trace for a static-split hybrid config
/// (migration_threshold == 0): returns the {DRAM side, NVM side}
/// request streams ready for HybridMemory::simulate's fast path.  Both
/// sides can be shared by every hybrid point with the same
/// hybrid_trace_key().
std::pair<PredecodedTrace, PredecodedTrace> predecode_hybrid(
    const HybridConfig& config, std::span<const cpusim::MemoryEvent> trace);

/// Sharing key for predecode_hybrid results: both sides' decode keys
/// plus the routing fields (dram_fraction, page_bytes).
std::string hybrid_trace_key(const HybridConfig& config);

}  // namespace gmd::memsim
