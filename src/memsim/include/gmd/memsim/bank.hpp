#pragma once

/// \file bank.hpp
/// Row-buffer state and timing bookkeeping for a single memory bank.
///
/// The simulator is event-driven over requests, not clocked: each bank
/// records the earliest cycle at which its next command classes may
/// start, and the channel controller schedules commands with timestamp
/// algebra against those bounds (the approach of lightweight DRAM
/// models; identical steady-state behaviour to a cycle loop for the
/// command stream NVMain issues).

#include <cstdint>
#include <optional>

namespace gmd::memsim {

struct BankState {
  std::optional<std::uint32_t> open_row;  ///< Row in the row buffer.
  std::uint64_t ready_for_activate = 0;   ///< Earliest ACT start.
  std::uint64_t ready_for_precharge = 0;  ///< Earliest PRE start (tRAS/tWR).
  std::uint64_t ready_for_cas = 0;        ///< Earliest next CAS (tCCD local).
  std::uint64_t last_activate = 0;

  // Statistics.
  std::uint64_t activations = 0;
  std::uint64_t precharges = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t bytes_transferred = 0;
};

}  // namespace gmd::memsim
