#include "gmd/memsim/address.hpp"

#include <algorithm>
#include <bit>

#include "gmd/common/error.hpp"
#include "gmd/common/string_util.hpp"

namespace gmd::memsim {

AddressDecoder::AddressDecoder(const MemoryConfig& config)
    : channels_(config.channels),
      ranks_(config.ranks),
      banks_(config.banks),
      rows_(config.rows),
      columns_per_row_(config.row_bytes /
                       static_cast<std::uint32_t>(config.access_bytes())),
      access_bytes_(config.access_bytes()) {
  GMD_REQUIRE(columns_per_row_ >= 1,
              "row_bytes smaller than one access (" << config.access_bytes()
                                                    << " bytes)");

  // Parse the MSB-to-LSB scheme string into LSB-to-MSB decode order.
  const auto tokens = split(config.address_mapping, ':');
  GMD_REQUIRE(tokens.size() == 5,
              "address mapping '" << config.address_mapping
                                  << "' must have exactly 5 fields");
  std::array<bool, 5> seen{};
  for (std::size_t i = 0; i < 5; ++i) {
    const std::string token = to_lower(trim(tokens[i]));
    Field field;
    if (token == "r") {
      field = Field::kRow;
    } else if (token == "rk") {
      field = Field::kRank;
    } else if (token == "bk") {
      field = Field::kBank;
    } else if (token == "c") {
      field = Field::kColumn;
    } else if (token == "ch") {
      field = Field::kChannel;
    } else {
      throw Error("address mapping field '" + token +
                  "' (expected R, RK, BK, C, or CH)");
    }
    const auto index = static_cast<std::size_t>(field);
    GMD_REQUIRE(!seen[index], "address mapping repeats field '" << token
                                                                << "'");
    seen[index] = true;
    // tokens are MSB first; store reversed.
    lsb_to_msb_[4 - i] = field;
  }

  const auto is_pow2 = [](std::uint64_t v) { return v && (v & (v - 1)) == 0; };
  pow2_ = is_pow2(access_bytes_);
  std::uint32_t shift = 0;
  for (const Field field : lsb_to_msb_) {
    const std::uint32_t size = field_size(field);
    pow2_ = pow2_ && is_pow2(size);
    const auto index = static_cast<std::size_t>(field);
    shift_[index] = shift;
    mask_[index] = size - 1;
    shift += static_cast<std::uint32_t>(std::countr_zero(size));
  }
  access_shift_ = static_cast<std::uint32_t>(std::countr_zero(
      static_cast<std::uint32_t>(access_bytes_)));
}

std::uint32_t AddressDecoder::field_size(Field field) const {
  switch (field) {
    case Field::kRow:
      return rows_;
    case Field::kRank:
      return ranks_;
    case Field::kBank:
      return banks_;
    case Field::kColumn:
      return columns_per_row_;
    case Field::kChannel:
      return channels_;
  }
  return 1;
}

DecodedAddress AddressDecoder::decode(std::uint64_t address) const {
  if (pow2_) {
    // Power-of-two geometry: each field is a bit slice (the shift/mask
    // pair computes exactly the division/modulo of the general path).
    const std::uint64_t unit = address >> access_shift_;
    const auto field = [&](Field f) {
      const auto i = static_cast<std::size_t>(f);
      return static_cast<std::uint32_t>(unit >> shift_[i]) & mask_[i];
    };
    DecodedAddress out;
    out.row = field(Field::kRow);
    out.rank = field(Field::kRank);
    out.bank = field(Field::kBank);
    out.column = field(Field::kColumn);
    out.channel = field(Field::kChannel);
    return out;
  }
  std::uint64_t unit = address / access_bytes_;
  DecodedAddress out;
  for (const Field field : lsb_to_msb_) {
    const std::uint32_t size = field_size(field);
    const auto value = static_cast<std::uint32_t>(unit % size);
    unit /= size;
    switch (field) {
      case Field::kRow:
        out.row = value;
        break;
      case Field::kRank:
        out.rank = value;
        break;
      case Field::kBank:
        out.bank = value;
        break;
      case Field::kColumn:
        out.column = value;
        break;
      case Field::kChannel:
        out.channel = value;
        break;
    }
  }
  // Addresses beyond capacity alias into the top field via the modulo
  // above; nothing else to do.
  return out;
}

std::string AddressDecoder::scheme() const {
  std::string out;
  for (std::size_t i = 5; i > 0; --i) {
    switch (lsb_to_msb_[i - 1]) {
      case Field::kRow:
        out += "R";
        break;
      case Field::kRank:
        out += "RK";
        break;
      case Field::kBank:
        out += "BK";
        break;
      case Field::kColumn:
        out += "C";
        break;
      case Field::kChannel:
        out += "CH";
        break;
    }
    if (i > 1) out += ":";
  }
  return out;
}

}  // namespace gmd::memsim
