#include "gmd/memsim/config.hpp"

#include <bit>

#include "gmd/common/error.hpp"

namespace gmd::memsim {

std::string to_string(DeviceType type) {
  return type == DeviceType::kDram ? "DRAM" : "NVM";
}

void MemoryConfig::validate() const {
  GMD_REQUIRE(channels >= 1, "need at least one channel");
  GMD_REQUIRE(ranks >= 1, "need at least one rank");
  GMD_REQUIRE(banks >= 1, "need at least one bank per rank");
  GMD_REQUIRE(rows >= 1, "need at least one row");
  GMD_REQUIRE(std::has_single_bit(row_bytes), "row_bytes must be a power of two");
  GMD_REQUIRE(std::has_single_bit(bus_bytes), "bus_bytes must be a power of two");
  GMD_REQUIRE(clock_mhz >= 1, "controller clock must be positive");
  GMD_REQUIRE(cpu_freq_mhz >= 1, "CPU clock must be positive");
  GMD_REQUIRE(timing.tBURST >= 1, "tBURST must be positive");
  GMD_REQUIRE(timing.tCAS >= 1, "tCAS must be positive");
  GMD_REQUIRE(queue_depth >= 1, "queue_depth must be positive");
  GMD_REQUIRE((timing.tRFC == 0) == (timing.tREFI == 0),
              "tRFC and tREFI must both be zero (no refresh) or both set");
  if (timing.tREFI != 0) {
    GMD_REQUIRE(timing.tREFI > timing.tRFC,
                "tREFI must exceed tRFC or the device only refreshes");
  }
}

MemoryConfig make_dram_config(std::uint32_t channels, std::uint32_t clock_mhz,
                              std::uint32_t cpu_freq_mhz) {
  MemoryConfig config;
  config.name = "dram";
  config.device = DeviceType::kDram;
  config.channels = channels;
  config.clock_mhz = clock_mhz;
  config.cpu_freq_mhz = cpu_freq_mhz;

  // Paper values: tRAS = 24, tRCD = 9 for DRAM.
  config.timing.tRCD = 9;
  config.timing.tRAS = 24;
  config.timing.tRP = 9;
  config.timing.tCAS = 9;
  config.timing.tBURST = 4;
  config.timing.tWR = 10;
  config.timing.tCCD = 4;
  // Refresh: ~7.8us interval, ~350ns cycle, expressed in controller
  // cycles for the configured clock.
  config.timing.tREFI =
      static_cast<std::uint32_t>(7800ULL * clock_mhz / 1000);  // 7.8us
  config.timing.tRFC =
      static_cast<std::uint32_t>(350ULL * clock_mhz / 1000);   // 350ns

  // DRAM energy: restore/precharge costs plus a sizeable constant
  // background floor (refresh logic, DLLs, peripheral), weak clock
  // scaling — so per-channel power sits near the floor and is roughly
  // flat across controller clocks, as the paper's DRAM column shows.
  config.energy.activate_nj = 0.5;
  config.energy.precharge_nj = 0.25;
  config.energy.read_nj = 0.5;
  config.energy.write_nj = 0.6;
  config.energy.refresh_nj = 5.0;
  config.energy.static_mw = 120.0;
  config.energy.background_mw_per_mhz = 0.01;
  return config;
}

MemoryConfig make_nvm_config(std::uint32_t channels, std::uint32_t clock_mhz,
                             std::uint32_t cpu_freq_mhz, std::uint32_t tRCD) {
  MemoryConfig config;
  config.name = "nvm";
  config.device = DeviceType::kNvm;
  config.channels = channels;
  config.clock_mhz = clock_mhz;
  config.cpu_freq_mhz = cpu_freq_mhz;

  // Paper: tRAS = 0 (no data restoration in NVM); tRCD swept per clock.
  config.timing.tRCD = tRCD;
  config.timing.tRAS = 0;
  config.timing.tRP = 4;   // array is non-destructive: cheap "close"
  config.timing.tCAS = 9;
  config.timing.tBURST = 4;
  // NVM cell writes are slow: write recovery dominates (PCM-style).
  config.timing.tWR = static_cast<std::uint32_t>(150ULL * clock_mhz / 1000);  // 150ns
  config.timing.tCCD = 4;
  config.timing.tRFC = 0;  // non-volatile: no refresh
  config.timing.tREFI = 0;

  // NVM energy: no refresh and a tiny static floor, but the interface
  // and sensing periphery scale with the controller clock — the paper's
  // NVM column rises from ~0.04 W at 400 MHz to ~0.15 W at 1600 MHz.
  config.energy.activate_nj = 0.3;
  config.energy.precharge_nj = 0.05;
  config.energy.read_nj = 0.6;
  config.energy.write_nj = 2.5;
  config.energy.refresh_nj = 0.0;
  config.energy.static_mw = 5.0;
  config.energy.background_mw_per_mhz = 0.09;
  return config;
}

const std::vector<std::uint32_t>& nvm_trcd_set(std::uint32_t clock_mhz) {
  static const std::vector<std::uint32_t> k400 = {20, 30, 40, 50, 60, 80};
  static const std::vector<std::uint32_t> k666 = {33, 50, 67, 83, 100, 133};
  static const std::vector<std::uint32_t> k1250 = {62, 94, 125, 156, 187, 250};
  static const std::vector<std::uint32_t> k1600 = {80, 120, 160, 200, 240, 320};
  switch (clock_mhz) {
    case 400:
      return k400;
    case 666:
      return k666;
    case 1250:
      return k1250;
    case 1600:
      return k1600;
    default:
      throw Error("no paper tRCD set for controller clock " +
                  std::to_string(clock_mhz) + " MHz");
  }
}

const std::vector<std::uint32_t>& paper_cpu_frequencies_mhz() {
  static const std::vector<std::uint32_t> k = {2000, 3000, 5000, 6500};
  return k;
}

const std::vector<std::uint32_t>& paper_controller_frequencies_mhz() {
  static const std::vector<std::uint32_t> k = {400, 666, 1250, 1600};
  return k;
}

const std::vector<std::uint32_t>& paper_channel_counts() {
  static const std::vector<std::uint32_t> k = {2, 4};
  return k;
}

}  // namespace gmd::memsim
