#include "gmd/memsim/hybrid.hpp"

#include <algorithm>
#include <sstream>

#include "gmd/common/error.hpp"
#include "gmd/common/rng.hpp"

namespace gmd::memsim {

void HybridConfig::validate() const {
  dram.validate();
  nvm.validate();
  GMD_REQUIRE(dram.device == DeviceType::kDram,
              "hybrid dram side must be DRAM");
  GMD_REQUIRE(nvm.device == DeviceType::kNvm, "hybrid nvm side must be NVM");
  GMD_REQUIRE(dram_fraction > 0.0 && dram_fraction < 1.0,
              "dram_fraction must be in (0, 1); use a plain MemorySystem "
              "for single-technology memory");
  GMD_REQUIRE(page_bytes >= 64, "page_bytes must be >= 64");
  GMD_REQUIRE(dram.cpu_freq_mhz == nvm.cpu_freq_mhz,
              "both sides must share the CPU clock");
}

HybridConfig make_hybrid_config(std::uint32_t channels,
                                std::uint32_t clock_mhz,
                                std::uint32_t cpu_freq_mhz,
                                std::uint32_t nvm_trcd,
                                double dram_fraction) {
  GMD_REQUIRE(channels >= 2 && channels % 2 == 0,
              "hybrid preset needs an even channel count >= 2");
  HybridConfig config;
  config.dram = make_dram_config(channels / 2, clock_mhz, cpu_freq_mhz);
  config.nvm = make_nvm_config(channels / 2, clock_mhz, cpu_freq_mhz,
                               nvm_trcd);
  config.dram.name = "hybrid.dram";
  config.nvm.name = "hybrid.nvm";
  config.dram_fraction = dram_fraction;
  return config;
}

HybridMemory::HybridMemory(const HybridConfig& config)
    : config_(config), dram_(config.dram), nvm_(config.nvm) {
  config_.validate();
}

bool HybridMemory::routes_to_dram(std::uint64_t address) const {
  const std::uint64_t page = address / config_.page_bytes;
  if (promoted_pages_.contains(page)) return true;
  return static_routes_to_dram(config_, address);
}

bool HybridMemory::static_routes_to_dram(const HybridConfig& config,
                                         std::uint64_t address) {
  // Stateless page hash: a SplitMix64 of the page number compared
  // against the fraction.  Hashing (vs. a low/high address split)
  // exposes both technologies to the same access-pattern mix.
  std::uint64_t page = address / config.page_bytes;
  const std::uint64_t h = splitmix64(page);
  const double unit =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  return unit < config.dram_fraction;
}

void HybridMemory::migrate_page(std::uint64_t page, std::uint64_t tick) {
  // The copy is real memory traffic: read the page out of NVM, write it
  // into DRAM, word by word.
  const std::uint64_t base = page * config_.page_bytes;
  const std::uint32_t word =
      static_cast<std::uint32_t>(config_.nvm.access_bytes());
  for (std::uint64_t offset = 0; offset < config_.page_bytes;
       offset += word) {
    nvm_.enqueue_event({tick, base + offset, word, /*is_write=*/false});
    dram_.enqueue_event({tick, base + offset, word, /*is_write=*/true});
  }
  promoted_pages_.insert(page);
  nvm_page_hits_.erase(page);
  ++pages_migrated_;
}

void HybridMemory::enqueue_event(const cpusim::MemoryEvent& event) {
  if (routes_to_dram(event.address)) {
    dram_.enqueue_event(event);
    return;
  }
  if (config_.migration_threshold > 0) {
    const std::uint64_t page = event.address / config_.page_bytes;
    if (++nvm_page_hits_[page] >= config_.migration_threshold) {
      migrate_page(page, event.tick);
      dram_.enqueue_event(event);  // served from DRAM post-promotion
      return;
    }
  }
  nvm_.enqueue_event(event);
}

MemoryMetrics HybridMemory::finish() {
  return merge_metrics(dram_.finish(), nvm_.finish());
}

MemoryMetrics HybridMemory::merge_metrics(const MemoryMetrics& d,
                                          const MemoryMetrics& n) {
  MemoryMetrics m;
  m.channels = d.channels + n.channels;
  m.banks_total = d.banks_total + n.banks_total;
  m.total_reads = d.total_reads + n.total_reads;
  m.total_writes = d.total_writes + n.total_writes;
  m.row_hits = d.row_hits + n.row_hits;
  m.row_misses = d.row_misses + n.row_misses;
  m.execution_seconds = std::max(d.execution_seconds, n.execution_seconds);
  m.dynamic_energy_j = d.dynamic_energy_j + n.dynamic_energy_j;
  m.background_energy_j = d.background_energy_j + n.background_energy_j;

  // Request-weighted latencies.
  const auto dreq = static_cast<double>(d.total_reads + d.total_writes);
  const auto nreq = static_cast<double>(n.total_reads + n.total_writes);
  const double requests = dreq + nreq;
  if (requests > 0.0) {
    m.avg_latency_cycles =
        (d.avg_latency_cycles * dreq + n.avg_latency_cycles * nreq) /
        requests;
    m.avg_total_latency_cycles = (d.avg_total_latency_cycles * dreq +
                                  n.avg_total_latency_cycles * nreq) /
                                 requests;
  }

  m.avg_reads_per_channel = static_cast<double>(m.total_reads) /
                            static_cast<double>(m.channels);
  m.avg_writes_per_channel = static_cast<double>(m.total_writes) /
                             static_cast<double>(m.channels);

  // Channel/bank-count-weighted means of the rate metrics.
  m.avg_power_per_channel_w =
      (d.avg_power_per_channel_w * d.channels +
       n.avg_power_per_channel_w * n.channels) /
      static_cast<double>(m.channels);
  m.avg_bandwidth_per_bank_mbs =
      (d.avg_bandwidth_per_bank_mbs * d.banks_total +
       n.avg_bandwidth_per_bank_mbs * n.banks_total) /
      static_cast<double>(m.banks_total);

  m.max_line_writes = std::max(d.max_line_writes, n.max_line_writes);
  m.unique_lines_written = d.unique_lines_written + n.unique_lines_written;
  return m;
}

MemoryMetrics HybridMemory::simulate(
    const HybridConfig& config, std::span<const cpusim::MemoryEvent> trace) {
  HybridMemory memory(config);
  for (const auto& event : trace) memory.enqueue_event(event);
  return memory.finish();
}

MemoryMetrics HybridMemory::simulate(const HybridConfig& config,
                                     const PredecodedTrace& dram_trace,
                                     const PredecodedTrace& nvm_trace) {
  GMD_REQUIRE(config.migration_threshold == 0,
              "predecoded hybrid simulation requires a static split "
              "(migration routes pages dynamically)");
  config.validate();
  // With a static split the two sides never interact, so each side can
  // replay its pre-routed stream independently; the merge is the same
  // one finish() applies.
  return merge_metrics(MemorySystem::simulate(config.dram, dram_trace),
                       MemorySystem::simulate(config.nvm, nvm_trace));
}

std::pair<PredecodedTrace, PredecodedTrace> predecode_hybrid(
    const HybridConfig& config, std::span<const cpusim::MemoryEvent> trace) {
  GMD_REQUIRE(config.migration_threshold == 0,
              "predecode_hybrid requires a static split");
  config.validate();
  const AddressDecoder dram_decoder(config.dram);
  const AddressDecoder nvm_decoder(config.nvm);
  TickConverter dram_ticker(config.dram);
  TickConverter nvm_ticker(config.nvm);
  PredecodedTrace dram_side;
  PredecodedTrace nvm_side;
  dram_side.config_key = PredecodedTrace::key(config.dram);
  nvm_side.config_key = PredecodedTrace::key(config.nvm);
  for (const cpusim::MemoryEvent& event : trace) {
    if (HybridMemory::static_routes_to_dram(config, event.address)) {
      dram_side.append_event(config.dram, dram_decoder, dram_ticker, event);
    } else {
      nvm_side.append_event(config.nvm, nvm_decoder, nvm_ticker, event);
    }
  }
  return {std::move(dram_side), std::move(nvm_side)};
}

std::string hybrid_trace_key(const HybridConfig& config) {
  std::ostringstream os;
  os.precision(17);
  os << PredecodedTrace::key(config.dram) << "||"
     << PredecodedTrace::key(config.nvm) << "||f" << config.dram_fraction
     << "|pb" << config.page_bytes;
  return os.str();
}

}  // namespace gmd::memsim
