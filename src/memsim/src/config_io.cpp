#include "gmd/memsim/config_io.hpp"

#include <fstream>
#include <functional>
#include <map>
#include <ostream>
#include <sstream>

#include "gmd/common/error.hpp"
#include "gmd/common/string_util.hpp"

namespace gmd::memsim {

namespace {

std::string device_name(DeviceType type) {
  return type == DeviceType::kDram ? "DRAM" : "NVM";
}

std::string scheduling_name(SchedulingPolicy policy) {
  return policy == SchedulingPolicy::kFcfs ? "FCFS" : "FRFCFS";
}

std::string page_policy_name(PagePolicy policy) {
  return policy == PagePolicy::kOpen ? "OpenPage" : "ClosePage";
}

}  // namespace

void write_config(std::ostream& os, const MemoryConfig& config) {
  os << "; graphmemdse memory configuration (NVMain-style)\n";
  os << "ConfigName " << config.name << "\n";
  os << "DeviceType " << device_name(config.device) << "\n\n";

  os << "; geometry\n";
  os << "CHANNELS " << config.channels << "\n";
  os << "RANKS " << config.ranks << "\n";
  os << "BANKS " << config.banks << "\n";
  os << "ROWS " << config.rows << "\n";
  os << "RowBytes " << config.row_bytes << "\n";
  os << "BusBytes " << config.bus_bytes << "\n\n";

  os << "; clocks (MHz)\n";
  os << "CLK " << config.clock_mhz << "\n";
  os << "CPUFreq " << config.cpu_freq_mhz << "\n\n";

  os << "; timing (controller cycles)\n";
  os << "tRCD " << config.timing.tRCD << "\n";
  os << "tRAS " << config.timing.tRAS << "\n";
  os << "tRP " << config.timing.tRP << "\n";
  os << "tCAS " << config.timing.tCAS << "\n";
  os << "tBURST " << config.timing.tBURST << "\n";
  os << "tWR " << config.timing.tWR << "\n";
  os << "tCCD " << config.timing.tCCD << "\n";
  os << "tRRD " << config.timing.tRRD << "\n";
  os << "tFAW " << config.timing.tFAW << "\n";
  os << "tRFC " << config.timing.tRFC << "\n";
  os << "tREFI " << config.timing.tREFI << "\n\n";

  os << "; controller\n";
  os << "MEM_CTL " << scheduling_name(config.scheduling) << "\n";
  os << "PagePolicy " << page_policy_name(config.page_policy) << "\n";
  os << "QueueDepth " << config.queue_depth << "\n";
  os << "AddressMappingScheme " << config.address_mapping << "\n";
  os << "PrioritizeReads " << (config.prioritize_reads ? "true" : "false")
     << "\n";
  os << "WriteDrainWatermark " << config.write_drain_watermark << "\n";
  os << "EPOCHS " << config.epoch_cycles << "\n\n";

  os << "; energy model (gmd extension)\n";
  os << "Eactivate " << config.energy.activate_nj << "\n";
  os << "Eprecharge " << config.energy.precharge_nj << "\n";
  os << "Eread " << config.energy.read_nj << "\n";
  os << "Ewrite " << config.energy.write_nj << "\n";
  os << "Erefresh " << config.energy.refresh_nj << "\n";
  os << "PstaticMw " << config.energy.static_mw << "\n";
  os << "PclockMwPerMhz " << config.energy.background_mw_per_mhz << "\n";
}

void save_config(const std::string& path, const MemoryConfig& config) {
  std::ofstream out(path);
  GMD_REQUIRE(out.good(), "cannot open '" << path << "' for writing");
  write_config(out, config);
  GMD_REQUIRE(out.good(), "write to '" << path << "' failed");
}

MemoryConfig read_config(std::istream& is) {
  MemoryConfig config;

  const auto parse_u32 = [](std::string_view key, std::string_view value) {
    const auto parsed = parse_uint(value);
    GMD_REQUIRE(parsed.has_value() && *parsed <= UINT32_MAX,
                "config key " << std::string(key) << ": bad value '"
                              << std::string(value) << "'");
    return static_cast<std::uint32_t>(*parsed);
  };
  const auto parse_f64 = [](std::string_view key, std::string_view value) {
    const auto parsed = parse_double(value);
    GMD_REQUIRE(parsed.has_value(), "config key " << std::string(key)
                                                  << ": bad value '"
                                                  << std::string(value)
                                                  << "'");
    return *parsed;
  };

  using Setter =
      std::function<void(std::string_view key, std::string_view value)>;
  const std::map<std::string, Setter, std::less<>> setters = {
      {"ConfigName",
       [&](auto, auto v) { config.name = std::string(v); }},
      {"DeviceType",
       [&](auto k, auto v) {
         const std::string lowered = to_lower(v);
         if (lowered == "dram") {
           config.device = DeviceType::kDram;
         } else if (lowered == "nvm" || lowered == "pcm") {
           config.device = DeviceType::kNvm;
         } else {
           GMD_REQUIRE(false, "config key " << std::string(k)
                                            << ": unknown device '"
                                            << std::string(v) << "'");
         }
       }},
      {"CHANNELS", [&](auto k, auto v) { config.channels = parse_u32(k, v); }},
      {"RANKS", [&](auto k, auto v) { config.ranks = parse_u32(k, v); }},
      {"BANKS", [&](auto k, auto v) { config.banks = parse_u32(k, v); }},
      {"ROWS", [&](auto k, auto v) { config.rows = parse_u32(k, v); }},
      {"RowBytes", [&](auto k, auto v) { config.row_bytes = parse_u32(k, v); }},
      {"BusBytes", [&](auto k, auto v) { config.bus_bytes = parse_u32(k, v); }},
      {"CLK", [&](auto k, auto v) { config.clock_mhz = parse_u32(k, v); }},
      {"CPUFreq",
       [&](auto k, auto v) { config.cpu_freq_mhz = parse_u32(k, v); }},
      {"tRCD", [&](auto k, auto v) { config.timing.tRCD = parse_u32(k, v); }},
      {"tRAS", [&](auto k, auto v) { config.timing.tRAS = parse_u32(k, v); }},
      {"tRP", [&](auto k, auto v) { config.timing.tRP = parse_u32(k, v); }},
      {"tCAS", [&](auto k, auto v) { config.timing.tCAS = parse_u32(k, v); }},
      {"tBURST",
       [&](auto k, auto v) { config.timing.tBURST = parse_u32(k, v); }},
      {"tWR", [&](auto k, auto v) { config.timing.tWR = parse_u32(k, v); }},
      {"tCCD", [&](auto k, auto v) { config.timing.tCCD = parse_u32(k, v); }},
      {"tRRD", [&](auto k, auto v) { config.timing.tRRD = parse_u32(k, v); }},
      {"tFAW", [&](auto k, auto v) { config.timing.tFAW = parse_u32(k, v); }},
      {"tRFC", [&](auto k, auto v) { config.timing.tRFC = parse_u32(k, v); }},
      {"tREFI",
       [&](auto k, auto v) { config.timing.tREFI = parse_u32(k, v); }},
      {"MEM_CTL",
       [&](auto k, auto v) {
         const std::string lowered = to_lower(v);
         if (lowered == "fcfs") {
           config.scheduling = SchedulingPolicy::kFcfs;
         } else if (lowered == "frfcfs") {
           config.scheduling = SchedulingPolicy::kFrFcfs;
         } else {
           GMD_REQUIRE(false, "config key " << std::string(k)
                                            << ": unknown policy '"
                                            << std::string(v) << "'");
         }
       }},
      {"PagePolicy",
       [&](auto k, auto v) {
         const std::string lowered = to_lower(v);
         if (lowered == "openpage") {
           config.page_policy = PagePolicy::kOpen;
         } else if (lowered == "closepage") {
           config.page_policy = PagePolicy::kClosed;
         } else {
           GMD_REQUIRE(false, "config key " << std::string(k)
                                            << ": unknown policy '"
                                            << std::string(v) << "'");
         }
       }},
      {"QueueDepth",
       [&](auto k, auto v) { config.queue_depth = parse_u32(k, v); }},
      {"AddressMappingScheme",
       [&](auto, auto v) { config.address_mapping = std::string(v); }},
      {"EPOCHS",
       [&](auto k, auto v) { config.epoch_cycles = parse_u32(k, v); }},
      {"PrioritizeReads",
       [&](auto k, auto v) {
         const std::string lowered = to_lower(v);
         GMD_REQUIRE(lowered == "true" || lowered == "false",
                     "config key " << std::string(k)
                                   << ": expected true/false");
         config.prioritize_reads = lowered == "true";
       }},
      {"WriteDrainWatermark",
       [&](auto k, auto v) {
         config.write_drain_watermark = parse_u32(k, v);
       }},
      {"Eactivate",
       [&](auto k, auto v) { config.energy.activate_nj = parse_f64(k, v); }},
      {"Eprecharge",
       [&](auto k, auto v) { config.energy.precharge_nj = parse_f64(k, v); }},
      {"Eread",
       [&](auto k, auto v) { config.energy.read_nj = parse_f64(k, v); }},
      {"Ewrite",
       [&](auto k, auto v) { config.energy.write_nj = parse_f64(k, v); }},
      {"Erefresh",
       [&](auto k, auto v) { config.energy.refresh_nj = parse_f64(k, v); }},
      {"PstaticMw",
       [&](auto k, auto v) { config.energy.static_mw = parse_f64(k, v); }},
      {"PclockMwPerMhz",
       [&](auto k, auto v) {
         config.energy.background_mw_per_mhz = parse_f64(k, v);
       }},
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::string_view text = trim(line);
    if (const auto comment = text.find(';'); comment != std::string_view::npos)
      text = trim(text.substr(0, comment));
    if (text.empty()) continue;
    const auto space = text.find_first_of(" \t");
    GMD_REQUIRE(space != std::string_view::npos,
                "config line " << line_no << ": expected 'KEY value', got '"
                               << std::string(text) << "'");
    const std::string_view key = text.substr(0, space);
    const std::string_view value = trim(text.substr(space + 1));
    const auto it = setters.find(key);
    GMD_REQUIRE(it != setters.end(),
                "config line " << line_no << ": unknown key '"
                               << std::string(key) << "'");
    it->second(key, value);
  }
  config.validate();
  return config;
}

MemoryConfig load_config(const std::string& path) {
  std::ifstream in(path);
  GMD_REQUIRE(in.good(), "cannot open '" << path << "' for reading");
  return read_config(in);
}

}  // namespace gmd::memsim
