#include "gmd/memsim/metrics.hpp"

#include <sstream>

#include "gmd/common/string_util.hpp"

namespace gmd::memsim {

std::string MemoryMetrics::describe() const {
  std::ostringstream os;
  os << "channels:             " << channels << " (" << banks_total
     << " banks)\n"
     << "reads/writes:         " << total_reads << " / " << total_writes
     << "\n"
     << "avg power/channel:    " << format_fixed(avg_power_per_channel_w, 4)
     << " W\n"
     << "avg bandwidth/bank:   "
     << format_fixed(avg_bandwidth_per_bank_mbs, 2) << " MB/s\n"
     << "avg latency:          " << format_fixed(avg_latency_cycles, 2)
     << " cycles\n"
     << "avg total latency:    " << format_fixed(avg_total_latency_cycles, 2)
     << " cycles\n"
     << "execution time:       " << format_sci(execution_seconds, 3)
     << " s\n"
     << "energy (dyn+bg):      " << format_sci(dynamic_energy_j, 3) << " + "
     << format_sci(background_energy_j, 3) << " J\n"
     << "row hit rate:         " << format_fixed(row_hit_rate() * 100.0, 1)
     << " %\n"
     << "endurance:            max " << max_line_writes
     << " writes to one line across " << unique_lines_written << " lines\n";
  return os.str();
}

const std::vector<std::string>& MemoryMetrics::metric_names() {
  static const std::vector<std::string> names = {
      "power_w",        "bandwidth_mbs", "latency_cycles",
      "total_latency_cycles", "reads_per_channel", "writes_per_channel"};
  return names;
}

std::vector<double> MemoryMetrics::metric_values() const {
  return {avg_power_per_channel_w,  avg_bandwidth_per_bank_mbs,
          avg_latency_cycles,       avg_total_latency_cycles,
          avg_reads_per_channel,    avg_writes_per_channel};
}

}  // namespace gmd::memsim
