#include "gmd/memsim/channel.hpp"

#include <algorithm>
#include <bit>

#include "gmd/common/deadline.hpp"
#include "gmd/common/error.hpp"

namespace gmd::memsim {

namespace {

/// Mask with bits [0, n) set; n may be 64.
inline std::uint64_t low_bits(std::uint32_t n) {
  return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

inline std::uint32_t first_bit(std::uint64_t mask) {
  return static_cast<std::uint32_t>(std::countr_zero(mask));
}

}  // namespace

Channel::Channel(const MemoryConfig& config)
    : config_(config), access_bytes_(config.access_bytes()) {
  config.validate();
  banks_.resize(static_cast<std::size_t>(config.ranks) * config.banks);
  ranks_.resize(config.ranks);
  stats_.bank_bytes.assign(banks_.size(), 0);
  fast_ = !config.sim.reference_mode && config.queue_depth <= kMaxFastDepth;
  track_hits_ = fast_ && config.scheduling == SchedulingPolicy::kFrFcfs &&
                config.page_policy == PagePolicy::kOpen;
  if (fast_) {
    bank_mask_.assign(banks_.size(), 0);
  } else {
    queue_.reserve(config.queue_depth);
  }
}

std::uint64_t Channel::constrain_and_record_activate(std::uint32_t rank,
                                                     std::uint64_t cycle) {
  RankState& state = ranks_[rank];
  const TimingParams& t = config_.timing;
  if (state.any_activate) {
    cycle = std::max(cycle, state.last_activate + t.tRRD);
  }
  if (t.tFAW != 0 && state.window_filled == state.window.size()) {
    // The oldest of the last four ACTs bounds this one.
    cycle = std::max(cycle, state.window[state.cursor] + t.tFAW);
  }
  state.last_activate = cycle;
  state.any_activate = true;
  state.window[state.cursor] = cycle;
  state.cursor =
      static_cast<std::uint8_t>((state.cursor + 1) % state.window.size());
  if (state.window_filled < state.window.size()) ++state.window_filled;
  return cycle;
}

void Channel::enqueue(const Request& request) {
  GMD_REQUIRE(request.arrival >= last_arrival_,
              "requests must be enqueued in arrival order");
  last_arrival_ = request.arrival;
  GMD_REQUIRE(request.rank < config_.ranks && request.bank < config_.banks,
              "request rank/bank out of range");
  enqueue_trusted(request);
}

void Channel::enqueue_trusted(const Request& request) {
  Deadline* const deadline = config_.sim.deadline;
  Request pending = request;
  pending.arrival = std::max(pending.arrival, stall_until_);
  if (fast_) {
    while (queued_reads_ + queued_writes_ >= config_.queue_depth) {
      // Queue full: the trace reader blocks until the controller retires
      // an entry; the incoming request cannot arrive before that.
      if (deadline) deadline->check();
      stall_until_ = std::max(stall_until_, fast_service_next());
      pending.arrival = std::max(pending.arrival, stall_until_);
    }
    fast_insert(pending);
    return;
  }
  while (queue_.size() >= config_.queue_depth) {
    if (deadline) deadline->check();
    stall_until_ = std::max(stall_until_, service(pick_next()));
    pending.arrival = std::max(pending.arrival, stall_until_);
  }
  queue_.push_back(pending);
}

void Channel::drain() {
  Deadline* const deadline = config_.sim.deadline;
  if (fast_) {
    while (live_mask_ != 0) {
      if (deadline) deadline->check();
      fast_service_next();
    }
  } else {
    while (!queue_.empty()) {
      if (deadline) deadline->check();
      service(pick_next());
    }
  }
  sync_stats();
}

void Channel::sync_stats() {
  // Per-bank byte totals and the refresh count are pure functions of
  // final bank state / wall clock: one pass here (and at the end of
  // drain()) instead of bookkeeping on every retire.  Counts serviced
  // requests only, which is exactly what a measurement-window baseline
  // wants.
  for (std::size_t i = 0; i < banks_.size(); ++i) {
    stats_.bank_bytes[i] = banks_[i].bytes_transferred;
  }
  if (config_.timing.tREFI != 0) {
    stats_.refreshes = stats_.last_completion / config_.timing.tREFI;
  }
}

std::uint64_t Channel::after_refresh(std::uint64_t cycle) {
  const TimingParams& t = config_.timing;
  if (t.tREFI == 0) return cycle;
  // Command times cluster, so `cycle` almost always falls in the cached
  // window; recompute (one division) only on a window change.
  if (cycle < refresh_window_ || cycle - refresh_window_ >= t.tREFI) {
    refresh_window_ = cycle / t.tREFI * t.tREFI;
  }
  if (cycle < refresh_window_ + t.tRFC) return refresh_window_ + t.tRFC;
  return cycle;
}

// Reference path ------------------------------------------------------

std::size_t Channel::pick_next() const {
  GMD_ASSERT(!queue_.empty(), "pick_next on empty queue");

  // Read priority (with a write-drain watermark against starvation):
  // restrict the candidate set to reads when allowed, then apply the
  // scheduling policy within that set.
  bool reads_only = false;
  if (config_.prioritize_reads) {
    std::size_t queued_writes = 0;
    bool any_read = false;
    for (const Request& r : queue_) {
      if (r.is_write) {
        ++queued_writes;
      } else {
        any_read = true;
      }
    }
    reads_only = any_read && queued_writes < config_.write_drain_watermark;
  }

  const auto eligible = [&](const Request& r) {
    return !reads_only || !r.is_write;
  };
  std::size_t oldest = queue_.size();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (eligible(queue_[i])) {
      oldest = i;
      break;
    }
  }
  GMD_ASSERT(oldest < queue_.size(), "no eligible request");
  if (config_.scheduling == SchedulingPolicy::kFcfs) return oldest;

  // FR-FCFS: among eligible requests that have arrived by the time the
  // oldest one could issue, prefer the first row hit; else the oldest.
  const std::uint64_t horizon = std::max(now_, queue_[oldest].arrival);
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Request& r = queue_[i];
    if (r.arrival > horizon) break;  // queue is arrival-ordered
    if (!eligible(r)) continue;
    const BankState& bank = banks_[flat_bank(r)];
    if (bank.open_row && *bank.open_row == r.row) return i;
  }
  return oldest;
}

std::uint64_t Channel::service(std::size_t index) {
  GMD_ASSERT(index < queue_.size(), "service index out of range");
  const Request request = queue_[index];
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
  const std::size_t b = flat_bank(request);
  const BankState& bank = banks_[b];
  const bool row_hit = bank.open_row && *bank.open_row == request.row;
  return service_request(request, b, row_hit);
}

// Fast path -----------------------------------------------------------

void Channel::fast_insert(const Request& pending) {
  if (pos_ == kWindow) compact_window();
  const std::uint32_t s = pos_++;
  const std::uint64_t bit = std::uint64_t{1} << s;
  window_[s] = pending;
  const auto b = static_cast<std::uint32_t>(flat_bank(pending));
  slot_bank_[s] = b;
  live_mask_ |= bit;
  bank_mask_[b] |= bit;
  if (pending.is_write) {
    write_mask_ |= bit;
    ++queued_writes_;
  } else {
    ++queued_reads_;
  }
  if (track_hits_) {
    const BankState& bank = banks_[b];
    if (bank.open_row && *bank.open_row == pending.row) hit_mask_ |= bit;
  }
}

void Channel::compact_window() {
  std::fill(bank_mask_.begin(), bank_mask_.end(), 0);
  std::uint64_t write_mask = 0;
  std::uint64_t hit_mask = 0;
  std::uint32_t n = 0;
  for (std::uint64_t m = live_mask_; m != 0; m &= m - 1) {
    const std::uint32_t s = first_bit(m);
    if (n != s) {
      window_[n] = window_[s];
      slot_bank_[n] = slot_bank_[s];
    }
    const std::uint64_t old_bit = std::uint64_t{1} << s;
    const std::uint64_t new_bit = std::uint64_t{1} << n;
    if ((write_mask_ & old_bit) != 0) write_mask |= new_bit;
    if ((hit_mask_ & old_bit) != 0) hit_mask |= new_bit;
    bank_mask_[slot_bank_[n]] |= new_bit;
    ++n;
  }
  live_mask_ = low_bits(n);
  write_mask_ = write_mask;
  hit_mask_ = hit_mask;
  pos_ = n;
  arrived_ = 0;  // re-derived lazily against the next horizon
}

std::uint64_t Channel::fast_service_next() {
  GMD_ASSERT(live_mask_ != 0, "service on empty queue");
  // Read priority decision from running counters; the oldest (eligible)
  // request is the lowest set bit.
  const bool reads_only = config_.prioritize_reads && queued_reads_ > 0 &&
                          queued_writes_ < config_.write_drain_watermark;
  const std::uint64_t eligible =
      reads_only ? live_mask_ & ~write_mask_ : live_mask_;
  std::uint32_t victim = first_bit(eligible);
  // FR-FCFS: the oldest eligible row hit that has arrived by the horizon
  // beats the oldest request.  hit_mask_ is only maintained under
  // FR-FCFS + open page (closed page never has an open row at pick
  // time), so a zero mask covers every other policy combination.
  std::uint64_t hits = hit_mask_ & eligible;
  if (hits != 0) {
    const std::uint64_t horizon = std::max(now_, window_[victim].arrival);
    // Arrivals are monotone in slot position, so the slots with
    // arrival <= horizon form a prefix; the cached boundary usually
    // moves at most a step between picks.
    while (arrived_ < pos_ && window_[arrived_].arrival <= horizon) {
      ++arrived_;
    }
    while (arrived_ > 0 && window_[arrived_ - 1].arrival > horizon) {
      --arrived_;
    }
    hits &= low_bits(arrived_);
    if (hits != 0) victim = first_bit(hits);
  }
  return fast_service_slot(victim);
}

std::uint64_t Channel::fast_service_slot(std::uint32_t s) {
  const Request request = window_[s];
  const std::uint32_t b = slot_bank_[s];
  const std::uint64_t bit = std::uint64_t{1} << s;
  live_mask_ &= ~bit;
  bank_mask_[b] &= ~bit;
  hit_mask_ &= ~bit;
  if (request.is_write) {
    write_mask_ &= ~bit;
    --queued_writes_;
  } else {
    --queued_reads_;
  }
  const BankState& bank = banks_[b];
  const bool row_hit = bank.open_row && *bank.open_row == request.row;
  const std::uint64_t completion = service_request(request, b, row_hit);
  if (track_hits_ && !row_hit) {
    // The miss re-opened the bank on request.row: recompute which of
    // the bank's queued requests hit the new row.  Hits leave the open
    // row alone, so their retirement needs no mask work beyond the
    // clears above.
    std::uint64_t hits = 0;
    for (std::uint64_t m = bank_mask_[b]; m != 0; m &= m - 1) {
      const std::uint32_t i = first_bit(m);
      if (window_[i].row == request.row) hits |= std::uint64_t{1} << i;
    }
    hit_mask_ = (hit_mask_ & ~bank_mask_[b]) | hits;
  }
  return completion;
}

// Shared timing algebra ------------------------------------------------

std::uint64_t Channel::service_request(Request request, std::size_t b,
                                       bool row_hit) {
  const TimingParams& t = config_.timing;
  BankState& bank = banks_[b];

  // The controller takes the request up once it has both arrived and
  // the command engine has finished earlier work.
  const std::uint64_t take_up = std::max(now_, request.arrival);

  std::uint64_t cas_ready;       // earliest CAS issue from bank state
  std::uint64_t first_command;   // service_start
  if (row_hit) {
    // Row hit: CAS only.
    first_command = after_refresh(std::max(take_up, bank.ready_for_cas));
    cas_ready = first_command;
    ++bank.row_hits;
    ++stats_.row_hits;
  } else {
    std::uint64_t activate_start;
    bool first_command_is_activate = false;
    if (bank.open_row) {
      // Row conflict: PRE then ACT.
      const std::uint64_t pre_start =
          after_refresh(std::max(take_up, bank.ready_for_precharge));
      activate_start = after_refresh(pre_start + t.tRP);
      ++bank.precharges;
      ++stats_.precharges;
      ++bank.row_misses;
      ++stats_.row_misses;
      first_command = pre_start;
    } else {
      // Bank closed: ACT directly.
      activate_start =
          after_refresh(std::max(take_up, bank.ready_for_activate));
      ++bank.row_misses;
      ++stats_.row_misses;
      first_command_is_activate = true;
      first_command = activate_start;
    }
    // Rank-level activation pacing (tRRD, tFAW).
    activate_start =
        constrain_and_record_activate(request.rank, activate_start);
    if (first_command_is_activate) first_command = activate_start;
    bank.last_activate = activate_start;
    ++bank.activations;
    ++stats_.activations;
    cas_ready = activate_start + t.tRCD;
    bank.open_row = request.row;
  }

  // Column command: respects channel command spacing and the bank's
  // own column-to-column delay.
  const std::uint64_t cas_issue =
      std::max({cas_ready, bank.ready_for_cas, last_cas_ + t.tCCD});
  // Data burst: CAS latency then the burst, gated by data-bus
  // availability (reads; writes drive the bus on the same schedule).
  const std::uint64_t data_start = std::max(cas_issue + t.tCAS, bus_free_);
  const std::uint64_t data_end = data_start + t.tBURST;
  bus_free_ = data_end;
  last_cas_ = cas_issue;
  // Writes occupy the bank's write drivers for the recovery window
  // (tWR), blocking further column commands to that bank — this is how
  // slow NVM cell writes throttle write streams even on row hits.
  bank.ready_for_cas =
      request.is_write ? data_end + t.tWR : cas_issue + t.tCCD;

  // Precharge constraints: DRAM must satisfy tRAS from activate (data
  // restoration, absent in NVM where tRAS = 0); writes add recovery.
  const std::uint64_t ras_bound = bank.last_activate + t.tRAS;
  const std::uint64_t recovery =
      request.is_write ? data_end + t.tWR : data_end;
  bank.ready_for_precharge = std::max(ras_bound, recovery);

  if (config_.page_policy == PagePolicy::kClosed) {
    bank.open_row.reset();
    ++bank.precharges;
    ++stats_.precharges;
    bank.ready_for_activate = bank.ready_for_precharge + t.tRP;
  } else {
    // On a future conflict PRE starts at ready_for_precharge.
    bank.ready_for_activate = bank.ready_for_precharge + t.tRP;
  }

  // Record the transaction.
  request.service_start = first_command;
  request.completion = data_end;
  if (request.is_write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
  }
  stats_.sum_service_latency += request.service_latency();
  stats_.sum_total_latency += request.total_latency();
  stats_.last_completion = std::max(stats_.last_completion, data_end);
  // Bytes only feed the final per-bank totals, assembled in drain().
  const std::uint64_t bytes = access_bytes_;
  bank.bytes_transferred += bytes;

  // Epoch time series (NVMain PrintGraphs), bucketed by completion.
  if (config_.epoch_cycles > 0) {
    const std::uint64_t epoch = data_end / config_.epoch_cycles;
    if (stats_.epochs.size() <= epoch) stats_.epochs.resize(epoch + 1);
    ChannelStats::Epoch& bucket = stats_.epochs[epoch];
    (request.is_write ? bucket.writes : bucket.reads) += 1;
    bucket.sum_total_latency += request.total_latency();
    bucket.bytes += bytes;
  }

  // The command engine is busy until it has issued this CAS.
  now_ = cas_issue;
  return data_end;
}

}  // namespace gmd::memsim
