#include "gmd/memsim/channel.hpp"

#include <algorithm>

#include "gmd/common/error.hpp"

namespace gmd::memsim {

Channel::Channel(const MemoryConfig& config) : config_(config) {
  config.validate();
  banks_.resize(static_cast<std::size_t>(config.ranks) * config.banks);
  ranks_.resize(config.ranks);
  stats_.bank_bytes.assign(banks_.size(), 0);
  queue_.reserve(config.queue_depth);
}

std::uint64_t Channel::constrain_and_record_activate(std::uint32_t rank,
                                                     std::uint64_t cycle) {
  RankState& state = ranks_[rank];
  const TimingParams& t = config_.timing;
  if (state.any_activate) {
    cycle = std::max(cycle, state.last_activate + t.tRRD);
  }
  if (t.tFAW != 0 && state.window_filled == state.window.size()) {
    // The oldest of the last four ACTs bounds this one.
    cycle = std::max(cycle, state.window[state.cursor] + t.tFAW);
  }
  state.last_activate = cycle;
  state.any_activate = true;
  state.window[state.cursor] = cycle;
  state.cursor =
      static_cast<std::uint8_t>((state.cursor + 1) % state.window.size());
  if (state.window_filled < state.window.size()) ++state.window_filled;
  return cycle;
}

void Channel::enqueue(const Request& request) {
  GMD_REQUIRE(request.arrival >= last_arrival_,
              "requests must be enqueued in arrival order");
  last_arrival_ = request.arrival;
  GMD_REQUIRE(request.rank < config_.ranks && request.bank < config_.banks,
              "request rank/bank out of range");
  Request pending = request;
  pending.arrival = std::max(pending.arrival, stall_until_);
  while (queue_.size() >= config_.queue_depth) {
    // Queue full: the trace reader blocks until the controller retires
    // an entry; the incoming request cannot arrive before that.
    stall_until_ = std::max(stall_until_, service(pick_next()));
    pending.arrival = std::max(pending.arrival, stall_until_);
  }
  queue_.push_back(pending);
}

void Channel::drain() {
  while (!queue_.empty()) {
    service(pick_next());
  }
}

std::uint64_t Channel::after_refresh(std::uint64_t cycle) const {
  if (config_.timing.tREFI == 0) return cycle;
  const std::uint64_t window = cycle / config_.timing.tREFI;
  const std::uint64_t window_start = window * config_.timing.tREFI;
  if (cycle < window_start + config_.timing.tRFC) {
    return window_start + config_.timing.tRFC;
  }
  return cycle;
}

std::size_t Channel::pick_next() const {
  GMD_ASSERT(!queue_.empty(), "pick_next on empty queue");

  // Read priority (with a write-drain watermark against starvation):
  // restrict the candidate set to reads when allowed, then apply the
  // scheduling policy within that set.
  bool reads_only = false;
  if (config_.prioritize_reads) {
    std::size_t queued_writes = 0;
    bool any_read = false;
    for (const Request& r : queue_) {
      if (r.is_write) {
        ++queued_writes;
      } else {
        any_read = true;
      }
    }
    reads_only = any_read && queued_writes < config_.write_drain_watermark;
  }

  const auto eligible = [&](const Request& r) {
    return !reads_only || !r.is_write;
  };
  std::size_t oldest = queue_.size();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (eligible(queue_[i])) {
      oldest = i;
      break;
    }
  }
  GMD_ASSERT(oldest < queue_.size(), "no eligible request");
  if (config_.scheduling == SchedulingPolicy::kFcfs) return oldest;

  // FR-FCFS: among eligible requests that have arrived by the time the
  // oldest one could issue, prefer the first row hit; else the oldest.
  const std::uint64_t horizon = std::max(now_, queue_[oldest].arrival);
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Request& r = queue_[i];
    if (r.arrival > horizon) break;  // queue is arrival-ordered
    if (!eligible(r)) continue;
    const BankState& bank =
        banks_[static_cast<std::size_t>(r.rank) * config_.banks + r.bank];
    if (bank.open_row && *bank.open_row == r.row) return i;
  }
  return oldest;
}

std::uint64_t Channel::service(std::size_t index) {
  GMD_ASSERT(index < queue_.size(), "service index out of range");
  Request request = queue_[index];
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));

  const TimingParams& t = config_.timing;
  BankState& bank = banks_[static_cast<std::size_t>(request.rank) *
                               config_.banks +
                           request.bank];

  // The controller takes the request up once it has both arrived and
  // the command engine has finished earlier work.
  const std::uint64_t take_up = std::max(now_, request.arrival);

  std::uint64_t cas_ready;       // earliest CAS issue from bank state
  std::uint64_t first_command;   // service_start
  if (bank.open_row && *bank.open_row == request.row) {
    // Row hit: CAS only.
    first_command = after_refresh(std::max(take_up, bank.ready_for_cas));
    cas_ready = first_command;
    ++bank.row_hits;
    ++stats_.row_hits;
  } else {
    std::uint64_t activate_start;
    bool first_command_is_activate = false;
    if (bank.open_row) {
      // Row conflict: PRE then ACT.
      const std::uint64_t pre_start =
          after_refresh(std::max(take_up, bank.ready_for_precharge));
      activate_start = after_refresh(pre_start + t.tRP);
      ++bank.precharges;
      ++stats_.precharges;
      ++bank.row_misses;
      ++stats_.row_misses;
      first_command = pre_start;
    } else {
      // Bank closed: ACT directly.
      activate_start =
          after_refresh(std::max(take_up, bank.ready_for_activate));
      ++bank.row_misses;
      ++stats_.row_misses;
      first_command_is_activate = true;
      first_command = activate_start;
    }
    // Rank-level activation pacing (tRRD, tFAW).
    activate_start =
        constrain_and_record_activate(request.rank, activate_start);
    if (first_command_is_activate) first_command = activate_start;
    bank.last_activate = activate_start;
    ++bank.activations;
    ++stats_.activations;
    cas_ready = activate_start + t.tRCD;
    bank.open_row = request.row;
  }

  // Column command: respects channel command spacing and the bank's
  // own column-to-column delay.
  const std::uint64_t cas_issue =
      std::max({cas_ready, bank.ready_for_cas, last_cas_ + t.tCCD});
  // Data burst: CAS latency then the burst, gated by data-bus
  // availability (reads; writes drive the bus on the same schedule).
  const std::uint64_t data_start = std::max(cas_issue + t.tCAS, bus_free_);
  const std::uint64_t data_end = data_start + t.tBURST;
  bus_free_ = data_end;
  last_cas_ = cas_issue;
  // Writes occupy the bank's write drivers for the recovery window
  // (tWR), blocking further column commands to that bank — this is how
  // slow NVM cell writes throttle write streams even on row hits.
  bank.ready_for_cas =
      request.is_write ? data_end + t.tWR : cas_issue + t.tCCD;

  // Precharge constraints: DRAM must satisfy tRAS from activate (data
  // restoration, absent in NVM where tRAS = 0); writes add recovery.
  const std::uint64_t ras_bound = bank.last_activate + t.tRAS;
  const std::uint64_t recovery =
      request.is_write ? data_end + t.tWR : data_end;
  bank.ready_for_precharge = std::max(ras_bound, recovery);

  if (config_.page_policy == PagePolicy::kClosed) {
    bank.open_row.reset();
    ++bank.precharges;
    ++stats_.precharges;
    bank.ready_for_activate = bank.ready_for_precharge + t.tRP;
  } else {
    // On a future conflict PRE starts at ready_for_precharge.
    bank.ready_for_activate = bank.ready_for_precharge + t.tRP;
  }

  // Record the transaction.
  request.service_start = first_command;
  request.completion = data_end;
  if (request.is_write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
  }
  stats_.sum_service_latency += request.service_latency();
  stats_.sum_total_latency += request.total_latency();
  stats_.last_completion = std::max(stats_.last_completion, data_end);
  const std::uint64_t bytes = config_.access_bytes();
  bank.bytes_transferred += bytes;
  stats_.bank_bytes[static_cast<std::size_t>(request.rank) * config_.banks +
                    request.bank] += bytes;

  // Epoch time series (NVMain PrintGraphs), bucketed by completion.
  if (config_.epoch_cycles > 0) {
    const std::uint64_t epoch = data_end / config_.epoch_cycles;
    if (stats_.epochs.size() <= epoch) stats_.epochs.resize(epoch + 1);
    ChannelStats::Epoch& bucket = stats_.epochs[epoch];
    (request.is_write ? bucket.writes : bucket.reads) += 1;
    bucket.sum_total_latency += request.total_latency();
    bucket.bytes += bytes;
  }

  // The command engine is busy until it has issued this CAS.
  now_ = cas_issue;

  // Refresh accounting: refreshes elapsed so far (recomputed cheaply at
  // the end by the memory system; track max completion only here).
  if (config_.timing.tREFI != 0) {
    stats_.refreshes = stats_.last_completion / config_.timing.tREFI;
  }
  return data_end;
}

}  // namespace gmd::memsim
