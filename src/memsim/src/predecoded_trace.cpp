#include "gmd/memsim/predecoded_trace.hpp"

#include <sstream>

#include "gmd/common/error.hpp"

namespace gmd::memsim {

void PredecodedTrace::reserve(std::size_t n) {
  request.reserve(n);
  channel.reserve(n);
  line.reserve(n);
}

void PredecodedTrace::append_event(const MemoryConfig& config,
                                   const AddressDecoder& decoder,
                                   TickConverter& ticker,
                                   const cpusim::MemoryEvent& event) {
  GMD_REQUIRE(event.size > 0, "event size must be positive");
  const std::uint64_t word = config.access_bytes();
  const std::uint64_t cycle = ticker(event.tick);
  // Split wide accesses into word-granular requests, as a memory
  // controller's transaction splitter would (MemorySystem::enqueue_event
  // does the same split on the undecoded path).
  std::uint64_t first;
  std::uint64_t last;
  if ((word & (word - 1)) == 0) {  // power-of-two word: mask, not divide
    first = event.address & ~(word - 1);
    last = (event.address + event.size - 1) & ~(word - 1);
  } else {
    first = event.address / word * word;
    last = (event.address + event.size - 1) / word * word;
  }
  for (std::uint64_t addr = first; addr <= last; addr += word) {
    const DecodedAddress loc = decoder.decode(addr);
    Request req;
    req.arrival = cycle;
    req.rank = loc.rank;
    req.bank = loc.bank;
    req.row = loc.row;
    req.column = loc.column;
    req.is_write = event.is_write;
    request.push_back(req);
    channel.push_back(loc.channel);
    line.push_back(addr / 64);
  }
}

PredecodedTrace PredecodedTrace::build(
    const MemoryConfig& config, std::span<const cpusim::MemoryEvent> trace) {
  const AddressDecoder decoder(config);
  TickConverter ticker(config);
  PredecodedTrace out;
  out.config_key = key(config);
  out.reserve(trace.size());
  for (const cpusim::MemoryEvent& event : trace) {
    out.append_event(config, decoder, ticker, event);
  }
  return out;
}

PredecodedTrace PredecodedTrace::build(const MemoryConfig& config,
                                       const EventChunkSource& source,
                                       std::size_t size_hint) {
  const AddressDecoder decoder(config);
  TickConverter ticker(config);
  PredecodedTrace out;
  out.config_key = key(config);
  if (size_hint > 0) out.reserve(size_hint);
  for (auto chunk = source(); !chunk.empty(); chunk = source()) {
    for (const cpusim::MemoryEvent& event : chunk) {
      out.append_event(config, decoder, ticker, event);
    }
  }
  return out;
}

std::vector<std::size_t> PredecodedTrace::channel_event_counts(
    std::uint32_t num_channels) const {
  std::vector<std::size_t> counts(num_channels, 0);
  for (const std::uint32_t c : channel) {
    GMD_REQUIRE(c < num_channels,
                "trace channel index " << c << " out of range (trace built "
                                          "for more channels than "
                                       << num_channels << "?)");
    ++counts[c];
  }
  return counts;
}

const std::vector<ChannelSlice>& PredecodedTrace::partition_by_channel(
    std::uint32_t num_channels) const {
  GMD_REQUIRE(num_channels > 0, "partition_by_channel needs channels > 0");
  PartitionCache& cache = *partition_;
  std::call_once(cache.once, [&] {
    const std::vector<std::size_t> counts = channel_event_counts(num_channels);
    cache.num_channels = num_channels;
    cache.built_size = size();
    cache.slices.resize(num_channels);
    for (std::uint32_t c = 0; c < num_channels; ++c) {
      cache.slices[c].request.reserve(counts[c]);
      cache.slices[c].line.reserve(counts[c]);
    }
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
      ChannelSlice& slice = cache.slices[channel[i]];
      slice.request.push_back(request[i]);
      slice.line.push_back(line[i]);
    }
    std::size_t total = 0;
    for (const ChannelSlice& slice : cache.slices) total += slice.size();
    GMD_ASSERT(total == size(), "channel partition lost requests ("
                                    << total << " of " << size() << ")");
  });
  GMD_REQUIRE(cache.num_channels == num_channels,
              "partition_by_channel channel count changed ("
                  << cache.num_channels << " -> " << num_channels << ")");
  GMD_REQUIRE(cache.built_size == size(),
              "trace grew after partition_by_channel (partition is stale)");
  return cache.slices;
}

std::string PredecodedTrace::key(const MemoryConfig& config) {
  std::ostringstream os;
  os << config.address_mapping << "|ch" << config.channels << "|rk"
     << config.ranks << "|bk" << config.banks << "|r" << config.rows << "|rb"
     << config.row_bytes << "|ab" << config.access_bytes() << "|clk"
     << config.clock_mhz << "|cpu" << config.cpu_freq_mhz;
  return os.str();
}

}  // namespace gmd::memsim
