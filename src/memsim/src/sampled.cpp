#include "gmd/memsim/sampled.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "gmd/common/deadline.hpp"
#include "gmd/common/error.hpp"
#include "gmd/common/rng.hpp"
#include "gmd/common/stats.hpp"
#include "gmd/memsim/memory_system.hpp"

namespace gmd::memsim {

SpanChunkedTrace::SpanChunkedTrace(std::span<const cpusim::MemoryEvent> events,
                                   std::size_t chunk_events)
    : events_(events), chunk_events_(chunk_events) {
  GMD_REQUIRE(chunk_events > 0, "chunk_events must be positive");
}

std::size_t SpanChunkedTrace::num_chunks() const {
  return (events_.size() + chunk_events_ - 1) / chunk_events_;
}

std::span<const cpusim::MemoryEvent> SpanChunkedTrace::chunk(
    std::size_t index) {
  GMD_REQUIRE(index < num_chunks(), "chunk index out of range");
  const std::size_t first = index * chunk_events_;
  const std::size_t count = std::min(chunk_events_, events_.size() - first);
  return events_.subspan(first, count);
}

void SampledSimOptions::validate() const {
  GMD_REQUIRE(fraction > 0.0 && fraction <= 1.0,
              "sample fraction must be in (0, 1], got " << fraction);
  GMD_REQUIRE(confidence > 0.0 && confidence < 1.0,
              "confidence must be in (0, 1), got " << confidence);
  GMD_REQUIRE(min_relative_halfwidth >= 0.0,
              "min_relative_halfwidth must be non-negative");
}

namespace {

/// Per-window observations, one entry per sampled chunk.  All doubles:
/// the estimators only ever need sums and residuals.
struct ChunkObservations {
  std::vector<double> reads;
  std::vector<double> writes;
  std::vector<double> requests;
  std::vector<double> service_sum;  ///< Sum of service latencies (cycles).
  std::vector<double> total_sum;    ///< Sum of total latencies (cycles).
  std::vector<double> duration_s;
  std::vector<double> dynamic_j;
  std::vector<double> background_j;
  std::vector<double> megabytes;  ///< Data moved, in MB (bandwidth units).
  std::vector<double> row_hits;
  std::vector<double> row_misses;

  void reserve(std::size_t n) {
    for (auto* v : {&reads, &writes, &requests, &service_sum, &total_sum,
                    &duration_s, &dynamic_j, &background_j, &megabytes,
                    &row_hits, &row_misses}) {
      v->reserve(n);
    }
  }
};

/// A point estimate and its confidence half-width.
struct Estimate {
  double value = 0.0;
  double halfwidth = 0.0;
};

double sample_sd(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (const double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(n - 1));
}

/// Expansion (total) estimator for an extensive per-chunk quantity x:
/// T = N·mean(x), half-width t·N·sd(x)/sqrt(n)·sqrt(1 - n/N).
Estimate total_estimate(std::span<const double> x, std::size_t population,
                        double t) {
  const auto n = static_cast<double>(x.size());
  const auto big_n = static_cast<double>(population);
  const double fpc = std::sqrt(std::max(0.0, 1.0 - n / big_n));
  Estimate est;
  est.value = big_n * mean(x);
  est.halfwidth = t * big_n * sample_sd(x) / std::sqrt(n) * fpc;
  return est;
}

/// Ratio estimator R = sum(y)/sum(x) for an intensive quantity (e.g.
/// latency = latency-sum per request): R = mean(y)/mean(x), standard
/// error from the residuals d_k = y_k - R·x_k, the linearization that
/// accounts for the correlated numerator and denominator.
Estimate ratio_estimate(std::span<const double> y, std::span<const double> x,
                        std::size_t population, double t) {
  const auto n = static_cast<double>(x.size());
  const auto big_n = static_cast<double>(population);
  const double xbar = mean(x);
  Estimate est;
  if (xbar == 0.0) return est;
  const double ratio = mean(y) / xbar;
  std::vector<double> residual(x.size());
  for (std::size_t k = 0; k < x.size(); ++k) {
    residual[k] = y[k] - ratio * x[k];
  }
  const double fpc = std::sqrt(std::max(0.0, 1.0 - n / big_n));
  est.value = ratio;
  est.halfwidth = t * fpc * sample_sd(residual) / (std::sqrt(n) * xbar);
  return est;
}

Estimate scale(Estimate est, double factor) {
  est.value *= factor;
  est.halfwidth *= factor;
  return est;
}

MetricInterval interval_around(const Estimate& est, double floor_fraction) {
  const double half =
      std::max(est.halfwidth, floor_fraction * std::abs(est.value));
  return {est.value - half, est.value + half};
}

std::uint64_t to_count(double x) {
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(x));
}

/// Every chunk sampled: one exact exhaustive run, degenerate intervals.
SampledMetrics simulate_all(const MemoryConfig& config, ChunkedTrace& trace,
                            std::size_t num_chunks) {
  MemorySystem system(config);
  std::uint64_t events = 0;
  for (std::size_t k = 0; k < num_chunks; ++k) {
    for (const cpusim::MemoryEvent& event : trace.chunk(k)) {
      system.enqueue_event(event);
      ++events;
    }
  }
  SampledMetrics out;
  out.estimate = system.finish();
  out.chunks_total = num_chunks;
  out.chunks_sampled = num_chunks;
  out.events_simulated = events;
  out.events_measured = events;
  out.exhaustive = true;
  const std::vector<double> values = out.estimate.metric_values();
  for (std::size_t i = 0; i < out.ci.size(); ++i) {
    out.ci[i] = {values[i], values[i]};
  }
  return out;
}

}  // namespace

SampledMetrics simulate_sampled(const MemoryConfig& config,
                                ChunkedTrace& trace,
                                const SampledSimOptions& options) {
  options.validate();
  const std::size_t num_chunks = trace.num_chunks();
  GMD_REQUIRE(num_chunks > 0, "cannot sample an empty trace");

  std::size_t n = static_cast<std::size_t>(
      std::ceil(options.fraction * static_cast<double>(num_chunks)));
  n = std::max({n, options.min_sampled_chunks, std::size_t{2}});
  if (n >= num_chunks) return simulate_all(config, trace, num_chunks);

  // Deterministic seeded subset: shuffle the chunk indexes, take the
  // first n, and visit them in trace order (warmup reuse locality and a
  // stable observation order).
  std::vector<std::size_t> order(num_chunks);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng rng(options.seed);
  rng.shuffle(order);
  std::vector<std::size_t> picks(order.begin(),
                                 order.begin() + static_cast<std::ptrdiff_t>(n));
  std::sort(picks.begin(), picks.end());

  SampledMetrics out;
  out.chunks_total = num_chunks;
  out.chunks_sampled = n;

  ChunkObservations obs;
  obs.reserve(n);
  for (const std::size_t k : picks) {
    if (config.sim.deadline != nullptr) config.sim.deadline->check();
    MemorySystem system(config);
    const std::size_t first_warm =
        k >= options.warmup_chunks ? k - options.warmup_chunks : 0;
    for (std::size_t j = first_warm; j < k; ++j) {
      for (const cpusim::MemoryEvent& event : trace.chunk(j)) {
        system.enqueue_event(event);
        ++out.events_simulated;
      }
    }
    system.begin_measurement();
    for (const cpusim::MemoryEvent& event : trace.chunk(k)) {
      system.enqueue_event(event);
      ++out.events_simulated;
      ++out.events_measured;
    }
    const MemoryMetrics w = system.finish();

    const auto requests =
        static_cast<double>(w.total_reads + w.total_writes);
    obs.reads.push_back(static_cast<double>(w.total_reads));
    obs.writes.push_back(static_cast<double>(w.total_writes));
    obs.requests.push_back(requests);
    obs.service_sum.push_back(w.avg_latency_cycles * requests);
    obs.total_sum.push_back(w.avg_total_latency_cycles * requests);
    obs.duration_s.push_back(w.execution_seconds);
    obs.dynamic_j.push_back(w.dynamic_energy_j);
    obs.background_j.push_back(w.background_energy_j);
    obs.megabytes.push_back(w.avg_bandwidth_per_bank_mbs *
                            static_cast<double>(w.banks_total) *
                            w.execution_seconds);
    obs.row_hits.push_back(static_cast<double>(w.row_hits));
    obs.row_misses.push_back(static_cast<double>(w.row_misses));
  }

  // `confidence` is a joint guarantee over all six reported metrics, so
  // each per-metric interval runs at the Bonferroni-corrected level
  // 1 - (1 - confidence)/6; two-sided Student-t quantile at n-1 degrees
  // of freedom.  Six uncorrected 95% intervals would jointly cover well
  // below 95%.
  const double alpha =
      (1.0 - options.confidence) / static_cast<double>(out.ci.size());
  const double t = student_t_quantile(1.0 - alpha / 2.0, n - 1);
  const auto channels = static_cast<double>(config.channels);
  const auto banks_total =
      static_cast<double>(config.channels) *
      static_cast<double>(config.ranks) * static_cast<double>(config.banks);

  // Extensive totals scale by N; intensive metrics are ratios of chunk
  // totals, matching how the exhaustive run computes them (e.g. average
  // latency = total latency-sum / total requests).
  const Estimate reads_t = total_estimate(obs.reads, num_chunks, t);
  const Estimate writes_t = total_estimate(obs.writes, num_chunks, t);
  const Estimate duration_t = total_estimate(obs.duration_s, num_chunks, t);
  const Estimate dynamic_t = total_estimate(obs.dynamic_j, num_chunks, t);
  const Estimate background_t =
      total_estimate(obs.background_j, num_chunks, t);
  const Estimate hits_t = total_estimate(obs.row_hits, num_chunks, t);
  const Estimate misses_t = total_estimate(obs.row_misses, num_chunks, t);

  std::vector<double> energy(n);
  for (std::size_t k = 0; k < n; ++k) {
    energy[k] = obs.dynamic_j[k] + obs.background_j[k];
  }
  const Estimate power = scale(
      ratio_estimate(energy, obs.duration_s, num_chunks, t), 1.0 / channels);
  const Estimate bandwidth =
      scale(ratio_estimate(obs.megabytes, obs.duration_s, num_chunks, t),
            1.0 / banks_total);
  const Estimate latency =
      ratio_estimate(obs.service_sum, obs.requests, num_chunks, t);
  const Estimate total_latency =
      ratio_estimate(obs.total_sum, obs.requests, num_chunks, t);
  const Estimate reads_per_channel = scale(reads_t, 1.0 / channels);
  const Estimate writes_per_channel = scale(writes_t, 1.0 / channels);

  MemoryMetrics& m = out.estimate;
  m.channels = config.channels;
  m.banks_total = static_cast<std::uint32_t>(banks_total);
  m.avg_power_per_channel_w = power.value;
  m.avg_bandwidth_per_bank_mbs = bandwidth.value;
  m.avg_latency_cycles = latency.value;
  m.avg_total_latency_cycles = total_latency.value;
  m.avg_reads_per_channel = reads_per_channel.value;
  m.avg_writes_per_channel = writes_per_channel.value;
  m.total_reads = to_count(reads_t.value);
  m.total_writes = to_count(writes_t.value);
  m.execution_seconds = duration_t.value;
  m.dynamic_energy_j = dynamic_t.value;
  m.background_energy_j = background_t.value;
  m.row_hits = to_count(hits_t.value);
  m.row_misses = to_count(misses_t.value);

  // Interval order must match MemoryMetrics::metric_names().
  const std::array<Estimate, 6> per_metric = {
      power,   bandwidth,        latency,
      total_latency, reads_per_channel, writes_per_channel};
  for (std::size_t i = 0; i < per_metric.size(); ++i) {
    out.ci[i] = interval_around(per_metric[i], options.min_relative_halfwidth);
  }
  return out;
}

}  // namespace gmd::memsim
