#include "gmd/memsim/memory_system.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <thread>

#include "gmd/common/deadline.hpp"
#include "gmd/common/error.hpp"

namespace gmd::memsim {

namespace {

/// Worker count the static simulate() entries actually use: capped at
/// the channel count (a worker without channels is pure overhead) and
/// forced serial under reference_mode.
std::uint32_t parallel_workers(const MemoryConfig& config) {
  if (config.sim.reference_mode) return 1;
  return std::min(config.sim.num_workers, config.channels);
}

}  // namespace

MemorySystem::MemorySystem(const MemoryConfig& config)
    : config_(config), decoder_(config) {
  config_.validate();
  channels_.reserve(config_.channels);
  for (std::uint32_t c = 0; c < config_.channels; ++c) {
    channels_.emplace_back(config_);
  }
  baseline_.resize(config_.channels);
  for (ChannelStats& base : baseline_) {
    base.bank_bytes.assign(
        static_cast<std::size_t>(config_.ranks) * config_.banks, 0);
  }
}

std::uint64_t MemorySystem::tick_to_memory_cycle(std::uint64_t tick) const {
  return memsim::tick_to_memory_cycle(config_, tick);
}

void MemorySystem::enqueue_event(const cpusim::MemoryEvent& event) {
  GMD_REQUIRE(!finished_, "enqueue_event after finish()");
  GMD_REQUIRE(event.size > 0, "event size must be positive");
  const std::uint64_t word = config_.access_bytes();
  const std::uint64_t cycle = ticker_(event.tick);
  // Split wide accesses into word-granular requests, as a memory
  // controller's transaction splitter would.  Power-of-two words (the
  // usual case) round with a mask instead of a division pair.
  std::uint64_t first;
  std::uint64_t last;
  if ((word & (word - 1)) == 0) {
    first = event.address & ~(word - 1);
    last = (event.address + event.size - 1) & ~(word - 1);
  } else {
    first = event.address / word * word;
    last = (event.address + event.size - 1) / word * word;
  }
  for (std::uint64_t addr = first; addr <= last; addr += word) {
    enqueue_word(cycle, addr, event.is_write);
  }
}

void MemorySystem::enqueue_word(std::uint64_t cycle, std::uint64_t address,
                                bool is_write) {
  const DecodedAddress loc = decoder_.decode(address);
  Request request;
  request.arrival = cycle;
  request.rank = loc.rank;
  request.bank = loc.bank;
  request.row = loc.row;
  request.column = loc.column;
  request.is_write = is_write;
  channels_[loc.channel].enqueue(request);
  if (is_write) line_writes_.bump(address / 64);
}

void MemorySystem::enqueue_predecoded(const PredecodedTrace& trace) {
  GMD_REQUIRE(!finished_, "enqueue_predecoded after finish()");
  GMD_REQUIRE(trace.config_key == PredecodedTrace::key(config_),
              "predecoded trace was built for a different decode geometry ('"
                  << trace.config_key << "' vs '"
                  << PredecodedTrace::key(config_) << "')");
  const std::size_t n = trace.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Request& request = trace.request[i];
    channels_[trace.channel[i]].enqueue_trusted(request);
    if (request.is_write) line_writes_.bump(trace.line[i]);
  }
}

void MemorySystem::begin_measurement() {
  GMD_REQUIRE(!finished_, "begin_measurement after finish()");
  GMD_REQUIRE(!measuring_, "begin_measurement called twice");
  GMD_REQUIRE(config_.epoch_cycles == 0,
              "measurement windows don't support epoch series "
              "(epoch_cycles must be 0)");
  measuring_ = true;
  // Deliberately no drain here (and none in finish() for a windowed
  // run): the window measures the steady-state schedule.  Warmup
  // requests still queued at this point get serviced — and counted —
  // inside the window, and in exchange the window's own still-queued
  // tail is left to the (never-simulated) successor window.  Under a
  // stationary backlog the two boundaries cancel, which is what makes
  // chunk-sampled estimates unbiased; draining either edge instead
  // injects an O(queue_depth / chunk_events) bias into the latency
  // metrics because a drained queue restarts from an artificial idle
  // point.
  std::uint64_t start = 0;
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    channels_[c].sync_stats();
    baseline_[c] = channels_[c].stats();
    start = std::max(start, baseline_[c].last_completion);
  }
  measure_start_ = start;
  line_writes_ = FlatCounter();
}

MemoryMetrics MemorySystem::finish() {
  GMD_REQUIRE(!finished_, "finish() called twice");
  finished_ = true;
  // Whole-trace runs drain — every request must be accounted for.  A
  // measurement window instead stops at the serviced frontier (see
  // begin_measurement()): its queued tail belongs to the successor
  // window, mirroring the backlog it inherited from warmup.
  for (Channel& channel : channels_) {
    if (measuring_) {
      channel.sync_stats();
    } else {
      channel.drain();
    }
  }

  MemoryMetrics m;
  m.channels = config_.channels;
  m.banks_total = decoder_.total_banks();

  std::uint64_t last_completion = 0;
  for (const Channel& channel : channels_) {
    last_completion =
        std::max(last_completion, channel.stats().last_completion);
  }
  const double clock_hz = static_cast<double>(config_.clock_mhz) * 1e6;
  // Everything below subtracts the measurement baselines, which stay
  // all-zero unless begin_measurement() ran — subtracting zero from a
  // u64 is exact, so the unwindowed arithmetic is unchanged.
  m.execution_seconds =
      last_completion
          ? static_cast<double>(last_completion - measure_start_) / clock_hz
          : 0.0;

  std::uint64_t sum_service = 0;
  std::uint64_t sum_total = 0;
  double dynamic_nj = 0.0;
  double bank_bw_sum_mbs = 0.0;
  const EnergyParams& e = config_.energy;
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    const ChannelStats& s = channels_[c].stats();
    const ChannelStats& base = baseline_[c];
    m.total_reads += s.reads - base.reads;
    m.total_writes += s.writes - base.writes;
    m.row_hits += s.row_hits - base.row_hits;
    m.row_misses += s.row_misses - base.row_misses;
    sum_service += s.sum_service_latency - base.sum_service_latency;
    sum_total += s.sum_total_latency - base.sum_total_latency;
    // Refresh count over the whole (windowed) run, not just to this
    // channel's own last completion (refresh runs as long as the system
    // does).
    const std::uint64_t refreshes =
        config_.timing.tREFI
            ? (last_completion / config_.timing.tREFI -
               measure_start_ / config_.timing.tREFI) *
                  (static_cast<std::uint64_t>(config_.ranks) * config_.banks)
            : 0;
    dynamic_nj += static_cast<double>(s.activations - base.activations) *
                      e.activate_nj +
                  static_cast<double>(s.precharges - base.precharges) *
                      e.precharge_nj +
                  static_cast<double>(s.reads - base.reads) * e.read_nj +
                  static_cast<double>(s.writes - base.writes) * e.write_nj +
                  static_cast<double>(refreshes) * e.refresh_nj;
    if (m.execution_seconds > 0.0) {
      for (std::size_t b = 0; b < s.bank_bytes.size(); ++b) {
        bank_bw_sum_mbs +=
            static_cast<double>(s.bank_bytes[b] - base.bank_bytes[b]) / 1e6 /
            m.execution_seconds;
      }
    }
  }

  const std::uint64_t requests = m.total_reads + m.total_writes;
  m.avg_latency_cycles =
      requests ? static_cast<double>(sum_service) /
                     static_cast<double>(requests)
               : 0.0;
  m.avg_total_latency_cycles =
      requests
          ? static_cast<double>(sum_total) / static_cast<double>(requests)
          : 0.0;
  m.avg_reads_per_channel = static_cast<double>(m.total_reads) /
                            static_cast<double>(config_.channels);
  m.avg_writes_per_channel = static_cast<double>(m.total_writes) /
                             static_cast<double>(config_.channels);
  m.avg_bandwidth_per_bank_mbs =
      bank_bw_sum_mbs / static_cast<double>(m.banks_total);

  // Power: dynamic energy over the run plus per-channel background.
  m.dynamic_energy_j = dynamic_nj * 1e-9;
  const double background_w_per_channel =
      (e.static_mw + e.background_mw_per_mhz *
                         static_cast<double>(config_.clock_mhz)) /
      1000.0;
  m.background_energy_j = background_w_per_channel *
                          static_cast<double>(config_.channels) *
                          m.execution_seconds;
  m.avg_power_per_channel_w =
      m.execution_seconds > 0.0
          ? m.total_energy_j() /
                (m.execution_seconds * static_cast<double>(config_.channels))
          : 0.0;

  m.max_line_writes = line_writes_.max_count();
  m.unique_lines_written = line_writes_.size();

  // Merge epoch series across channels (NVMain PrintGraphs output).
  if (config_.epoch_cycles > 0) {
    std::size_t num_epochs = 0;
    for (const Channel& channel : channels_) {
      num_epochs = std::max(num_epochs, channel.stats().epochs.size());
    }
    const double epoch_seconds =
        static_cast<double>(config_.epoch_cycles) / clock_hz;
    m.epochs.resize(num_epochs);
    for (std::size_t e = 0; e < num_epochs; ++e) {
      MemoryMetrics::EpochSample& sample = m.epochs[e];
      sample.epoch = e;
      std::uint64_t sum_latency = 0;
      std::uint64_t bytes = 0;
      for (const Channel& channel : channels_) {
        const auto& epochs = channel.stats().epochs;
        if (e >= epochs.size()) continue;
        sample.reads += epochs[e].reads;
        sample.writes += epochs[e].writes;
        sum_latency += epochs[e].sum_total_latency;
        bytes += epochs[e].bytes;
      }
      const std::uint64_t requests = sample.reads + sample.writes;
      sample.avg_total_latency_cycles =
          requests ? static_cast<double>(sum_latency) /
                         static_cast<double>(requests)
                   : 0.0;
      sample.bandwidth_mbs =
          static_cast<double>(bytes) / 1e6 / epoch_seconds;
    }
  }
  return m;
}

void MemorySystem::replay_parallel(const PredecodedTrace& trace,
                                   std::uint32_t workers) {
  GMD_REQUIRE(!finished_, "replay_parallel after finish()");
  GMD_REQUIRE(trace.config_key == PredecodedTrace::key(config_),
              "predecoded trace was built for a different decode geometry ('"
                  << trace.config_key << "' vs '"
                  << PredecodedTrace::key(config_) << "')");
  GMD_ASSERT(workers >= 2 && workers <= config_.channels,
             "replay_parallel worker count out of range");
  const std::vector<ChannelSlice>& slices =
      trace.partition_by_channel(config_.channels);

  // Each worker polls the caller's deadline through its own budget-less
  // child token: Deadline::check() is single-threaded, the parent's
  // cancelled()/expired_chain() are not.
  Deadline* const parent = config_.sim.deadline;
  std::vector<std::unique_ptr<Deadline>> tokens(workers);
  if (parent != nullptr) {
    for (auto& token : tokens) token = std::make_unique<Deadline>(parent);
  }
  std::vector<FlatCounter> worker_lines(workers);
  std::vector<std::exception_ptr> errors(workers);

  const auto run_worker = [&](std::uint32_t w) noexcept {
    try {
      Deadline* const deadline = tokens[w].get();
      FlatCounter& lines = worker_lines[w];
      for (std::uint32_t c = w; c < config_.channels; c += workers) {
        Channel& chan = channels_[c];
        chan.set_deadline(deadline);
        const ChannelSlice& slice = slices[c];
        const std::size_t n = slice.size();
        for (std::size_t i = 0; i < n; ++i) {
          // The channel only polls on queue-full back-pressure, which a
          // short or bursty slice may never hit — poll here too so a
          // point_wall_budget cancellation lands promptly.
          if (deadline != nullptr && (i & 0xFFFu) == 0) deadline->check();
          const Request& request = slice.request[i];
          chan.enqueue_trusted(request);
          if (request.is_write) lines.bump(slice.line[i]);
        }
        chan.drain();
      }
    } catch (...) {
      errors[w] = std::current_exception();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::uint32_t w = 1; w < workers; ++w) threads.emplace_back(run_worker, w);
  run_worker(0);
  for (std::thread& thread : threads) thread.join();

  // Re-point the channels at the caller's token before anything can
  // throw — the worker tokens die with this frame.
  for (Channel& chan : channels_) chan.set_deadline(parent);
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  // Deterministic merge order (worker 0 first); max/size would come out
  // identical under any order regardless.
  for (const FlatCounter& lines : worker_lines) line_writes_.merge(lines);
}

MemoryMetrics MemorySystem::simulate(
    const MemoryConfig& config, std::span<const cpusim::MemoryEvent> trace) {
  if (parallel_workers(config) > 1) {
    return simulate(config, PredecodedTrace::build(config, trace));
  }
  MemorySystem system(config);
  for (const auto& event : trace) system.enqueue_event(event);
  return system.finish();
}

MemoryMetrics MemorySystem::simulate(const MemoryConfig& config,
                                     const PredecodedTrace& trace) {
  MemorySystem system(config);
  const std::uint32_t workers = parallel_workers(config);
  if (workers > 1) {
    system.replay_parallel(trace, workers);
  } else {
    system.enqueue_predecoded(trace);
  }
  return system.finish();
}

}  // namespace gmd::memsim
