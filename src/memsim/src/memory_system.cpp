#include "gmd/memsim/memory_system.hpp"

#include <algorithm>

#include "gmd/common/error.hpp"

namespace gmd::memsim {

MemorySystem::MemorySystem(const MemoryConfig& config)
    : config_(config), decoder_(config) {
  config_.validate();
  channels_.reserve(config_.channels);
  for (std::uint32_t c = 0; c < config_.channels; ++c) {
    channels_.emplace_back(config_);
  }
}

std::uint64_t MemorySystem::tick_to_memory_cycle(std::uint64_t tick) const {
  return memsim::tick_to_memory_cycle(config_, tick);
}

void MemorySystem::enqueue_event(const cpusim::MemoryEvent& event) {
  GMD_REQUIRE(!finished_, "enqueue_event after finish()");
  GMD_REQUIRE(event.size > 0, "event size must be positive");
  const std::uint64_t word = config_.access_bytes();
  const std::uint64_t cycle = ticker_(event.tick);
  // Split wide accesses into word-granular requests, as a memory
  // controller's transaction splitter would.  Power-of-two words (the
  // usual case) round with a mask instead of a division pair.
  std::uint64_t first;
  std::uint64_t last;
  if ((word & (word - 1)) == 0) {
    first = event.address & ~(word - 1);
    last = (event.address + event.size - 1) & ~(word - 1);
  } else {
    first = event.address / word * word;
    last = (event.address + event.size - 1) / word * word;
  }
  for (std::uint64_t addr = first; addr <= last; addr += word) {
    enqueue_word(cycle, addr, event.is_write);
  }
}

void MemorySystem::enqueue_word(std::uint64_t cycle, std::uint64_t address,
                                bool is_write) {
  const DecodedAddress loc = decoder_.decode(address);
  Request request;
  request.arrival = cycle;
  request.rank = loc.rank;
  request.bank = loc.bank;
  request.row = loc.row;
  request.column = loc.column;
  request.is_write = is_write;
  channels_[loc.channel].enqueue(request);
  if (is_write) line_writes_.bump(address / 64);
}

void MemorySystem::enqueue_predecoded(const PredecodedTrace& trace) {
  GMD_REQUIRE(!finished_, "enqueue_predecoded after finish()");
  GMD_REQUIRE(trace.config_key == PredecodedTrace::key(config_),
              "predecoded trace was built for a different decode geometry ('"
                  << trace.config_key << "' vs '"
                  << PredecodedTrace::key(config_) << "')");
  const std::size_t n = trace.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Request& request = trace.request[i];
    channels_[trace.channel[i]].enqueue_trusted(request);
    if (request.is_write) line_writes_.bump(trace.line[i]);
  }
}

MemoryMetrics MemorySystem::finish() {
  GMD_REQUIRE(!finished_, "finish() called twice");
  finished_ = true;
  for (Channel& channel : channels_) channel.drain();

  MemoryMetrics m;
  m.channels = config_.channels;
  m.banks_total = decoder_.total_banks();

  std::uint64_t last_completion = 0;
  for (const Channel& channel : channels_) {
    last_completion =
        std::max(last_completion, channel.stats().last_completion);
  }
  const double clock_hz = static_cast<double>(config_.clock_mhz) * 1e6;
  m.execution_seconds =
      last_completion ? static_cast<double>(last_completion) / clock_hz : 0.0;

  std::uint64_t sum_service = 0;
  std::uint64_t sum_total = 0;
  double dynamic_nj = 0.0;
  double bank_bw_sum_mbs = 0.0;
  const EnergyParams& e = config_.energy;
  for (const Channel& channel : channels_) {
    const ChannelStats& s = channel.stats();
    m.total_reads += s.reads;
    m.total_writes += s.writes;
    m.row_hits += s.row_hits;
    m.row_misses += s.row_misses;
    sum_service += s.sum_service_latency;
    sum_total += s.sum_total_latency;
    // Refresh count over the whole run, not just to this channel's own
    // last completion (refresh runs as long as the system does).
    const std::uint64_t refreshes =
        config_.timing.tREFI
            ? last_completion / config_.timing.tREFI *
                  (static_cast<std::uint64_t>(config_.ranks) * config_.banks)
            : 0;
    dynamic_nj += static_cast<double>(s.activations) * e.activate_nj +
                  static_cast<double>(s.precharges) * e.precharge_nj +
                  static_cast<double>(s.reads) * e.read_nj +
                  static_cast<double>(s.writes) * e.write_nj +
                  static_cast<double>(refreshes) * e.refresh_nj;
    if (m.execution_seconds > 0.0) {
      for (const std::uint64_t bytes : s.bank_bytes) {
        bank_bw_sum_mbs +=
            static_cast<double>(bytes) / 1e6 / m.execution_seconds;
      }
    }
  }

  const std::uint64_t requests = m.total_reads + m.total_writes;
  m.avg_latency_cycles =
      requests ? static_cast<double>(sum_service) /
                     static_cast<double>(requests)
               : 0.0;
  m.avg_total_latency_cycles =
      requests
          ? static_cast<double>(sum_total) / static_cast<double>(requests)
          : 0.0;
  m.avg_reads_per_channel = static_cast<double>(m.total_reads) /
                            static_cast<double>(config_.channels);
  m.avg_writes_per_channel = static_cast<double>(m.total_writes) /
                             static_cast<double>(config_.channels);
  m.avg_bandwidth_per_bank_mbs =
      bank_bw_sum_mbs / static_cast<double>(m.banks_total);

  // Power: dynamic energy over the run plus per-channel background.
  m.dynamic_energy_j = dynamic_nj * 1e-9;
  const double background_w_per_channel =
      (e.static_mw + e.background_mw_per_mhz *
                         static_cast<double>(config_.clock_mhz)) /
      1000.0;
  m.background_energy_j = background_w_per_channel *
                          static_cast<double>(config_.channels) *
                          m.execution_seconds;
  m.avg_power_per_channel_w =
      m.execution_seconds > 0.0
          ? m.total_energy_j() /
                (m.execution_seconds * static_cast<double>(config_.channels))
          : 0.0;

  m.max_line_writes = line_writes_.max_count();
  m.unique_lines_written = line_writes_.size();

  // Merge epoch series across channels (NVMain PrintGraphs output).
  if (config_.epoch_cycles > 0) {
    std::size_t num_epochs = 0;
    for (const Channel& channel : channels_) {
      num_epochs = std::max(num_epochs, channel.stats().epochs.size());
    }
    const double epoch_seconds =
        static_cast<double>(config_.epoch_cycles) / clock_hz;
    m.epochs.resize(num_epochs);
    for (std::size_t e = 0; e < num_epochs; ++e) {
      MemoryMetrics::EpochSample& sample = m.epochs[e];
      sample.epoch = e;
      std::uint64_t sum_latency = 0;
      std::uint64_t bytes = 0;
      for (const Channel& channel : channels_) {
        const auto& epochs = channel.stats().epochs;
        if (e >= epochs.size()) continue;
        sample.reads += epochs[e].reads;
        sample.writes += epochs[e].writes;
        sum_latency += epochs[e].sum_total_latency;
        bytes += epochs[e].bytes;
      }
      const std::uint64_t requests = sample.reads + sample.writes;
      sample.avg_total_latency_cycles =
          requests ? static_cast<double>(sum_latency) /
                         static_cast<double>(requests)
                   : 0.0;
      sample.bandwidth_mbs =
          static_cast<double>(bytes) / 1e6 / epoch_seconds;
    }
  }
  return m;
}

MemoryMetrics MemorySystem::simulate(
    const MemoryConfig& config, std::span<const cpusim::MemoryEvent> trace) {
  MemorySystem system(config);
  for (const auto& event : trace) system.enqueue_event(event);
  return system.finish();
}

MemoryMetrics MemorySystem::simulate(const MemoryConfig& config,
                                     const PredecodedTrace& trace) {
  MemorySystem system(config);
  system.enqueue_predecoded(trace);
  return system.finish();
}

}  // namespace gmd::memsim
