
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/memsim/test_address.cpp" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_address.cpp.o" "gcc" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_address.cpp.o.d"
  "/root/repo/tests/memsim/test_address_mapping.cpp" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_address_mapping.cpp.o" "gcc" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_address_mapping.cpp.o.d"
  "/root/repo/tests/memsim/test_channel.cpp" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_channel.cpp.o" "gcc" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_channel.cpp.o.d"
  "/root/repo/tests/memsim/test_config.cpp" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_config.cpp.o" "gcc" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_config.cpp.o.d"
  "/root/repo/tests/memsim/test_config_io.cpp" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_config_io.cpp.o" "gcc" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_config_io.cpp.o.d"
  "/root/repo/tests/memsim/test_epochs.cpp" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_epochs.cpp.o" "gcc" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_epochs.cpp.o.d"
  "/root/repo/tests/memsim/test_hybrid.cpp" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_hybrid.cpp.o" "gcc" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_hybrid.cpp.o.d"
  "/root/repo/tests/memsim/test_memory_system.cpp" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_memory_system.cpp.o" "gcc" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_memory_system.cpp.o.d"
  "/root/repo/tests/memsim/test_migration.cpp" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_migration.cpp.o" "gcc" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_migration.cpp.o.d"
  "/root/repo/tests/memsim/test_properties.cpp" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_properties.cpp.o" "gcc" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/memsim/test_rank_timing.cpp" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_rank_timing.cpp.o" "gcc" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_rank_timing.cpp.o.d"
  "/root/repo/tests/memsim/test_read_priority.cpp" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_read_priority.cpp.o" "gcc" "tests/memsim/CMakeFiles/gmd_memsim_tests.dir/test_read_priority.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memsim/CMakeFiles/gmd_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpusim/CMakeFiles/gmd_cpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gmd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gmd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
