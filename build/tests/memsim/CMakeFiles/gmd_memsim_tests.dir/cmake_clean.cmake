file(REMOVE_RECURSE
  "CMakeFiles/gmd_memsim_tests.dir/test_address.cpp.o"
  "CMakeFiles/gmd_memsim_tests.dir/test_address.cpp.o.d"
  "CMakeFiles/gmd_memsim_tests.dir/test_address_mapping.cpp.o"
  "CMakeFiles/gmd_memsim_tests.dir/test_address_mapping.cpp.o.d"
  "CMakeFiles/gmd_memsim_tests.dir/test_channel.cpp.o"
  "CMakeFiles/gmd_memsim_tests.dir/test_channel.cpp.o.d"
  "CMakeFiles/gmd_memsim_tests.dir/test_config.cpp.o"
  "CMakeFiles/gmd_memsim_tests.dir/test_config.cpp.o.d"
  "CMakeFiles/gmd_memsim_tests.dir/test_config_io.cpp.o"
  "CMakeFiles/gmd_memsim_tests.dir/test_config_io.cpp.o.d"
  "CMakeFiles/gmd_memsim_tests.dir/test_epochs.cpp.o"
  "CMakeFiles/gmd_memsim_tests.dir/test_epochs.cpp.o.d"
  "CMakeFiles/gmd_memsim_tests.dir/test_hybrid.cpp.o"
  "CMakeFiles/gmd_memsim_tests.dir/test_hybrid.cpp.o.d"
  "CMakeFiles/gmd_memsim_tests.dir/test_memory_system.cpp.o"
  "CMakeFiles/gmd_memsim_tests.dir/test_memory_system.cpp.o.d"
  "CMakeFiles/gmd_memsim_tests.dir/test_migration.cpp.o"
  "CMakeFiles/gmd_memsim_tests.dir/test_migration.cpp.o.d"
  "CMakeFiles/gmd_memsim_tests.dir/test_properties.cpp.o"
  "CMakeFiles/gmd_memsim_tests.dir/test_properties.cpp.o.d"
  "CMakeFiles/gmd_memsim_tests.dir/test_rank_timing.cpp.o"
  "CMakeFiles/gmd_memsim_tests.dir/test_rank_timing.cpp.o.d"
  "CMakeFiles/gmd_memsim_tests.dir/test_read_priority.cpp.o"
  "CMakeFiles/gmd_memsim_tests.dir/test_read_priority.cpp.o.d"
  "gmd_memsim_tests"
  "gmd_memsim_tests.pdb"
  "gmd_memsim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmd_memsim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
