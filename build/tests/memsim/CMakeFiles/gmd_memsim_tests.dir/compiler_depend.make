# Empty compiler generated dependencies file for gmd_memsim_tests.
# This may be replaced when dependencies are built.
