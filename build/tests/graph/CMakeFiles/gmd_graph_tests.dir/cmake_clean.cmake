file(REMOVE_RECURSE
  "CMakeFiles/gmd_graph_tests.dir/test_algorithms.cpp.o"
  "CMakeFiles/gmd_graph_tests.dir/test_algorithms.cpp.o.d"
  "CMakeFiles/gmd_graph_tests.dir/test_bfs.cpp.o"
  "CMakeFiles/gmd_graph_tests.dir/test_bfs.cpp.o.d"
  "CMakeFiles/gmd_graph_tests.dir/test_csr.cpp.o"
  "CMakeFiles/gmd_graph_tests.dir/test_csr.cpp.o.d"
  "CMakeFiles/gmd_graph_tests.dir/test_edge_list.cpp.o"
  "CMakeFiles/gmd_graph_tests.dir/test_edge_list.cpp.o.d"
  "CMakeFiles/gmd_graph_tests.dir/test_generator_properties.cpp.o"
  "CMakeFiles/gmd_graph_tests.dir/test_generator_properties.cpp.o.d"
  "CMakeFiles/gmd_graph_tests.dir/test_generators.cpp.o"
  "CMakeFiles/gmd_graph_tests.dir/test_generators.cpp.o.d"
  "CMakeFiles/gmd_graph_tests.dir/test_graph500.cpp.o"
  "CMakeFiles/gmd_graph_tests.dir/test_graph500.cpp.o.d"
  "CMakeFiles/gmd_graph_tests.dir/test_io.cpp.o"
  "CMakeFiles/gmd_graph_tests.dir/test_io.cpp.o.d"
  "gmd_graph_tests"
  "gmd_graph_tests.pdb"
  "gmd_graph_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmd_graph_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
