
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/test_algorithms.cpp" "tests/graph/CMakeFiles/gmd_graph_tests.dir/test_algorithms.cpp.o" "gcc" "tests/graph/CMakeFiles/gmd_graph_tests.dir/test_algorithms.cpp.o.d"
  "/root/repo/tests/graph/test_bfs.cpp" "tests/graph/CMakeFiles/gmd_graph_tests.dir/test_bfs.cpp.o" "gcc" "tests/graph/CMakeFiles/gmd_graph_tests.dir/test_bfs.cpp.o.d"
  "/root/repo/tests/graph/test_csr.cpp" "tests/graph/CMakeFiles/gmd_graph_tests.dir/test_csr.cpp.o" "gcc" "tests/graph/CMakeFiles/gmd_graph_tests.dir/test_csr.cpp.o.d"
  "/root/repo/tests/graph/test_edge_list.cpp" "tests/graph/CMakeFiles/gmd_graph_tests.dir/test_edge_list.cpp.o" "gcc" "tests/graph/CMakeFiles/gmd_graph_tests.dir/test_edge_list.cpp.o.d"
  "/root/repo/tests/graph/test_generator_properties.cpp" "tests/graph/CMakeFiles/gmd_graph_tests.dir/test_generator_properties.cpp.o" "gcc" "tests/graph/CMakeFiles/gmd_graph_tests.dir/test_generator_properties.cpp.o.d"
  "/root/repo/tests/graph/test_generators.cpp" "tests/graph/CMakeFiles/gmd_graph_tests.dir/test_generators.cpp.o" "gcc" "tests/graph/CMakeFiles/gmd_graph_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/graph/test_graph500.cpp" "tests/graph/CMakeFiles/gmd_graph_tests.dir/test_graph500.cpp.o" "gcc" "tests/graph/CMakeFiles/gmd_graph_tests.dir/test_graph500.cpp.o.d"
  "/root/repo/tests/graph/test_io.cpp" "tests/graph/CMakeFiles/gmd_graph_tests.dir/test_io.cpp.o" "gcc" "tests/graph/CMakeFiles/gmd_graph_tests.dir/test_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/gmd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gmd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
