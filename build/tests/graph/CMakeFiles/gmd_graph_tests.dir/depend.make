# Empty dependencies file for gmd_graph_tests.
# This may be replaced when dependencies are built.
