
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/test_dataset.cpp" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_dataset.cpp.o" "gcc" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_dataset.cpp.o.d"
  "/root/repo/tests/ml/test_ensembles.cpp" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_ensembles.cpp.o" "gcc" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_ensembles.cpp.o.d"
  "/root/repo/tests/ml/test_feature_importance.cpp" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_feature_importance.cpp.o" "gcc" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_feature_importance.cpp.o.d"
  "/root/repo/tests/ml/test_gp.cpp" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_gp.cpp.o" "gcc" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_gp.cpp.o.d"
  "/root/repo/tests/ml/test_linear.cpp" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_linear.cpp.o" "gcc" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_linear.cpp.o.d"
  "/root/repo/tests/ml/test_matrix.cpp" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_matrix.cpp.o" "gcc" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_matrix.cpp.o.d"
  "/root/repo/tests/ml/test_metrics.cpp" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_metrics.cpp.o" "gcc" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/ml/test_model_selection.cpp" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_model_selection.cpp.o" "gcc" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_model_selection.cpp.o.d"
  "/root/repo/tests/ml/test_regressors.cpp" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_regressors.cpp.o" "gcc" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_regressors.cpp.o.d"
  "/root/repo/tests/ml/test_scaler.cpp" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_scaler.cpp.o" "gcc" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_scaler.cpp.o.d"
  "/root/repo/tests/ml/test_serialize.cpp" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_serialize.cpp.o" "gcc" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/ml/test_svr.cpp" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_svr.cpp.o" "gcc" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_svr.cpp.o.d"
  "/root/repo/tests/ml/test_tree.cpp" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_tree.cpp.o" "gcc" "tests/ml/CMakeFiles/gmd_ml_tests.dir/test_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/gmd_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gmd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
