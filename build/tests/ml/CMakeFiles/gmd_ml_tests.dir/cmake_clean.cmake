file(REMOVE_RECURSE
  "CMakeFiles/gmd_ml_tests.dir/test_dataset.cpp.o"
  "CMakeFiles/gmd_ml_tests.dir/test_dataset.cpp.o.d"
  "CMakeFiles/gmd_ml_tests.dir/test_ensembles.cpp.o"
  "CMakeFiles/gmd_ml_tests.dir/test_ensembles.cpp.o.d"
  "CMakeFiles/gmd_ml_tests.dir/test_feature_importance.cpp.o"
  "CMakeFiles/gmd_ml_tests.dir/test_feature_importance.cpp.o.d"
  "CMakeFiles/gmd_ml_tests.dir/test_gp.cpp.o"
  "CMakeFiles/gmd_ml_tests.dir/test_gp.cpp.o.d"
  "CMakeFiles/gmd_ml_tests.dir/test_linear.cpp.o"
  "CMakeFiles/gmd_ml_tests.dir/test_linear.cpp.o.d"
  "CMakeFiles/gmd_ml_tests.dir/test_matrix.cpp.o"
  "CMakeFiles/gmd_ml_tests.dir/test_matrix.cpp.o.d"
  "CMakeFiles/gmd_ml_tests.dir/test_metrics.cpp.o"
  "CMakeFiles/gmd_ml_tests.dir/test_metrics.cpp.o.d"
  "CMakeFiles/gmd_ml_tests.dir/test_model_selection.cpp.o"
  "CMakeFiles/gmd_ml_tests.dir/test_model_selection.cpp.o.d"
  "CMakeFiles/gmd_ml_tests.dir/test_regressors.cpp.o"
  "CMakeFiles/gmd_ml_tests.dir/test_regressors.cpp.o.d"
  "CMakeFiles/gmd_ml_tests.dir/test_scaler.cpp.o"
  "CMakeFiles/gmd_ml_tests.dir/test_scaler.cpp.o.d"
  "CMakeFiles/gmd_ml_tests.dir/test_serialize.cpp.o"
  "CMakeFiles/gmd_ml_tests.dir/test_serialize.cpp.o.d"
  "CMakeFiles/gmd_ml_tests.dir/test_svr.cpp.o"
  "CMakeFiles/gmd_ml_tests.dir/test_svr.cpp.o.d"
  "CMakeFiles/gmd_ml_tests.dir/test_tree.cpp.o"
  "CMakeFiles/gmd_ml_tests.dir/test_tree.cpp.o.d"
  "gmd_ml_tests"
  "gmd_ml_tests.pdb"
  "gmd_ml_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmd_ml_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
