# Empty dependencies file for gmd_ml_tests.
# This may be replaced when dependencies are built.
