file(REMOVE_RECURSE
  "CMakeFiles/gmd_dse_tests.dir/test_active_learning.cpp.o"
  "CMakeFiles/gmd_dse_tests.dir/test_active_learning.cpp.o.d"
  "CMakeFiles/gmd_dse_tests.dir/test_config_space.cpp.o"
  "CMakeFiles/gmd_dse_tests.dir/test_config_space.cpp.o.d"
  "CMakeFiles/gmd_dse_tests.dir/test_dataset_builder.cpp.o"
  "CMakeFiles/gmd_dse_tests.dir/test_dataset_builder.cpp.o.d"
  "CMakeFiles/gmd_dse_tests.dir/test_design_point.cpp.o"
  "CMakeFiles/gmd_dse_tests.dir/test_design_point.cpp.o.d"
  "CMakeFiles/gmd_dse_tests.dir/test_multi_study.cpp.o"
  "CMakeFiles/gmd_dse_tests.dir/test_multi_study.cpp.o.d"
  "CMakeFiles/gmd_dse_tests.dir/test_pareto.cpp.o"
  "CMakeFiles/gmd_dse_tests.dir/test_pareto.cpp.o.d"
  "CMakeFiles/gmd_dse_tests.dir/test_recommend.cpp.o"
  "CMakeFiles/gmd_dse_tests.dir/test_recommend.cpp.o.d"
  "CMakeFiles/gmd_dse_tests.dir/test_report.cpp.o"
  "CMakeFiles/gmd_dse_tests.dir/test_report.cpp.o.d"
  "CMakeFiles/gmd_dse_tests.dir/test_sensitivity.cpp.o"
  "CMakeFiles/gmd_dse_tests.dir/test_sensitivity.cpp.o.d"
  "CMakeFiles/gmd_dse_tests.dir/test_surrogate.cpp.o"
  "CMakeFiles/gmd_dse_tests.dir/test_surrogate.cpp.o.d"
  "CMakeFiles/gmd_dse_tests.dir/test_sweep.cpp.o"
  "CMakeFiles/gmd_dse_tests.dir/test_sweep.cpp.o.d"
  "CMakeFiles/gmd_dse_tests.dir/test_workflow.cpp.o"
  "CMakeFiles/gmd_dse_tests.dir/test_workflow.cpp.o.d"
  "gmd_dse_tests"
  "gmd_dse_tests.pdb"
  "gmd_dse_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmd_dse_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
