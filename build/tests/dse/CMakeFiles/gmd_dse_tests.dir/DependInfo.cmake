
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dse/test_active_learning.cpp" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_active_learning.cpp.o" "gcc" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_active_learning.cpp.o.d"
  "/root/repo/tests/dse/test_config_space.cpp" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_config_space.cpp.o" "gcc" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_config_space.cpp.o.d"
  "/root/repo/tests/dse/test_dataset_builder.cpp" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_dataset_builder.cpp.o" "gcc" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_dataset_builder.cpp.o.d"
  "/root/repo/tests/dse/test_design_point.cpp" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_design_point.cpp.o" "gcc" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_design_point.cpp.o.d"
  "/root/repo/tests/dse/test_multi_study.cpp" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_multi_study.cpp.o" "gcc" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_multi_study.cpp.o.d"
  "/root/repo/tests/dse/test_pareto.cpp" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_pareto.cpp.o" "gcc" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_pareto.cpp.o.d"
  "/root/repo/tests/dse/test_recommend.cpp" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_recommend.cpp.o" "gcc" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_recommend.cpp.o.d"
  "/root/repo/tests/dse/test_report.cpp" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_report.cpp.o" "gcc" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/dse/test_sensitivity.cpp" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_sensitivity.cpp.o" "gcc" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_sensitivity.cpp.o.d"
  "/root/repo/tests/dse/test_surrogate.cpp" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_surrogate.cpp.o" "gcc" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_surrogate.cpp.o.d"
  "/root/repo/tests/dse/test_sweep.cpp" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_sweep.cpp.o" "gcc" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_sweep.cpp.o.d"
  "/root/repo/tests/dse/test_workflow.cpp" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_workflow.cpp.o" "gcc" "tests/dse/CMakeFiles/gmd_dse_tests.dir/test_workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dse/CMakeFiles/gmd_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/gmd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/gmd_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpusim/CMakeFiles/gmd_cpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gmd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/gmd_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gmd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
