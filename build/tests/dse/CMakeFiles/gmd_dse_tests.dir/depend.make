# Empty dependencies file for gmd_dse_tests.
# This may be replaced when dependencies are built.
