file(REMOVE_RECURSE
  "CMakeFiles/gmd_trace_tests.dir/test_converter.cpp.o"
  "CMakeFiles/gmd_trace_tests.dir/test_converter.cpp.o.d"
  "CMakeFiles/gmd_trace_tests.dir/test_formats.cpp.o"
  "CMakeFiles/gmd_trace_tests.dir/test_formats.cpp.o.d"
  "CMakeFiles/gmd_trace_tests.dir/test_robustness.cpp.o"
  "CMakeFiles/gmd_trace_tests.dir/test_robustness.cpp.o.d"
  "CMakeFiles/gmd_trace_tests.dir/test_stats.cpp.o"
  "CMakeFiles/gmd_trace_tests.dir/test_stats.cpp.o.d"
  "gmd_trace_tests"
  "gmd_trace_tests.pdb"
  "gmd_trace_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmd_trace_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
