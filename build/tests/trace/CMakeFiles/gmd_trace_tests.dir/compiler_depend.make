# Empty compiler generated dependencies file for gmd_trace_tests.
# This may be replaced when dependencies are built.
