# Empty dependencies file for gmd_common_tests.
# This may be replaced when dependencies are built.
