file(REMOVE_RECURSE
  "CMakeFiles/gmd_common_tests.dir/test_cli.cpp.o"
  "CMakeFiles/gmd_common_tests.dir/test_cli.cpp.o.d"
  "CMakeFiles/gmd_common_tests.dir/test_csv.cpp.o"
  "CMakeFiles/gmd_common_tests.dir/test_csv.cpp.o.d"
  "CMakeFiles/gmd_common_tests.dir/test_logging.cpp.o"
  "CMakeFiles/gmd_common_tests.dir/test_logging.cpp.o.d"
  "CMakeFiles/gmd_common_tests.dir/test_rng.cpp.o"
  "CMakeFiles/gmd_common_tests.dir/test_rng.cpp.o.d"
  "CMakeFiles/gmd_common_tests.dir/test_stats.cpp.o"
  "CMakeFiles/gmd_common_tests.dir/test_stats.cpp.o.d"
  "CMakeFiles/gmd_common_tests.dir/test_string_util.cpp.o"
  "CMakeFiles/gmd_common_tests.dir/test_string_util.cpp.o.d"
  "CMakeFiles/gmd_common_tests.dir/test_thread_pool.cpp.o"
  "CMakeFiles/gmd_common_tests.dir/test_thread_pool.cpp.o.d"
  "gmd_common_tests"
  "gmd_common_tests.pdb"
  "gmd_common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmd_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
