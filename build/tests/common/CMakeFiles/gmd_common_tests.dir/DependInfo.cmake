
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_cli.cpp" "tests/common/CMakeFiles/gmd_common_tests.dir/test_cli.cpp.o" "gcc" "tests/common/CMakeFiles/gmd_common_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/common/test_csv.cpp" "tests/common/CMakeFiles/gmd_common_tests.dir/test_csv.cpp.o" "gcc" "tests/common/CMakeFiles/gmd_common_tests.dir/test_csv.cpp.o.d"
  "/root/repo/tests/common/test_logging.cpp" "tests/common/CMakeFiles/gmd_common_tests.dir/test_logging.cpp.o" "gcc" "tests/common/CMakeFiles/gmd_common_tests.dir/test_logging.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/common/CMakeFiles/gmd_common_tests.dir/test_rng.cpp.o" "gcc" "tests/common/CMakeFiles/gmd_common_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_stats.cpp" "tests/common/CMakeFiles/gmd_common_tests.dir/test_stats.cpp.o" "gcc" "tests/common/CMakeFiles/gmd_common_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/common/test_string_util.cpp" "tests/common/CMakeFiles/gmd_common_tests.dir/test_string_util.cpp.o" "gcc" "tests/common/CMakeFiles/gmd_common_tests.dir/test_string_util.cpp.o.d"
  "/root/repo/tests/common/test_thread_pool.cpp" "tests/common/CMakeFiles/gmd_common_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/common/CMakeFiles/gmd_common_tests.dir/test_thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gmd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
