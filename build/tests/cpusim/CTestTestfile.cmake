# CMake generated Testfile for 
# Source directory: /root/repo/tests/cpusim
# Build directory: /root/repo/build/tests/cpusim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cpusim/gmd_cpusim_tests[1]_include.cmake")
