# Empty dependencies file for gmd_cpusim_tests.
# This may be replaced when dependencies are built.
