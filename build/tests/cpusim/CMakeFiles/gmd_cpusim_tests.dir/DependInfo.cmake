
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cpusim/test_address_space.cpp" "tests/cpusim/CMakeFiles/gmd_cpusim_tests.dir/test_address_space.cpp.o" "gcc" "tests/cpusim/CMakeFiles/gmd_cpusim_tests.dir/test_address_space.cpp.o.d"
  "/root/repo/tests/cpusim/test_atomic_cpu.cpp" "tests/cpusim/CMakeFiles/gmd_cpusim_tests.dir/test_atomic_cpu.cpp.o" "gcc" "tests/cpusim/CMakeFiles/gmd_cpusim_tests.dir/test_atomic_cpu.cpp.o.d"
  "/root/repo/tests/cpusim/test_cache.cpp" "tests/cpusim/CMakeFiles/gmd_cpusim_tests.dir/test_cache.cpp.o" "gcc" "tests/cpusim/CMakeFiles/gmd_cpusim_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/cpusim/test_cache_hierarchy.cpp" "tests/cpusim/CMakeFiles/gmd_cpusim_tests.dir/test_cache_hierarchy.cpp.o" "gcc" "tests/cpusim/CMakeFiles/gmd_cpusim_tests.dir/test_cache_hierarchy.cpp.o.d"
  "/root/repo/tests/cpusim/test_config_io.cpp" "tests/cpusim/CMakeFiles/gmd_cpusim_tests.dir/test_config_io.cpp.o" "gcc" "tests/cpusim/CMakeFiles/gmd_cpusim_tests.dir/test_config_io.cpp.o.d"
  "/root/repo/tests/cpusim/test_workload_properties.cpp" "tests/cpusim/CMakeFiles/gmd_cpusim_tests.dir/test_workload_properties.cpp.o" "gcc" "tests/cpusim/CMakeFiles/gmd_cpusim_tests.dir/test_workload_properties.cpp.o.d"
  "/root/repo/tests/cpusim/test_workloads.cpp" "tests/cpusim/CMakeFiles/gmd_cpusim_tests.dir/test_workloads.cpp.o" "gcc" "tests/cpusim/CMakeFiles/gmd_cpusim_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpusim/CMakeFiles/gmd_cpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gmd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gmd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
