file(REMOVE_RECURSE
  "CMakeFiles/gmd_cpusim_tests.dir/test_address_space.cpp.o"
  "CMakeFiles/gmd_cpusim_tests.dir/test_address_space.cpp.o.d"
  "CMakeFiles/gmd_cpusim_tests.dir/test_atomic_cpu.cpp.o"
  "CMakeFiles/gmd_cpusim_tests.dir/test_atomic_cpu.cpp.o.d"
  "CMakeFiles/gmd_cpusim_tests.dir/test_cache.cpp.o"
  "CMakeFiles/gmd_cpusim_tests.dir/test_cache.cpp.o.d"
  "CMakeFiles/gmd_cpusim_tests.dir/test_cache_hierarchy.cpp.o"
  "CMakeFiles/gmd_cpusim_tests.dir/test_cache_hierarchy.cpp.o.d"
  "CMakeFiles/gmd_cpusim_tests.dir/test_config_io.cpp.o"
  "CMakeFiles/gmd_cpusim_tests.dir/test_config_io.cpp.o.d"
  "CMakeFiles/gmd_cpusim_tests.dir/test_workload_properties.cpp.o"
  "CMakeFiles/gmd_cpusim_tests.dir/test_workload_properties.cpp.o.d"
  "CMakeFiles/gmd_cpusim_tests.dir/test_workloads.cpp.o"
  "CMakeFiles/gmd_cpusim_tests.dir/test_workloads.cpp.o.d"
  "gmd_cpusim_tests"
  "gmd_cpusim_tests.pdb"
  "gmd_cpusim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmd_cpusim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
