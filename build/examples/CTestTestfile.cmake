# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--vertices" "96")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_memory_explorer "/root/repo/build/examples/memory_explorer" "--vertices" "96" "--axis" "cpu" "--kind" "dram")
set_tests_properties(example_memory_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_active_learning "/root/repo/build/examples/active_learning_dse" "--vertices" "96" "--budget" "20" "--initial" "6" "--batch" "4")
set_tests_properties(example_active_learning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_tools "/root/repo/build/examples/trace_tools" "--vertices" "96" "--out-dir" "/root/repo/build/examples/traces")
set_tests_properties(example_trace_tools PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_graph500 "/root/repo/build/examples/graph500_runner" "--scale" "7" "--roots" "4")
set_tests_properties(example_graph500 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pareto "/root/repo/build/examples/pareto_codesign" "--vertices" "96")
set_tests_properties(example_pareto PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_surrogate_store "/root/repo/build/examples/surrogate_store" "--vertices" "96" "--dir" "/root/repo/build/examples/models")
set_tests_properties(example_surrogate_store PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_workload "/root/repo/build/examples/multi_workload_study" "--vertices" "96" "--workloads" "bfs,cc")
set_tests_properties(example_multi_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_config_generator "/root/repo/build/examples/config_generator" "--dir" "/root/repo/build/examples/configs" "--space" "reduced")
set_tests_properties(example_config_generator PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
