# Empty compiler generated dependencies file for surrogate_store.
# This may be replaced when dependencies are built.
