file(REMOVE_RECURSE
  "CMakeFiles/surrogate_store.dir/surrogate_store.cpp.o"
  "CMakeFiles/surrogate_store.dir/surrogate_store.cpp.o.d"
  "surrogate_store"
  "surrogate_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surrogate_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
