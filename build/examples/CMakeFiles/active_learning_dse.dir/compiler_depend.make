# Empty compiler generated dependencies file for active_learning_dse.
# This may be replaced when dependencies are built.
