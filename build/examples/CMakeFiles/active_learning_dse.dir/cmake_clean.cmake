file(REMOVE_RECURSE
  "CMakeFiles/active_learning_dse.dir/active_learning_dse.cpp.o"
  "CMakeFiles/active_learning_dse.dir/active_learning_dse.cpp.o.d"
  "active_learning_dse"
  "active_learning_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_learning_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
