# Empty compiler generated dependencies file for pareto_codesign.
# This may be replaced when dependencies are built.
