file(REMOVE_RECURSE
  "CMakeFiles/pareto_codesign.dir/pareto_codesign.cpp.o"
  "CMakeFiles/pareto_codesign.dir/pareto_codesign.cpp.o.d"
  "pareto_codesign"
  "pareto_codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pareto_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
