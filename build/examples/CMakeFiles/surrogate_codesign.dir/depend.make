# Empty dependencies file for surrogate_codesign.
# This may be replaced when dependencies are built.
