file(REMOVE_RECURSE
  "CMakeFiles/surrogate_codesign.dir/surrogate_codesign.cpp.o"
  "CMakeFiles/surrogate_codesign.dir/surrogate_codesign.cpp.o.d"
  "surrogate_codesign"
  "surrogate_codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surrogate_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
