# Empty dependencies file for config_generator.
# This may be replaced when dependencies are built.
