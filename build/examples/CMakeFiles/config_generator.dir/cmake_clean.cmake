file(REMOVE_RECURSE
  "CMakeFiles/config_generator.dir/config_generator.cpp.o"
  "CMakeFiles/config_generator.dir/config_generator.cpp.o.d"
  "config_generator"
  "config_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
