# Empty compiler generated dependencies file for memsim_cli.
# This may be replaced when dependencies are built.
