file(REMOVE_RECURSE
  "CMakeFiles/memsim_cli.dir/memsim_cli.cpp.o"
  "CMakeFiles/memsim_cli.dir/memsim_cli.cpp.o.d"
  "memsim_cli"
  "memsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
