
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/graph500_runner.cpp" "examples/CMakeFiles/graph500_runner.dir/graph500_runner.cpp.o" "gcc" "examples/CMakeFiles/graph500_runner.dir/graph500_runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dse/CMakeFiles/gmd_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/gmd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/gmd_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpusim/CMakeFiles/gmd_cpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gmd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/gmd_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gmd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
