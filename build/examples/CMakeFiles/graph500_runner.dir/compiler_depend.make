# Empty compiler generated dependencies file for graph500_runner.
# This may be replaced when dependencies are built.
