file(REMOVE_RECURSE
  "CMakeFiles/graph500_runner.dir/graph500_runner.cpp.o"
  "CMakeFiles/graph500_runner.dir/graph500_runner.cpp.o.d"
  "graph500_runner"
  "graph500_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph500_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
