# Empty compiler generated dependencies file for multi_workload_study.
# This may be replaced when dependencies are built.
