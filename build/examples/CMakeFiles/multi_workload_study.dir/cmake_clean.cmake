file(REMOVE_RECURSE
  "CMakeFiles/multi_workload_study.dir/multi_workload_study.cpp.o"
  "CMakeFiles/multi_workload_study.dir/multi_workload_study.cpp.o.d"
  "multi_workload_study"
  "multi_workload_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_workload_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
