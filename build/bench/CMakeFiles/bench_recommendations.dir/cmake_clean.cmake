file(REMOVE_RECURSE
  "CMakeFiles/bench_recommendations.dir/bench_recommendations.cpp.o"
  "CMakeFiles/bench_recommendations.dir/bench_recommendations.cpp.o.d"
  "bench_recommendations"
  "bench_recommendations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recommendations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
