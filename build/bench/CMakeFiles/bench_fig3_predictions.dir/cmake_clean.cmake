file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_predictions.dir/bench_fig3_predictions.cpp.o"
  "CMakeFiles/bench_fig3_predictions.dir/bench_fig3_predictions.cpp.o.d"
  "bench_fig3_predictions"
  "bench_fig3_predictions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_predictions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
