file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_ml_models.dir/bench_table1_ml_models.cpp.o"
  "CMakeFiles/bench_table1_ml_models.dir/bench_table1_ml_models.cpp.o.d"
  "bench_table1_ml_models"
  "bench_table1_ml_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_ml_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
