# Empty compiler generated dependencies file for bench_fig2_metric_table.
# This may be replaced when dependencies are built.
