# Empty dependencies file for bench_surrogate_speedup.
# This may be replaced when dependencies are built.
