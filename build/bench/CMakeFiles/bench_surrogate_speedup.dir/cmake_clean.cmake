file(REMOVE_RECURSE
  "CMakeFiles/bench_surrogate_speedup.dir/bench_surrogate_speedup.cpp.o"
  "CMakeFiles/bench_surrogate_speedup.dir/bench_surrogate_speedup.cpp.o.d"
  "bench_surrogate_speedup"
  "bench_surrogate_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_surrogate_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
