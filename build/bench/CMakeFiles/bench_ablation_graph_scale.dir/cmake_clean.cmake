file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_graph_scale.dir/bench_ablation_graph_scale.cpp.o"
  "CMakeFiles/bench_ablation_graph_scale.dir/bench_ablation_graph_scale.cpp.o.d"
  "bench_ablation_graph_scale"
  "bench_ablation_graph_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_graph_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
