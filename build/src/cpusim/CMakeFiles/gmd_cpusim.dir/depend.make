# Empty dependencies file for gmd_cpusim.
# This may be replaced when dependencies are built.
