file(REMOVE_RECURSE
  "CMakeFiles/gmd_cpusim.dir/src/atomic_cpu.cpp.o"
  "CMakeFiles/gmd_cpusim.dir/src/atomic_cpu.cpp.o.d"
  "CMakeFiles/gmd_cpusim.dir/src/cache.cpp.o"
  "CMakeFiles/gmd_cpusim.dir/src/cache.cpp.o.d"
  "CMakeFiles/gmd_cpusim.dir/src/cache_hierarchy.cpp.o"
  "CMakeFiles/gmd_cpusim.dir/src/cache_hierarchy.cpp.o.d"
  "CMakeFiles/gmd_cpusim.dir/src/config_io.cpp.o"
  "CMakeFiles/gmd_cpusim.dir/src/config_io.cpp.o.d"
  "CMakeFiles/gmd_cpusim.dir/src/workloads.cpp.o"
  "CMakeFiles/gmd_cpusim.dir/src/workloads.cpp.o.d"
  "libgmd_cpusim.a"
  "libgmd_cpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmd_cpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
