
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpusim/src/atomic_cpu.cpp" "src/cpusim/CMakeFiles/gmd_cpusim.dir/src/atomic_cpu.cpp.o" "gcc" "src/cpusim/CMakeFiles/gmd_cpusim.dir/src/atomic_cpu.cpp.o.d"
  "/root/repo/src/cpusim/src/cache.cpp" "src/cpusim/CMakeFiles/gmd_cpusim.dir/src/cache.cpp.o" "gcc" "src/cpusim/CMakeFiles/gmd_cpusim.dir/src/cache.cpp.o.d"
  "/root/repo/src/cpusim/src/cache_hierarchy.cpp" "src/cpusim/CMakeFiles/gmd_cpusim.dir/src/cache_hierarchy.cpp.o" "gcc" "src/cpusim/CMakeFiles/gmd_cpusim.dir/src/cache_hierarchy.cpp.o.d"
  "/root/repo/src/cpusim/src/config_io.cpp" "src/cpusim/CMakeFiles/gmd_cpusim.dir/src/config_io.cpp.o" "gcc" "src/cpusim/CMakeFiles/gmd_cpusim.dir/src/config_io.cpp.o.d"
  "/root/repo/src/cpusim/src/workloads.cpp" "src/cpusim/CMakeFiles/gmd_cpusim.dir/src/workloads.cpp.o" "gcc" "src/cpusim/CMakeFiles/gmd_cpusim.dir/src/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gmd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gmd_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
