file(REMOVE_RECURSE
  "libgmd_cpusim.a"
)
