# Empty dependencies file for gmd_common.
# This may be replaced when dependencies are built.
