file(REMOVE_RECURSE
  "libgmd_common.a"
)
