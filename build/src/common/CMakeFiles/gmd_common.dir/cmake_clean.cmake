file(REMOVE_RECURSE
  "CMakeFiles/gmd_common.dir/src/cli.cpp.o"
  "CMakeFiles/gmd_common.dir/src/cli.cpp.o.d"
  "CMakeFiles/gmd_common.dir/src/csv.cpp.o"
  "CMakeFiles/gmd_common.dir/src/csv.cpp.o.d"
  "CMakeFiles/gmd_common.dir/src/logging.cpp.o"
  "CMakeFiles/gmd_common.dir/src/logging.cpp.o.d"
  "CMakeFiles/gmd_common.dir/src/string_util.cpp.o"
  "CMakeFiles/gmd_common.dir/src/string_util.cpp.o.d"
  "CMakeFiles/gmd_common.dir/src/thread_pool.cpp.o"
  "CMakeFiles/gmd_common.dir/src/thread_pool.cpp.o.d"
  "libgmd_common.a"
  "libgmd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
