file(REMOVE_RECURSE
  "libgmd_ml.a"
)
