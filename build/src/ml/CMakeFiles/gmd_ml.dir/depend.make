# Empty dependencies file for gmd_ml.
# This may be replaced when dependencies are built.
