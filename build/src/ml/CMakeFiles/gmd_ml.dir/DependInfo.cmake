
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/src/dataset.cpp" "src/ml/CMakeFiles/gmd_ml.dir/src/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/gmd_ml.dir/src/dataset.cpp.o.d"
  "/root/repo/src/ml/src/forest.cpp" "src/ml/CMakeFiles/gmd_ml.dir/src/forest.cpp.o" "gcc" "src/ml/CMakeFiles/gmd_ml.dir/src/forest.cpp.o.d"
  "/root/repo/src/ml/src/gbt.cpp" "src/ml/CMakeFiles/gmd_ml.dir/src/gbt.cpp.o" "gcc" "src/ml/CMakeFiles/gmd_ml.dir/src/gbt.cpp.o.d"
  "/root/repo/src/ml/src/gp.cpp" "src/ml/CMakeFiles/gmd_ml.dir/src/gp.cpp.o" "gcc" "src/ml/CMakeFiles/gmd_ml.dir/src/gp.cpp.o.d"
  "/root/repo/src/ml/src/kernel.cpp" "src/ml/CMakeFiles/gmd_ml.dir/src/kernel.cpp.o" "gcc" "src/ml/CMakeFiles/gmd_ml.dir/src/kernel.cpp.o.d"
  "/root/repo/src/ml/src/linear.cpp" "src/ml/CMakeFiles/gmd_ml.dir/src/linear.cpp.o" "gcc" "src/ml/CMakeFiles/gmd_ml.dir/src/linear.cpp.o.d"
  "/root/repo/src/ml/src/matrix.cpp" "src/ml/CMakeFiles/gmd_ml.dir/src/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/gmd_ml.dir/src/matrix.cpp.o.d"
  "/root/repo/src/ml/src/metrics.cpp" "src/ml/CMakeFiles/gmd_ml.dir/src/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/gmd_ml.dir/src/metrics.cpp.o.d"
  "/root/repo/src/ml/src/model_selection.cpp" "src/ml/CMakeFiles/gmd_ml.dir/src/model_selection.cpp.o" "gcc" "src/ml/CMakeFiles/gmd_ml.dir/src/model_selection.cpp.o.d"
  "/root/repo/src/ml/src/regressor.cpp" "src/ml/CMakeFiles/gmd_ml.dir/src/regressor.cpp.o" "gcc" "src/ml/CMakeFiles/gmd_ml.dir/src/regressor.cpp.o.d"
  "/root/repo/src/ml/src/scaler.cpp" "src/ml/CMakeFiles/gmd_ml.dir/src/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/gmd_ml.dir/src/scaler.cpp.o.d"
  "/root/repo/src/ml/src/serialize.cpp" "src/ml/CMakeFiles/gmd_ml.dir/src/serialize.cpp.o" "gcc" "src/ml/CMakeFiles/gmd_ml.dir/src/serialize.cpp.o.d"
  "/root/repo/src/ml/src/svr.cpp" "src/ml/CMakeFiles/gmd_ml.dir/src/svr.cpp.o" "gcc" "src/ml/CMakeFiles/gmd_ml.dir/src/svr.cpp.o.d"
  "/root/repo/src/ml/src/tree.cpp" "src/ml/CMakeFiles/gmd_ml.dir/src/tree.cpp.o" "gcc" "src/ml/CMakeFiles/gmd_ml.dir/src/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gmd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
