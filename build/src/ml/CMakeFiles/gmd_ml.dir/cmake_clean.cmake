file(REMOVE_RECURSE
  "CMakeFiles/gmd_ml.dir/src/dataset.cpp.o"
  "CMakeFiles/gmd_ml.dir/src/dataset.cpp.o.d"
  "CMakeFiles/gmd_ml.dir/src/forest.cpp.o"
  "CMakeFiles/gmd_ml.dir/src/forest.cpp.o.d"
  "CMakeFiles/gmd_ml.dir/src/gbt.cpp.o"
  "CMakeFiles/gmd_ml.dir/src/gbt.cpp.o.d"
  "CMakeFiles/gmd_ml.dir/src/gp.cpp.o"
  "CMakeFiles/gmd_ml.dir/src/gp.cpp.o.d"
  "CMakeFiles/gmd_ml.dir/src/kernel.cpp.o"
  "CMakeFiles/gmd_ml.dir/src/kernel.cpp.o.d"
  "CMakeFiles/gmd_ml.dir/src/linear.cpp.o"
  "CMakeFiles/gmd_ml.dir/src/linear.cpp.o.d"
  "CMakeFiles/gmd_ml.dir/src/matrix.cpp.o"
  "CMakeFiles/gmd_ml.dir/src/matrix.cpp.o.d"
  "CMakeFiles/gmd_ml.dir/src/metrics.cpp.o"
  "CMakeFiles/gmd_ml.dir/src/metrics.cpp.o.d"
  "CMakeFiles/gmd_ml.dir/src/model_selection.cpp.o"
  "CMakeFiles/gmd_ml.dir/src/model_selection.cpp.o.d"
  "CMakeFiles/gmd_ml.dir/src/regressor.cpp.o"
  "CMakeFiles/gmd_ml.dir/src/regressor.cpp.o.d"
  "CMakeFiles/gmd_ml.dir/src/scaler.cpp.o"
  "CMakeFiles/gmd_ml.dir/src/scaler.cpp.o.d"
  "CMakeFiles/gmd_ml.dir/src/serialize.cpp.o"
  "CMakeFiles/gmd_ml.dir/src/serialize.cpp.o.d"
  "CMakeFiles/gmd_ml.dir/src/svr.cpp.o"
  "CMakeFiles/gmd_ml.dir/src/svr.cpp.o.d"
  "CMakeFiles/gmd_ml.dir/src/tree.cpp.o"
  "CMakeFiles/gmd_ml.dir/src/tree.cpp.o.d"
  "libgmd_ml.a"
  "libgmd_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmd_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
