
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/src/address.cpp" "src/memsim/CMakeFiles/gmd_memsim.dir/src/address.cpp.o" "gcc" "src/memsim/CMakeFiles/gmd_memsim.dir/src/address.cpp.o.d"
  "/root/repo/src/memsim/src/channel.cpp" "src/memsim/CMakeFiles/gmd_memsim.dir/src/channel.cpp.o" "gcc" "src/memsim/CMakeFiles/gmd_memsim.dir/src/channel.cpp.o.d"
  "/root/repo/src/memsim/src/config.cpp" "src/memsim/CMakeFiles/gmd_memsim.dir/src/config.cpp.o" "gcc" "src/memsim/CMakeFiles/gmd_memsim.dir/src/config.cpp.o.d"
  "/root/repo/src/memsim/src/config_io.cpp" "src/memsim/CMakeFiles/gmd_memsim.dir/src/config_io.cpp.o" "gcc" "src/memsim/CMakeFiles/gmd_memsim.dir/src/config_io.cpp.o.d"
  "/root/repo/src/memsim/src/hybrid.cpp" "src/memsim/CMakeFiles/gmd_memsim.dir/src/hybrid.cpp.o" "gcc" "src/memsim/CMakeFiles/gmd_memsim.dir/src/hybrid.cpp.o.d"
  "/root/repo/src/memsim/src/memory_system.cpp" "src/memsim/CMakeFiles/gmd_memsim.dir/src/memory_system.cpp.o" "gcc" "src/memsim/CMakeFiles/gmd_memsim.dir/src/memory_system.cpp.o.d"
  "/root/repo/src/memsim/src/metrics.cpp" "src/memsim/CMakeFiles/gmd_memsim.dir/src/metrics.cpp.o" "gcc" "src/memsim/CMakeFiles/gmd_memsim.dir/src/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gmd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cpusim/CMakeFiles/gmd_cpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gmd_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
