file(REMOVE_RECURSE
  "CMakeFiles/gmd_memsim.dir/src/address.cpp.o"
  "CMakeFiles/gmd_memsim.dir/src/address.cpp.o.d"
  "CMakeFiles/gmd_memsim.dir/src/channel.cpp.o"
  "CMakeFiles/gmd_memsim.dir/src/channel.cpp.o.d"
  "CMakeFiles/gmd_memsim.dir/src/config.cpp.o"
  "CMakeFiles/gmd_memsim.dir/src/config.cpp.o.d"
  "CMakeFiles/gmd_memsim.dir/src/config_io.cpp.o"
  "CMakeFiles/gmd_memsim.dir/src/config_io.cpp.o.d"
  "CMakeFiles/gmd_memsim.dir/src/hybrid.cpp.o"
  "CMakeFiles/gmd_memsim.dir/src/hybrid.cpp.o.d"
  "CMakeFiles/gmd_memsim.dir/src/memory_system.cpp.o"
  "CMakeFiles/gmd_memsim.dir/src/memory_system.cpp.o.d"
  "CMakeFiles/gmd_memsim.dir/src/metrics.cpp.o"
  "CMakeFiles/gmd_memsim.dir/src/metrics.cpp.o.d"
  "libgmd_memsim.a"
  "libgmd_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmd_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
