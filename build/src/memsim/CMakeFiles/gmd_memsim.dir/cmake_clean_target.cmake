file(REMOVE_RECURSE
  "libgmd_memsim.a"
)
