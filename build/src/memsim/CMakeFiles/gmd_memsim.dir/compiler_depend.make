# Empty compiler generated dependencies file for gmd_memsim.
# This may be replaced when dependencies are built.
