# Empty dependencies file for gmd_trace.
# This may be replaced when dependencies are built.
