file(REMOVE_RECURSE
  "CMakeFiles/gmd_trace.dir/src/converter.cpp.o"
  "CMakeFiles/gmd_trace.dir/src/converter.cpp.o.d"
  "CMakeFiles/gmd_trace.dir/src/formats.cpp.o"
  "CMakeFiles/gmd_trace.dir/src/formats.cpp.o.d"
  "CMakeFiles/gmd_trace.dir/src/stats.cpp.o"
  "CMakeFiles/gmd_trace.dir/src/stats.cpp.o.d"
  "libgmd_trace.a"
  "libgmd_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmd_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
