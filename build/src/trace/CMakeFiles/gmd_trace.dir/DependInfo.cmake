
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/src/converter.cpp" "src/trace/CMakeFiles/gmd_trace.dir/src/converter.cpp.o" "gcc" "src/trace/CMakeFiles/gmd_trace.dir/src/converter.cpp.o.d"
  "/root/repo/src/trace/src/formats.cpp" "src/trace/CMakeFiles/gmd_trace.dir/src/formats.cpp.o" "gcc" "src/trace/CMakeFiles/gmd_trace.dir/src/formats.cpp.o.d"
  "/root/repo/src/trace/src/stats.cpp" "src/trace/CMakeFiles/gmd_trace.dir/src/stats.cpp.o" "gcc" "src/trace/CMakeFiles/gmd_trace.dir/src/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gmd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cpusim/CMakeFiles/gmd_cpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gmd_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
