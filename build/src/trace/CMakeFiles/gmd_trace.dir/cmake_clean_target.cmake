file(REMOVE_RECURSE
  "libgmd_trace.a"
)
