file(REMOVE_RECURSE
  "libgmd_dse.a"
)
