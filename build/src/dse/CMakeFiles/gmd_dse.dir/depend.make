# Empty dependencies file for gmd_dse.
# This may be replaced when dependencies are built.
