file(REMOVE_RECURSE
  "CMakeFiles/gmd_dse.dir/src/active_learning.cpp.o"
  "CMakeFiles/gmd_dse.dir/src/active_learning.cpp.o.d"
  "CMakeFiles/gmd_dse.dir/src/config_space.cpp.o"
  "CMakeFiles/gmd_dse.dir/src/config_space.cpp.o.d"
  "CMakeFiles/gmd_dse.dir/src/dataset_builder.cpp.o"
  "CMakeFiles/gmd_dse.dir/src/dataset_builder.cpp.o.d"
  "CMakeFiles/gmd_dse.dir/src/design_point.cpp.o"
  "CMakeFiles/gmd_dse.dir/src/design_point.cpp.o.d"
  "CMakeFiles/gmd_dse.dir/src/multi_study.cpp.o"
  "CMakeFiles/gmd_dse.dir/src/multi_study.cpp.o.d"
  "CMakeFiles/gmd_dse.dir/src/pareto.cpp.o"
  "CMakeFiles/gmd_dse.dir/src/pareto.cpp.o.d"
  "CMakeFiles/gmd_dse.dir/src/recommend.cpp.o"
  "CMakeFiles/gmd_dse.dir/src/recommend.cpp.o.d"
  "CMakeFiles/gmd_dse.dir/src/report.cpp.o"
  "CMakeFiles/gmd_dse.dir/src/report.cpp.o.d"
  "CMakeFiles/gmd_dse.dir/src/sensitivity.cpp.o"
  "CMakeFiles/gmd_dse.dir/src/sensitivity.cpp.o.d"
  "CMakeFiles/gmd_dse.dir/src/surrogate.cpp.o"
  "CMakeFiles/gmd_dse.dir/src/surrogate.cpp.o.d"
  "CMakeFiles/gmd_dse.dir/src/sweep.cpp.o"
  "CMakeFiles/gmd_dse.dir/src/sweep.cpp.o.d"
  "CMakeFiles/gmd_dse.dir/src/workflow.cpp.o"
  "CMakeFiles/gmd_dse.dir/src/workflow.cpp.o.d"
  "libgmd_dse.a"
  "libgmd_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmd_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
