
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dse/src/active_learning.cpp" "src/dse/CMakeFiles/gmd_dse.dir/src/active_learning.cpp.o" "gcc" "src/dse/CMakeFiles/gmd_dse.dir/src/active_learning.cpp.o.d"
  "/root/repo/src/dse/src/config_space.cpp" "src/dse/CMakeFiles/gmd_dse.dir/src/config_space.cpp.o" "gcc" "src/dse/CMakeFiles/gmd_dse.dir/src/config_space.cpp.o.d"
  "/root/repo/src/dse/src/dataset_builder.cpp" "src/dse/CMakeFiles/gmd_dse.dir/src/dataset_builder.cpp.o" "gcc" "src/dse/CMakeFiles/gmd_dse.dir/src/dataset_builder.cpp.o.d"
  "/root/repo/src/dse/src/design_point.cpp" "src/dse/CMakeFiles/gmd_dse.dir/src/design_point.cpp.o" "gcc" "src/dse/CMakeFiles/gmd_dse.dir/src/design_point.cpp.o.d"
  "/root/repo/src/dse/src/multi_study.cpp" "src/dse/CMakeFiles/gmd_dse.dir/src/multi_study.cpp.o" "gcc" "src/dse/CMakeFiles/gmd_dse.dir/src/multi_study.cpp.o.d"
  "/root/repo/src/dse/src/pareto.cpp" "src/dse/CMakeFiles/gmd_dse.dir/src/pareto.cpp.o" "gcc" "src/dse/CMakeFiles/gmd_dse.dir/src/pareto.cpp.o.d"
  "/root/repo/src/dse/src/recommend.cpp" "src/dse/CMakeFiles/gmd_dse.dir/src/recommend.cpp.o" "gcc" "src/dse/CMakeFiles/gmd_dse.dir/src/recommend.cpp.o.d"
  "/root/repo/src/dse/src/report.cpp" "src/dse/CMakeFiles/gmd_dse.dir/src/report.cpp.o" "gcc" "src/dse/CMakeFiles/gmd_dse.dir/src/report.cpp.o.d"
  "/root/repo/src/dse/src/sensitivity.cpp" "src/dse/CMakeFiles/gmd_dse.dir/src/sensitivity.cpp.o" "gcc" "src/dse/CMakeFiles/gmd_dse.dir/src/sensitivity.cpp.o.d"
  "/root/repo/src/dse/src/surrogate.cpp" "src/dse/CMakeFiles/gmd_dse.dir/src/surrogate.cpp.o" "gcc" "src/dse/CMakeFiles/gmd_dse.dir/src/surrogate.cpp.o.d"
  "/root/repo/src/dse/src/sweep.cpp" "src/dse/CMakeFiles/gmd_dse.dir/src/sweep.cpp.o" "gcc" "src/dse/CMakeFiles/gmd_dse.dir/src/sweep.cpp.o.d"
  "/root/repo/src/dse/src/workflow.cpp" "src/dse/CMakeFiles/gmd_dse.dir/src/workflow.cpp.o" "gcc" "src/dse/CMakeFiles/gmd_dse.dir/src/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gmd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gmd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/cpusim/CMakeFiles/gmd_cpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/gmd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/gmd_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/gmd_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
