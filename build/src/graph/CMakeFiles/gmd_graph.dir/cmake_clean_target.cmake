file(REMOVE_RECURSE
  "libgmd_graph.a"
)
