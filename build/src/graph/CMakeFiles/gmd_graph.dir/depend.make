# Empty dependencies file for gmd_graph.
# This may be replaced when dependencies are built.
