
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/src/algorithms.cpp" "src/graph/CMakeFiles/gmd_graph.dir/src/algorithms.cpp.o" "gcc" "src/graph/CMakeFiles/gmd_graph.dir/src/algorithms.cpp.o.d"
  "/root/repo/src/graph/src/bfs.cpp" "src/graph/CMakeFiles/gmd_graph.dir/src/bfs.cpp.o" "gcc" "src/graph/CMakeFiles/gmd_graph.dir/src/bfs.cpp.o.d"
  "/root/repo/src/graph/src/csr.cpp" "src/graph/CMakeFiles/gmd_graph.dir/src/csr.cpp.o" "gcc" "src/graph/CMakeFiles/gmd_graph.dir/src/csr.cpp.o.d"
  "/root/repo/src/graph/src/edge_list.cpp" "src/graph/CMakeFiles/gmd_graph.dir/src/edge_list.cpp.o" "gcc" "src/graph/CMakeFiles/gmd_graph.dir/src/edge_list.cpp.o.d"
  "/root/repo/src/graph/src/generators.cpp" "src/graph/CMakeFiles/gmd_graph.dir/src/generators.cpp.o" "gcc" "src/graph/CMakeFiles/gmd_graph.dir/src/generators.cpp.o.d"
  "/root/repo/src/graph/src/graph500.cpp" "src/graph/CMakeFiles/gmd_graph.dir/src/graph500.cpp.o" "gcc" "src/graph/CMakeFiles/gmd_graph.dir/src/graph500.cpp.o.d"
  "/root/repo/src/graph/src/io.cpp" "src/graph/CMakeFiles/gmd_graph.dir/src/io.cpp.o" "gcc" "src/graph/CMakeFiles/gmd_graph.dir/src/io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gmd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
