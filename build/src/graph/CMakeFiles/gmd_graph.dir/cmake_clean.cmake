file(REMOVE_RECURSE
  "CMakeFiles/gmd_graph.dir/src/algorithms.cpp.o"
  "CMakeFiles/gmd_graph.dir/src/algorithms.cpp.o.d"
  "CMakeFiles/gmd_graph.dir/src/bfs.cpp.o"
  "CMakeFiles/gmd_graph.dir/src/bfs.cpp.o.d"
  "CMakeFiles/gmd_graph.dir/src/csr.cpp.o"
  "CMakeFiles/gmd_graph.dir/src/csr.cpp.o.d"
  "CMakeFiles/gmd_graph.dir/src/edge_list.cpp.o"
  "CMakeFiles/gmd_graph.dir/src/edge_list.cpp.o.d"
  "CMakeFiles/gmd_graph.dir/src/generators.cpp.o"
  "CMakeFiles/gmd_graph.dir/src/generators.cpp.o.d"
  "CMakeFiles/gmd_graph.dir/src/graph500.cpp.o"
  "CMakeFiles/gmd_graph.dir/src/graph500.cpp.o.d"
  "CMakeFiles/gmd_graph.dir/src/io.cpp.o"
  "CMakeFiles/gmd_graph.dir/src/io.cpp.o.d"
  "libgmd_graph.a"
  "libgmd_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmd_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
