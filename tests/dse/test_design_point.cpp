#include "gmd/dse/design_point.hpp"

#include <gtest/gtest.h>

#include "gmd/common/error.hpp"

namespace gmd::dse {
namespace {

TEST(DesignPoint, IdEncodesParameters) {
  DesignPoint p;
  p.kind = MemoryKind::kNvm;
  p.cpu_freq_mhz = 5000;
  p.ctrl_freq_mhz = 666;
  p.channels = 4;
  p.trcd = 50;
  EXPECT_EQ(p.id(), "nvm_c5000_m666_ch4_t50");
  p.kind = MemoryKind::kDram;
  EXPECT_EQ(p.id(), "dram_c5000_m666_ch4");
}

TEST(DesignPoint, FeaturesMatchSchema) {
  DesignPoint p;
  p.kind = MemoryKind::kHybrid;
  p.cpu_freq_mhz = 3000;
  p.ctrl_freq_mhz = 1250;
  p.channels = 2;
  p.trcd = 125;
  const auto f = p.features();
  const auto& names = DesignPoint::feature_names();
  ASSERT_EQ(f.size(), names.size());
  EXPECT_DOUBLE_EQ(f[0], 3000.0);
  EXPECT_DOUBLE_EQ(f[1], 1250.0);
  EXPECT_DOUBLE_EQ(f[2], 2.0);
  EXPECT_DOUBLE_EQ(f[3], 125.0);
  EXPECT_DOUBLE_EQ(f[4], 0.0);  // tRAS: 0 for non-DRAM
  EXPECT_DOUBLE_EQ(f[5], 0.0);  // is_dram
  EXPECT_DOUBLE_EQ(f[6], 0.0);  // is_nvm
  EXPECT_DOUBLE_EQ(f[7], 1.0);  // is_hybrid
}

TEST(DesignPoint, DramFeaturesIncludeTras) {
  DesignPoint p;  // defaults to DRAM
  const auto f = p.features();
  EXPECT_DOUBLE_EQ(f[4], 24.0);
  EXPECT_DOUBLE_EQ(f[5], 1.0);
}

TEST(DesignPoint, SingleConfigMaterializesCorrectTechnology) {
  DesignPoint p;
  p.kind = MemoryKind::kNvm;
  p.ctrl_freq_mhz = 666;
  p.trcd = 67;
  const auto config = p.single_config();
  EXPECT_EQ(config.device, memsim::DeviceType::kNvm);
  EXPECT_EQ(config.timing.tRCD, 67u);
  EXPECT_EQ(config.clock_mhz, 666u);

  p.kind = MemoryKind::kDram;
  EXPECT_EQ(p.single_config().device, memsim::DeviceType::kDram);
}

TEST(DesignPoint, HybridConfigSplitsChannels) {
  DesignPoint p;
  p.kind = MemoryKind::kHybrid;
  p.channels = 4;
  p.trcd = 30;
  const auto config = p.hybrid_config();
  EXPECT_EQ(config.dram.channels, 2u);
  EXPECT_EQ(config.nvm.channels, 2u);
  EXPECT_EQ(config.nvm.timing.tRCD, 30u);
}

TEST(DesignPoint, WrongKindConfigAccessThrows) {
  DesignPoint p;
  p.kind = MemoryKind::kHybrid;
  EXPECT_THROW((void)p.single_config(), Error);
  p.kind = MemoryKind::kDram;
  EXPECT_THROW((void)p.hybrid_config(), Error);
}

TEST(MemoryKind, Names) {
  EXPECT_EQ(to_string(MemoryKind::kDram), "dram");
  EXPECT_EQ(to_string(MemoryKind::kNvm), "nvm");
  EXPECT_EQ(to_string(MemoryKind::kHybrid), "hybrid");
}

}  // namespace
}  // namespace gmd::dse
