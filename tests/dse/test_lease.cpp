/// Lease-protocol unit tests: shard geometry, the (shard, generation)
/// filename scheme, atomic-rename claiming (exactly one winner, typed
/// kLeaseConflict on a double claim), heartbeat stamps and the typed
/// kLeaseExpired signal when the supervisor steals a lease, run.meta
/// round trips, and the staleness clock.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>

#include "gmd/common/error.hpp"
#include "gmd/common/heartbeat.hpp"
#include "gmd/dse/lease.hpp"
#include "gmd/dse/shard.hpp"

namespace gmd::dse {
namespace {

namespace fs = std::filesystem;

class LeaseProtocol : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("gmd_lease_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name()));
    fs::remove_all(root_);
    run_ = RunDir{root_.string()};
    fs::create_directories(run_.tasks_dir());
    fs::create_directories(run_.leases_dir());
  }
  void TearDown() override { fs::remove_all(root_); }

  /// Publishes `task` as a claimable task file.
  void issue(const ShardTask& task) {
    write_task_file(run_.tasks_dir() + "/" + task_filename(task), task);
  }

  static std::string slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  fs::path root_;
  RunDir run_;
};

TEST(ShardPlanGeometry, SplitsIntoFixedShardsWithShortTail) {
  const ShardPlan plan(10, 4);
  EXPECT_EQ(plan.num_shards(), 3u);
  EXPECT_EQ(plan.range(0).begin, 0u);
  EXPECT_EQ(plan.range(0).end, 4u);
  EXPECT_EQ(plan.range(1).begin, 4u);
  EXPECT_EQ(plan.range(2).begin, 8u);
  EXPECT_EQ(plan.range(2).end, 10u);
  EXPECT_EQ(plan.range(2).size(), 2u);
}

TEST(ShardPlanGeometry, OneShardWhenSizeExceedsPoints) {
  const ShardPlan plan(3, 100);
  EXPECT_EQ(plan.num_shards(), 1u);
  EXPECT_EQ(plan.range(0).size(), 3u);
}

TEST(ShardPlanGeometry, RejectsDegenerateInputs) {
  EXPECT_THROW(ShardPlan(0, 4), Error);
  EXPECT_THROW(ShardPlan(4, 0), Error);
  try {
    ShardPlan(8, 4).range(2);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kConfig);
  }
}

TEST(ShardPlanGeometry, FilenamesRoundTripAndSortLexicographically) {
  const ShardTask task{12, 3};
  EXPECT_EQ(task_filename(task), "shard-000012.g000003.task");
  EXPECT_EQ(lease_filename(task), "shard-000012.g000003.lease");
  EXPECT_EQ(parse_task_filename("shard-000012.g000003.task"), task);
  EXPECT_EQ(parse_lease_filename("shard-000012.g000003.lease"), task);
  // Fixed width: lexicographic order == (shard, generation) order.
  EXPECT_LT(task_filename({2, 9}), task_filename({10, 1}));
  // Self-filtering scans: temp leftovers and junk never parse.
  EXPECT_FALSE(parse_task_filename("shard-000012.g000003.task.tmp"));
  EXPECT_FALSE(parse_task_filename("shard-000012.g000003.lease"));
  EXPECT_FALSE(parse_task_filename("run.meta"));
  EXPECT_FALSE(parse_lease_filename(""));
}

TEST_F(LeaseProtocol, ListTasksIsSortedAndSelfFiltering) {
  issue({5, 2});
  issue({1, 1});
  issue({5, 1});
  std::ofstream(run_.tasks_dir() + "/shard-000009.g000001.task.tmp")
      << "torn";
  const auto tasks = list_tasks(run_.tasks_dir());
  ASSERT_EQ(tasks.size(), 3u);
  EXPECT_EQ(tasks[0], (ShardTask{1, 1}));
  EXPECT_EQ(tasks[1], (ShardTask{5, 1}));
  EXPECT_EQ(tasks[2], (ShardTask{5, 2}));
  EXPECT_TRUE(list_tasks(run_.tasks_dir() + "/missing").empty());
}

TEST_F(LeaseProtocol, ClaimConsumesTheTaskExactlyOnce) {
  const ShardTask task{0, 1};
  issue(task);
  auto lease = try_claim_shard(run_, task, "alpha");
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->shard(), 0u);
  EXPECT_EQ(lease->holder(), "alpha");
  EXPECT_GE(lease->beats(), 1u);  // claimed leases are stamped once
  EXPECT_TRUE(fs::exists(lease->path()));
  EXPECT_TRUE(list_tasks(run_.tasks_dir()).empty());
  // The losing side of the race: same task, nobody re-issued it.
  EXPECT_FALSE(try_claim_shard(run_, task, "beta").has_value());
  lease->release();
  EXPECT_FALSE(fs::exists(lease->path()));
  lease->release();  // idempotent
}

TEST_F(LeaseProtocol, DoubleClaimRaisesTypedConflict) {
  const ShardTask task{3, 1};
  issue(task);
  HeldLease lease = claim_shard(run_, task, "alpha");
  try {
    claim_shard(run_, task, "beta");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kLeaseConflict);
  }
  lease.release();
}

TEST_F(LeaseProtocol, HeartbeatStampsMonotonicallyChangingContent) {
  const ShardTask task{1, 1};
  issue(task);
  auto lease = try_claim_shard(run_, task, "alpha");
  ASSERT_TRUE(lease.has_value());
  const std::string first = slurp(lease->path());
  lease->heartbeat();
  const std::string second = slurp(lease->path());
  EXPECT_NE(first, second) << "each beat must change the lease content";
  EXPECT_NE(second.find("holder=alpha"), std::string::npos);
  EXPECT_GE(lease->beats(), 2u);
  lease->release();
}

TEST_F(LeaseProtocol, StolenLeaseSurfacesAsLeaseExpired) {
  const ShardTask task{2, 1};
  issue(task);
  auto lease = try_claim_shard(run_, task, "alpha");
  ASSERT_TRUE(lease.has_value());
  // The supervisor presumed us dead: lease file renamed away into the
  // next-generation task.
  fs::rename(lease->path(),
             run_.tasks_dir() + "/" + task_filename({2, 2}));
  try {
    lease->heartbeat();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kLeaseExpired);
  }
  // Released leases refuse further beats the same way.
  auto next = try_claim_shard(run_, {2, 2}, "beta");
  ASSERT_TRUE(next.has_value());
  next->release();
  EXPECT_THROW(next->heartbeat(), Error);
}

TEST_F(LeaseProtocol, RunMetaRoundTripsAndRejectsRot) {
  RunMeta meta;
  meta.key = JournalKey{0x1122334455667788ull, 0x99aabbccddeeff00ull, 416};
  meta.shard_size = 16;
  write_run_meta(run_.meta_path(), meta);
  EXPECT_EQ(read_run_meta(run_.meta_path()), meta);

  try {
    read_run_meta(run_.meta_path() + ".missing");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
  }
  std::ofstream(run_.meta_path(), std::ios::trunc) << "gmd-sweep-run v0\n";
  EXPECT_THROW(read_run_meta(run_.meta_path()), Error);
}

TEST(StalenessClock, StaleMeansValueStoppedChanging) {
  StalenessTracker tracker;
  // Unobserved keys are never stale — full grace period first.
  EXPECT_FALSE(tracker.stale("w", std::chrono::milliseconds(0)));
  EXPECT_TRUE(tracker.observe("w", 1));   // new key counts as changed
  EXPECT_FALSE(tracker.observe("w", 1));  // same value: no change
  EXPECT_TRUE(tracker.observe("w", 2));
  // A huge ttl can never be exceeded by a fresh change...
  EXPECT_FALSE(tracker.stale("w", std::chrono::hours(1)));
  // ...and a zero ttl treats any unchanged observation as stale.
  EXPECT_TRUE(tracker.stale("w", std::chrono::milliseconds(0)));
  tracker.forget("w");
  EXPECT_EQ(tracker.size(), 0u);
  EXPECT_FALSE(tracker.stale("w", std::chrono::milliseconds(0)));
}

}  // namespace
}  // namespace gmd::dse
