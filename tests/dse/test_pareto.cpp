#include "gmd/dse/pareto.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "gmd/common/error.hpp"

namespace gmd::dse {
namespace {

SweepRow make_row(double power, double total_latency, double bandwidth,
                  MemoryKind kind = MemoryKind::kDram) {
  SweepRow row;
  row.point.kind = kind;
  row.metrics.avg_power_per_channel_w = power;
  row.metrics.avg_total_latency_cycles = total_latency;
  row.metrics.avg_bandwidth_per_bank_mbs = bandwidth;
  return row;
}

const std::vector<Objective> kPowerLatency = {Objective("power_w"),
                                              Objective("total_latency_cycles")};

TEST(Dominates, StrictAndPartialDominance) {
  const SweepRow better = make_row(0.1, 100.0, 500.0);
  const SweepRow worse = make_row(0.2, 200.0, 400.0);
  EXPECT_TRUE(dominates(better, worse, kPowerLatency));
  EXPECT_FALSE(dominates(worse, better, kPowerLatency));
}

TEST(Dominates, TradeoffMeansNoDomination) {
  const SweepRow low_power = make_row(0.1, 300.0, 400.0);
  const SweepRow low_latency = make_row(0.3, 100.0, 400.0);
  EXPECT_FALSE(dominates(low_power, low_latency, kPowerLatency));
  EXPECT_FALSE(dominates(low_latency, low_power, kPowerLatency));
}

TEST(Dominates, EqualPointsDoNotDominate) {
  const SweepRow a = make_row(0.1, 100.0, 500.0);
  EXPECT_FALSE(dominates(a, a, kPowerLatency));
}

TEST(Dominates, MaximizeDirectionRespected) {
  const std::vector<Objective> bandwidth = {Objective("bandwidth_mbs")};
  const SweepRow fast = make_row(0.5, 500.0, 900.0);
  const SweepRow slow = make_row(0.1, 100.0, 300.0);
  EXPECT_TRUE(dominates(fast, slow, bandwidth));
}

TEST(ParetoFront, KeepsExactlyTheNonDominated) {
  const std::vector<SweepRow> rows = {
      make_row(0.1, 300.0, 400.0),  // front (lowest power)
      make_row(0.3, 100.0, 400.0),  // front (lowest latency)
      make_row(0.2, 200.0, 400.0),  // front (balanced)
      make_row(0.3, 300.0, 400.0),  // dominated by all three
      make_row(0.2, 250.0, 400.0),  // dominated by row 2
  };
  const auto front = pareto_front(rows, kPowerLatency);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ParetoFront, SingleObjectiveGivesTheOptimaOnly) {
  const std::vector<SweepRow> rows = {
      make_row(0.3, 1.0, 1.0), make_row(0.1, 1.0, 1.0),
      make_row(0.2, 1.0, 1.0), make_row(0.1, 1.0, 1.0)};  // tie at 0.1
  const std::vector<Objective> power = {Objective("power_w")};
  const auto front = pareto_front(rows, power);
  EXPECT_EQ(front, (std::vector<std::size_t>{1, 3}));
}

TEST(ParetoFront, AllPointsOnFrontWhenNoDomination) {
  const std::vector<SweepRow> rows = {make_row(0.1, 300.0, 1.0),
                                      make_row(0.2, 200.0, 1.0),
                                      make_row(0.3, 100.0, 1.0)};
  const auto front = pareto_front(rows, kPowerLatency);
  EXPECT_EQ(front.size(), 3u);
}

TEST(ParetoFront, ErrorsOnDegenerateInput) {
  const std::vector<SweepRow> rows = {make_row(0.1, 1.0, 1.0)};
  EXPECT_THROW(pareto_front({}, kPowerLatency), Error);
  EXPECT_THROW(pareto_front(rows, {}), Error);
  const std::vector<Objective> bogus = {Objective("nope")};
  EXPECT_THROW(pareto_front(rows, bogus), Error);
}

TEST(Constraints, UpperAndLowerBounds) {
  const SweepRow row = make_row(0.15, 200.0, 600.0);
  EXPECT_TRUE((Constraint{"power_w", 0.2, true}).satisfied_by(row));
  EXPECT_FALSE((Constraint{"power_w", 0.1, true}).satisfied_by(row));
  EXPECT_TRUE((Constraint{"bandwidth_mbs", 500.0, false}).satisfied_by(row));
  EXPECT_FALSE((Constraint{"bandwidth_mbs", 700.0, false}).satisfied_by(row));
}

TEST(BestUnderConstraints, PicksConstrainedOptimum) {
  const std::vector<SweepRow> rows = {
      make_row(0.30, 50.0, 400.0),   // fastest but power-hungry
      make_row(0.15, 120.0, 400.0),  // feasible optimum
      make_row(0.10, 200.0, 400.0),  // feasible but slower
  };
  const std::vector<Constraint> cap = {{"power_w", 0.2, true}};
  const auto best = best_under_constraints(
      rows, Objective("total_latency_cycles"), cap);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, 1u);
}

TEST(BestUnderConstraints, InfeasibleReturnsNullopt) {
  const std::vector<SweepRow> rows = {make_row(0.3, 50.0, 400.0)};
  const std::vector<Constraint> cap = {{"power_w", 0.01, true}};
  EXPECT_FALSE(
      best_under_constraints(rows, Objective("total_latency_cycles"), cap)
          .has_value());
}

TEST(BestUnderConstraints, NoConstraintsEqualsGlobalOptimum) {
  const std::vector<SweepRow> rows = {make_row(0.3, 50.0, 400.0),
                                      make_row(0.1, 80.0, 400.0)};
  const auto best =
      best_under_constraints(rows, Objective("power_w"), {});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, 1u);
}

TEST(FormatParetoFront, ListsConfigurationsAndValues) {
  const std::vector<SweepRow> rows = {make_row(0.1, 300.0, 1.0),
                                      make_row(0.3, 100.0, 1.0)};
  const auto front = pareto_front(rows, kPowerLatency);
  const std::string text = format_pareto_front(rows, front, kPowerLatency);
  EXPECT_NE(text.find("Pareto front (2 of 2"), std::string::npos);
  EXPECT_NE(text.find("power_w"), std::string::npos);
  EXPECT_NE(text.find("dram"), std::string::npos);
}

}  // namespace
}  // namespace gmd::dse
