#include "gmd/dse/report.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "gmd/common/error.hpp"
#include "gmd/dse/config_space.hpp"

namespace gmd::dse {
namespace {

class ReportTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkflowConfig config;
    config.graph_vertices = 128;
    config.edge_factor = 8;
    config.design_points = reduced_design_space();
    result_ = new WorkflowResult(run_workflow(config));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static WorkflowResult* result_;
};

WorkflowResult* ReportTest::result_ = nullptr;

TEST_F(ReportTest, ContainsAllSections) {
  const std::string report = markdown_report(*result_);
  EXPECT_NE(report.find("# Memory co-design study"), std::string::npos);
  EXPECT_NE(report.find("## Memory performance summary"), std::string::npos);
  EXPECT_NE(report.find("## Surrogate model scores"), std::string::npos);
  EXPECT_NE(report.find("## Recommendations"), std::string::npos);
  EXPECT_NE(report.find("Pareto front"), std::string::npos);
  EXPECT_NE(report.find("## Parameter sensitivity"), std::string::npos);
}

TEST_F(ReportTest, OptionsDisableSections) {
  ReportOptions options;
  options.title = "Custom title";
  options.include_pareto = false;
  options.include_model_scores = false;
  const std::string report = markdown_report(*result_, options);
  EXPECT_NE(report.find("# Custom title"), std::string::npos);
  EXPECT_EQ(report.find("Pareto"), std::string::npos);
  EXPECT_EQ(report.find("Table I analogue"), std::string::npos);
  EXPECT_NE(report.find("## Recommendations"), std::string::npos);
}

TEST_F(ReportTest, MetricTableHasOneRowPerCell) {
  const std::string report = markdown_report(*result_);
  // 4 cpu x 4 ctrl x 2 channels = 32 cells.
  std::size_t rows = 0;
  std::size_t pos = 0;
  while ((pos = report.find("\n| 2", pos)) != std::string::npos) {
    ++rows;
    ++pos;
  }
  // Rows starting with cpu frequencies 2000 (8 cells).
  EXPECT_EQ(rows, 8u);
}

TEST_F(ReportTest, MentionsEveryMetricAndModel) {
  const std::string report = markdown_report(*result_);
  for (const auto& metric : target_metric_names()) {
    EXPECT_NE(report.find(metric), std::string::npos) << metric;
  }
  EXPECT_NE(report.find("| svr |"), std::string::npos);
  EXPECT_NE(report.find("**yes**"), std::string::npos);
}

TEST_F(ReportTest, SavesToFile) {
  const auto path =
      std::filesystem::temp_directory_path() / "gmd_report_test.md";
  save_markdown_report(path.string(), *result_);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_GT(std::filesystem::file_size(path), 1000u);
}

TEST(Report, EmptyStudyRejected) {
  const WorkflowResult empty;
  std::ostringstream os;
  EXPECT_THROW(write_markdown_report(os, empty), Error);
}

}  // namespace
}  // namespace gmd::dse
