/// Checkpoint-journal corruption: every way a journal can rot on disk —
/// truncation mid-record, a flipped header byte, a checksum from a
/// different trace — must resume cleanly from scratch with a typed
/// warning, and the re-swept rows must be bit-identical to a fresh run.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gmd/common/error.hpp"
#include "gmd/common/logging.hpp"
#include "gmd/cpusim/workloads.hpp"
#include "gmd/dse/checkpoint.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/sweep.hpp"
#include "gmd/graph/generators.hpp"

namespace gmd::dse {
namespace {

std::vector<cpusim::MemoryEvent> small_trace() {
  graph::UniformRandomParams params;
  params.num_vertices = 64;
  params.edge_factor = 8;
  graph::EdgeList list = graph::generate_uniform_random(params);
  graph::symmetrize(list);
  const auto g = graph::CsrGraph::from_edge_list(list);
  cpusim::VectorSink sink;
  cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
  cpusim::BfsWorkload(g, 0).run(cpu);
  return sink.take();
}

std::vector<DesignPoint> small_space() {
  GridAxes axes;
  axes.kinds = {MemoryKind::kDram, MemoryKind::kNvm};
  axes.cpu_freqs_mhz = {2000, 3000};
  axes.ctrl_freqs_mhz = {800};
  axes.channel_counts = {1, 2};
  axes.trcds = {9};
  return enumerate_grid(axes);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void spill(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

class CheckpointCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    trace_ = small_trace();
    points_ = small_space();
    journal_path_ = testing::TempDir() + "/gmd_corrupt_" +
                    ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name() +
                    ".journal";
    std::remove(journal_path_.c_str());

    // A complete, valid journal and the bit-exact reference rows.
    reference_ = run_sweep(points_, trace_);
    SweepOptions write;
    write.checkpoint_path = journal_path_;
    run_sweep(points_, trace_, write);
  }

  void TearDown() override {
    log::set_sink(nullptr);
    std::remove(journal_path_.c_str());
  }

  /// Resumes against the (by now corrupted) journal and asserts: one
  /// typed warning naming the journal, every point re-simulated, rows
  /// bit-identical to the fresh reference.
  void expect_fresh_resume_with_warning(ErrorCode expected_code) {
    SweepOptions resume;
    resume.checkpoint_path = journal_path_;
    resume.resume = true;
    std::atomic<int> simulated{0};
    resume.fault_hook = [&](std::size_t, std::uint32_t) { ++simulated; };

    std::vector<std::string> warnings;
    log::set_sink([&warnings](log::Level level, std::string_view msg) {
      if (level == log::Level::kWarn) warnings.emplace_back(msg);
    });
    const auto rows = run_sweep(points_, trace_, resume);
    log::set_sink(nullptr);

    EXPECT_EQ(simulated.load(), static_cast<int>(points_.size()))
        << "a corrupt journal must not suppress any re-simulation";
    ASSERT_EQ(warnings.size(), 1u);
    EXPECT_NE(warnings[0].find("unusable journal"), std::string::npos);
    EXPECT_NE(warnings[0].find(to_string(expected_code)), std::string::npos);

    ASSERT_EQ(rows.size(), reference_.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_TRUE(rows[i].ok());
      EXPECT_EQ(rows[i].metrics.metric_values(),
                reference_[i].metrics.metric_values());
    }
    // The resumed run rewrote a consistent journal for its own
    // invocation: a second resume restores every row.
    SweepJournal journal(journal_path_, make_journal_key(points_, trace_));
    EXPECT_EQ(journal.load().size(), points_.size());
  }

  std::vector<cpusim::MemoryEvent> trace_;
  std::vector<DesignPoint> points_;
  std::vector<SweepRow> reference_;
  std::string journal_path_;
};

TEST_F(CheckpointCorruption, TruncatedJournalResumesFromScratch) {
  const std::string full = slurp(journal_path_);
  // Cut mid-row so the last record is torn.
  spill(journal_path_, full.substr(0, full.size() * 2 / 3));
  expect_fresh_resume_with_warning(ErrorCode::kIo);
}

TEST_F(CheckpointCorruption, FlippedHeaderByteResumesFromScratch) {
  std::string full = slurp(journal_path_);
  // Flip one byte inside the header's trace checksum field.
  const std::size_t pos = full.find("trace=") + 8;
  ASSERT_LT(pos, full.size());
  full[pos] = full[pos] == '0' ? '1' : '0';
  spill(journal_path_, full);
  expect_fresh_resume_with_warning(ErrorCode::kConfig);
}

TEST_F(CheckpointCorruption, MismatchedTraceChecksumResumesFromScratch) {
  // Unchanged journal, changed trace: the identity key no longer
  // matches what the journal was written for.
  trace_.push_back({trace_.back().tick + 7, 0xBEEF40, 8, true});
  reference_ = run_sweep(points_, trace_);
  expect_fresh_resume_with_warning(ErrorCode::kConfig);
}

TEST_F(CheckpointCorruption, GarbageRowResumesFromScratch) {
  std::string full = slurp(journal_path_);
  full += "row not-a-number garbage\n";
  spill(journal_path_, full);
  expect_fresh_resume_with_warning(ErrorCode::kIo);
}

TEST_F(CheckpointCorruption, LoadRetainsNothingOnThrow) {
  // Direct journal-level contract: a corrupt file (valid header, rotten
  // records) throws AND leaves the in-memory journal empty, so the
  // caller's next record() rewrites a consistent file from scratch.
  spill(journal_path_, slurp(journal_path_) + "bogus record\n");
  SweepJournal journal(journal_path_, make_journal_key(points_, trace_));
  EXPECT_THROW(journal.load(), Error);
  EXPECT_EQ(journal.size(), 0u);
}

TEST_F(CheckpointCorruption, ZeroLengthJournalLoadsEmptyWithWarning) {
  // A crash during the very first append can leave a zero-length file;
  // there is nothing to lose, so it is empty-with-warning, not a parse
  // error.
  spill(journal_path_, "");
  std::vector<std::string> warnings;
  log::set_sink([&warnings](log::Level level, std::string_view msg) {
    if (level == log::Level::kWarn) warnings.emplace_back(msg);
  });
  SweepJournal journal(journal_path_, make_journal_key(points_, trace_));
  EXPECT_TRUE(journal.load().empty());
  log::set_sink(nullptr);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("zero-length"), std::string::npos);
}

TEST_F(CheckpointCorruption, SingleTornLineLoadsEmptyWithWarning) {
  // Likewise a lone torn header line (no rename durability): empty with
  // a warning.  Anything beyond one line is real corruption and throws.
  spill(journal_path_, "gmd-sweep-jour");
  std::vector<std::string> warnings;
  log::set_sink([&warnings](log::Level level, std::string_view msg) {
    if (level == log::Level::kWarn) warnings.emplace_back(msg);
  });
  SweepJournal journal(journal_path_, make_journal_key(points_, trace_));
  EXPECT_TRUE(journal.load().empty());
  log::set_sink(nullptr);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("single malformed line"), std::string::npos);
}

TEST_F(CheckpointCorruption, OwnerTokenRoundTripsAndDoesNotGateLoad) {
  // Per-worker journals carry owner=<id> in the header; any reader with
  // the right key may load them (the supervisor merges foreign files).
  std::remove(journal_path_.c_str());
  const JournalKey key = make_journal_key(points_, trace_);
  SweepJournal writer(journal_path_, key, "worker-3");
  writer.record(2, reference_[2]);
  EXPECT_EQ(writer.owner(), "worker-3");
  EXPECT_NE(slurp(journal_path_).find(" owner=worker-3\n"),
            std::string::npos);

  SweepJournal reader(journal_path_, key);  // no owner: still loads
  const auto rows = reader.load();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].first, 2u);
  EXPECT_EQ(rows[0].second.metrics.metric_values(),
            reference_[2].metrics.metric_values());
}

TEST_F(CheckpointCorruption, FailRecordRoundTrips) {
  std::remove(journal_path_.c_str());
  const JournalKey key = make_journal_key(points_, trace_);
  SweepRow failed;
  failed.outcome = PointOutcome::kFailed;
  failed.error_code = ErrorCode::kSimulation;
  failed.attempts = 3;
  failed.error = "injected: channel 1 wedged";
  SweepJournal writer(journal_path_, key, "worker-0");
  writer.record(1, failed);
  writer.record(0, reference_[0]);

  SweepJournal reader(journal_path_, key);
  const auto rows = reader.load();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, 1u);
  EXPECT_FALSE(rows[0].second.ok());
  EXPECT_EQ(rows[0].second.outcome, PointOutcome::kFailed);
  EXPECT_EQ(rows[0].second.error_code, ErrorCode::kSimulation);
  EXPECT_EQ(rows[0].second.attempts, 3u);
  EXPECT_EQ(rows[0].second.error, "injected: channel 1 wedged");
  EXPECT_TRUE(rows[1].second.ok());
}

TEST_F(CheckpointCorruption, ScanJournalNeverThrows) {
  const JournalKey key = make_journal_key(points_, trace_);
  // Clean journal: rows, no warning.
  const JournalScan good = scan_journal(journal_path_, key);
  EXPECT_EQ(good.rows.size(), points_.size());
  EXPECT_TRUE(good.warning.empty());
  // Corrupt journal: no rows, typed message in `warning` instead of a
  // throw — the supervisor treats it as never-run work.
  spill(journal_path_, slurp(journal_path_) + "bogus record\n");
  const JournalScan bad = scan_journal(journal_path_, key);
  EXPECT_TRUE(bad.rows.empty());
  EXPECT_NE(bad.warning.find("corrupt sweep journal"), std::string::npos);
  // Foreign journal (different key): same tolerant story.
  JournalKey other = key;
  other.trace_hash ^= 0x1;
  const JournalScan foreign = scan_journal(journal_path_, other);
  EXPECT_TRUE(foreign.rows.empty());
  EXPECT_FALSE(foreign.warning.empty());
}

}  // namespace
}  // namespace gmd::dse
