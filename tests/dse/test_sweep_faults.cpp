/// Fault-tolerant sweep execution: failure policies, deadlines,
/// validation, and checkpoint/resume.  All faults are injected through
/// SweepOptions::fault_hook so every path is deterministic.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "gmd/common/deadline.hpp"
#include "gmd/common/error.hpp"
#include "gmd/common/logging.hpp"
#include "gmd/cpusim/workloads.hpp"
#include "gmd/dse/checkpoint.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/sweep.hpp"
#include "gmd/graph/generators.hpp"

namespace gmd::dse {
namespace {

std::vector<cpusim::MemoryEvent> small_trace() {
  graph::UniformRandomParams params;
  params.num_vertices = 64;
  params.edge_factor = 8;
  graph::EdgeList list = graph::generate_uniform_random(params);
  graph::symmetrize(list);
  const auto g = graph::CsrGraph::from_edge_list(list);
  cpusim::VectorSink sink;
  cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
  cpusim::BfsWorkload(g, 0).run(cpu);
  return sink.take();
}

std::vector<DesignPoint> small_space() {
  GridAxes axes;
  axes.kinds = {MemoryKind::kDram, MemoryKind::kNvm};
  axes.cpu_freqs_mhz = {2000, 3000};
  axes.ctrl_freqs_mhz = {400};
  axes.channel_counts = {2};
  axes.trcds = {20};
  return enumerate_grid(axes);
}

TEST(SweepFaults, FailFastRethrowsInjectedFault) {
  const auto trace = small_trace();
  const auto points = small_space();
  SweepOptions options;  // failure_policy defaults to kFailFast
  options.num_threads = 2;
  options.fault_hook = [](std::size_t i, std::uint32_t) {
    if (i == 1) throw Error(ErrorCode::kSimulation, "injected fault");
  };
  EXPECT_THROW(run_sweep(points, trace, options), Error);
}

TEST(SweepFaults, SkipPolicyIsolatesTheFailedPoint) {
  const auto trace = small_trace();
  const auto points = small_space();
  SweepOptions options;
  options.num_threads = 2;
  options.failure_policy = FailurePolicy::kSkip;
  options.fault_hook = [](std::size_t i, std::uint32_t) {
    if (i == 1) throw Error(ErrorCode::kSimulation, "injected fault");
  };
  const auto rows = run_sweep(points, trace, options);
  ASSERT_EQ(rows.size(), points.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i == 1) {
      EXPECT_EQ(rows[i].outcome, PointOutcome::kFailed);
      EXPECT_EQ(rows[i].error_code, ErrorCode::kSimulation);
      EXPECT_NE(rows[i].error.find("injected fault"), std::string::npos);
      EXPECT_EQ(rows[i].attempts, 1u);
    } else {
      EXPECT_TRUE(rows[i].ok()) << rows[i].point.id();
      EXPECT_GT(rows[i].metrics.total_reads, 0u);
    }
  }
  const SweepHealth health = summarize_health(rows);
  EXPECT_EQ(health.ok, rows.size() - 1);
  EXPECT_EQ(health.failed, 1u);
  EXPECT_FALSE(health.all_ok());
  EXPECT_NE(health.summary().find("1 failed"), std::string::npos);
  EXPECT_NE(health.summary().find("simulation=1"), std::string::npos);
}

TEST(SweepFaults, FullSpaceSkipCompletesAllButTheFaultedPoint) {
  // Acceptance scenario: 416 paper points, injected fault at index 200
  // under skip-and-report -> 415 ok rows and exactly one typed failure.
  const auto trace = small_trace();
  const auto points = paper_design_space();
  ASSERT_EQ(points.size(), 416u);
  SweepOptions options;
  options.failure_policy = FailurePolicy::kSkip;
  options.fault_hook = [](std::size_t i, std::uint32_t) {
    if (i == 200) throw Error(ErrorCode::kSimulation, "injected fault");
  };
  const auto rows = run_sweep(points, trace, options);
  const SweepHealth health = summarize_health(rows);
  EXPECT_EQ(health.total, 416u);
  EXPECT_EQ(health.ok, 415u);
  EXPECT_EQ(health.failed, 1u);
  EXPECT_EQ(rows[200].outcome, PointOutcome::kFailed);
  EXPECT_EQ(rows[200].error_code, ErrorCode::kSimulation);
}

TEST(SweepFaults, RetryPolicyRecoversFromTransientFaults) {
  const auto trace = small_trace();
  const auto points = small_space();
  SweepOptions options;
  options.num_threads = 1;
  options.failure_policy = FailurePolicy::kRetry;
  options.max_attempts = 3;
  options.fault_hook = [](std::size_t i, std::uint32_t attempt) {
    if (i == 0 && attempt < 3) throw Error("transient");
  };
  const auto rows = run_sweep(points, trace, options);
  EXPECT_TRUE(rows[0].ok());
  EXPECT_EQ(rows[0].attempts, 3u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].attempts, 1u);
  }
  EXPECT_EQ(summarize_health(rows).retries, 2u);
}

TEST(SweepFaults, RetryGivesUpAfterMaxAttempts) {
  const auto trace = small_trace();
  const auto points = small_space();
  SweepOptions options;
  options.num_threads = 1;
  options.failure_policy = FailurePolicy::kRetry;
  options.max_attempts = 2;
  options.fault_hook = [](std::size_t i, std::uint32_t) {
    if (i == 0) throw Error("persistent");
  };
  const auto rows = run_sweep(points, trace, options);
  EXPECT_EQ(rows[0].outcome, PointOutcome::kFailed);
  EXPECT_EQ(rows[0].attempts, 2u);
}

TEST(SweepFaults, ConfigErrorsAreNeverRetried) {
  const auto trace = small_trace();
  const auto points = small_space();
  SweepOptions options;
  options.num_threads = 1;
  options.failure_policy = FailurePolicy::kRetry;
  options.max_attempts = 5;
  std::atomic<int> calls{0};
  options.fault_hook = [&calls](std::size_t i, std::uint32_t) {
    if (i == 0) {
      ++calls;
      throw Error(ErrorCode::kConfig, "deterministic misconfiguration");
    }
  };
  const auto rows = run_sweep(points, trace, options);
  EXPECT_EQ(rows[0].outcome, PointOutcome::kFailed);
  EXPECT_EQ(rows[0].error_code, ErrorCode::kConfig);
  EXPECT_EQ(rows[0].attempts, 1u);
  EXPECT_EQ(calls.load(), 1);
}

TEST(SweepFaults, ValidationRejectsBadPointsBeforeSimulation) {
  const auto trace = small_trace();
  std::vector<DesignPoint> points = small_space();
  DesignPoint bad;
  bad.channels = 0;
  points.push_back(bad);

  // Fail-fast: the sweep aborts with a config error before simulating.
  try {
    run_sweep(points, trace);
    FAIL() << "invalid point must abort a fail-fast sweep";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kConfig);
  }

  // Skip: the bad point is recorded (zero attempts) and the rest run.
  SweepOptions skip;
  skip.failure_policy = FailurePolicy::kSkip;
  const auto rows = run_sweep(points, trace, skip);
  const SweepRow& bad_row = rows.back();
  EXPECT_EQ(bad_row.outcome, PointOutcome::kFailed);
  EXPECT_EQ(bad_row.error_code, ErrorCode::kConfig);
  EXPECT_EQ(bad_row.attempts, 0u);
  EXPECT_NE(bad_row.error.find("invalid design point"), std::string::npos);
  for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
    EXPECT_TRUE(rows[i].ok());
  }
}

TEST(SweepFaults, ValidateRejectsOddHybridChannels) {
  DesignPoint odd;
  odd.kind = MemoryKind::kHybrid;
  odd.channels = 3;
  odd.trcd = 20;
  try {
    validate(odd);
    FAIL() << "odd hybrid channel count must be rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kConfig);
    EXPECT_NE(std::string(e.what()).find(odd.id()), std::string::npos);
  }
}

TEST(SweepFaults, DeadlineCancelsStuckPointMidDrain) {
  const auto trace = small_trace();
  const auto points = small_space();
  SweepOptions options;
  options.num_threads = 1;
  options.failure_policy = FailurePolicy::kSkip;
  // Budget generous enough that healthy points always finish (also
  // under sanitizers); the stalled point sleeps well past it.
  options.point_wall_budget = std::chrono::milliseconds(250);
  options.fault_hook = [](std::size_t i, std::uint32_t) {
    if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(400));
  };
  const auto rows = run_sweep(points, trace, options);
  EXPECT_EQ(rows[0].outcome, PointOutcome::kTimedOut);
  EXPECT_EQ(rows[0].error_code, ErrorCode::kTimeout);
  EXPECT_EQ(rows[0].attempts, 1u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_TRUE(rows[i].ok()) << rows[i].point.id();
  }
  EXPECT_EQ(summarize_health(rows).timed_out, 1u);
}

TEST(SweepFaults, CancelledSweepSkipsEveryPoint) {
  const auto trace = small_trace();
  const auto points = small_space();
  Deadline cancel;
  cancel.cancel();
  SweepOptions options;
  options.failure_policy = FailurePolicy::kSkip;
  options.cancel = &cancel;
  const auto rows = run_sweep(points, trace, options);
  for (const SweepRow& row : rows) {
    EXPECT_EQ(row.outcome, PointOutcome::kSkipped);
    EXPECT_EQ(row.error_code, ErrorCode::kCancelled);
  }
  EXPECT_EQ(summarize_health(rows).skipped, rows.size());
}

TEST(SweepFaults, CheckpointResumeIsBitIdenticalAndSimulatesOnlyTheRest) {
  const auto trace = small_trace();
  const auto points = small_space();
  const std::string journal_path =
      testing::TempDir() + "/gmd_sweep_resume.journal";
  std::remove(journal_path.c_str());

  // Reference: clean uninterrupted sweep, default options.
  const auto reference = run_sweep(points, trace);

  // First run: journal everything, but point 2 fails (as if the process
  // had been killed while it was in flight).
  SweepOptions first;
  first.num_threads = 2;
  first.failure_policy = FailurePolicy::kSkip;
  first.checkpoint_path = journal_path;
  first.fault_hook = [](std::size_t i, std::uint32_t) {
    if (i == 2) throw Error("killed here");
  };
  const auto partial = run_sweep(points, trace, first);
  EXPECT_FALSE(partial[2].ok());

  // Resume: only the missing point may be simulated again.
  SweepOptions second;
  second.num_threads = 2;
  second.checkpoint_path = journal_path;
  second.resume = true;
  std::atomic<int> simulated{0};
  std::atomic<int> simulated_index{-1};
  second.fault_hook = [&](std::size_t i, std::uint32_t) {
    ++simulated;
    simulated_index = static_cast<int>(i);
  };
  const auto resumed = run_sweep(points, trace, second);
  EXPECT_EQ(simulated.load(), 1);
  EXPECT_EQ(simulated_index.load(), 2);

  // Resumed rows are bit-identical to the uninterrupted sweep.
  ASSERT_EQ(resumed.size(), reference.size());
  for (std::size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_TRUE(resumed[i].ok());
    EXPECT_EQ(resumed[i].point, reference[i].point);
    EXPECT_EQ(resumed[i].metrics.metric_values(),
              reference[i].metrics.metric_values())
        << reference[i].point.id();
    EXPECT_EQ(resumed[i].metrics.total_reads, reference[i].metrics.total_reads);
    EXPECT_EQ(resumed[i].metrics.epochs.size(),
              reference[i].metrics.epochs.size());
  }
  std::remove(journal_path.c_str());
}

TEST(SweepFaults, ResumeIgnoresJournalFromDifferentTrace) {
  const auto trace = small_trace();
  const auto points = small_space();
  const std::string journal_path =
      testing::TempDir() + "/gmd_sweep_mismatch.journal";
  std::remove(journal_path.c_str());

  SweepOptions write;
  write.checkpoint_path = journal_path;
  run_sweep(points, trace, write);

  // The same journal against a modified trace must not be reused —
  // every point re-simulates, and the mismatch is warned with the
  // typed code (stale rows would be silently wrong, but aborting the
  // sweep would be worse than re-simulating).
  auto other_trace = trace;
  other_trace.push_back({other_trace.back().tick + 1, 0xDEAD40, 8, true});
  SweepOptions resume;
  resume.checkpoint_path = journal_path;
  resume.resume = true;
  std::atomic<int> simulated{0};
  resume.fault_hook = [&](std::size_t, std::uint32_t) { ++simulated; };

  std::vector<std::string> warnings;
  log::set_sink([&warnings](log::Level level, std::string_view msg) {
    if (level == log::Level::kWarn) warnings.emplace_back(msg);
  });
  const auto rows = run_sweep(points, other_trace, resume);
  log::set_sink(nullptr);

  EXPECT_TRUE(summarize_health(rows).all_ok());
  EXPECT_EQ(simulated.load(), static_cast<int>(points.size()));
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("unusable journal"), std::string::npos);
  EXPECT_NE(warnings[0].find(to_string(ErrorCode::kConfig)),
            std::string::npos);
  std::remove(journal_path.c_str());
}

TEST(SweepFaults, ResumeIgnoresJournalFromDifferentPointList) {
  const auto trace = small_trace();
  const auto points = small_space();
  const std::string journal_path =
      testing::TempDir() + "/gmd_sweep_points_mismatch.journal";
  std::remove(journal_path.c_str());

  SweepOptions write;
  write.checkpoint_path = journal_path;
  run_sweep(points, trace, write);

  auto other_points = points;
  other_points.pop_back();
  SweepOptions resume;
  resume.checkpoint_path = journal_path;
  resume.resume = true;
  std::atomic<int> simulated{0};
  resume.fault_hook = [&](std::size_t, std::uint32_t) { ++simulated; };
  const auto rows = run_sweep(other_points, trace, resume);
  EXPECT_TRUE(summarize_health(rows).all_ok());
  EXPECT_EQ(simulated.load(), static_cast<int>(other_points.size()));
  std::remove(journal_path.c_str());
}

TEST(SweepFaults, ResumeWithMissingJournalStartsFresh) {
  const auto trace = small_trace();
  const auto points = small_space();
  const std::string journal_path =
      testing::TempDir() + "/gmd_sweep_fresh.journal";
  std::remove(journal_path.c_str());
  SweepOptions options;
  options.checkpoint_path = journal_path;
  options.resume = true;
  const auto rows = run_sweep(points, trace, options);
  EXPECT_TRUE(summarize_health(rows).all_ok());
  // The journal now holds every row.
  SweepJournal journal(journal_path, make_journal_key(points, trace));
  EXPECT_EQ(journal.load().size(), points.size());
  std::remove(journal_path.c_str());
}

TEST(SweepFaults, FaultPoliciesDoNotPerturbMetrics) {
  // A clean sweep must produce identical metrics under every policy —
  // the fault layer is pure bookkeeping until something actually fails.
  const auto trace = small_trace();
  const auto points = small_space();
  const auto reference = run_sweep(points, trace);
  for (const FailurePolicy policy :
       {FailurePolicy::kSkip, FailurePolicy::kRetry}) {
    SweepOptions options;
    options.failure_policy = policy;
    const auto rows = run_sweep(points, trace, options);
    ASSERT_EQ(rows.size(), reference.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i].metrics.metric_values(),
                reference[i].metrics.metric_values())
          << to_string(policy) << " " << reference[i].point.id();
    }
  }
}

}  // namespace
}  // namespace gmd::dse
