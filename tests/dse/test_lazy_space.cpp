#include "gmd/dse/lazy_space.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "gmd/common/error.hpp"
#include "gmd/dse/checkpoint.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/design_point.hpp"

namespace gmd::dse {
namespace {

// The historical enumeration orders are load-bearing (journals and
// sweep CSVs key off the point list), so the lazy decode is checked
// against hand-rolled nested loops, not against the production
// enumerators it now powers.

std::vector<DesignPoint> grid_by_nested_loops(const GridAxes& axes) {
  std::vector<DesignPoint> points;
  for (const MemoryKind kind : axes.kinds) {
    for (const std::uint32_t cpu : axes.cpu_freqs_mhz) {
      for (const std::uint32_t ctrl : axes.ctrl_freqs_mhz) {
        for (const std::uint32_t channels : axes.channel_counts) {
          const std::vector<std::uint32_t> trcds =
              kind == MemoryKind::kDram
                  ? std::vector<std::uint32_t>{9}
                  : (axes.trcds.empty() ? memsim::nvm_trcd_set(ctrl)
                                        : axes.trcds);
          for (const std::uint32_t trcd : trcds) {
            DesignPoint p;
            p.kind = kind;
            p.cpu_freq_mhz = cpu;
            p.ctrl_freq_mhz = ctrl;
            p.channels = channels;
            p.trcd = trcd;
            points.push_back(p);
          }
        }
      }
    }
  }
  return points;
}

std::vector<DesignPoint> paper_by_nested_loops() {
  std::vector<DesignPoint> points;
  for (const std::uint32_t cpu : memsim::paper_cpu_frequencies_mhz()) {
    for (const std::uint32_t ctrl : memsim::paper_controller_frequencies_mhz()) {
      for (const std::uint32_t channels : memsim::paper_channel_counts()) {
        DesignPoint dram;
        dram.kind = MemoryKind::kDram;
        dram.cpu_freq_mhz = cpu;
        dram.ctrl_freq_mhz = ctrl;
        dram.channels = channels;
        dram.trcd = 9;
        points.push_back(dram);
        for (const std::uint32_t trcd : memsim::nvm_trcd_set(ctrl)) {
          DesignPoint p = dram;
          p.trcd = trcd;
          p.kind = MemoryKind::kNvm;
          points.push_back(p);
          p.kind = MemoryKind::kHybrid;
          points.push_back(p);
        }
      }
    }
  }
  return points;
}

GridAxes small_axes() {
  GridAxes axes;
  axes.kinds = {MemoryKind::kNvm, MemoryKind::kDram};
  axes.cpu_freqs_mhz = {2000, 3000, 5000};
  axes.ctrl_freqs_mhz = {400, 666};
  axes.channel_counts = {2, 4};
  axes.trcds = {11, 30, 55};
  return axes;
}

TEST(LazySpace, GridDecodeMatchesNestedLoops) {
  const GridAxes axes = small_axes();
  const LazySpace space(axes);
  const std::vector<DesignPoint> expected = grid_by_nested_loops(axes);
  ASSERT_EQ(space.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(space[i], expected[i]) << "index " << i;
  }
}

TEST(LazySpace, GridWithPerControllerTrcds) {
  // Empty axes.trcds: the NVM/hybrid tRCD set varies per controller
  // clock, which exercises the per-(kind, ctrl) prefix tables.
  GridAxes axes = small_axes();
  axes.trcds.clear();
  const LazySpace space(axes);
  const std::vector<DesignPoint> expected = grid_by_nested_loops(axes);
  ASSERT_EQ(space.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(space[i], expected[i]) << "index " << i;
  }
}

TEST(LazySpace, PaperLayoutMatchesHistoricalOrder) {
  const LazySpace space = LazySpace::paper();
  const std::vector<DesignPoint> expected = paper_by_nested_loops();
  ASSERT_EQ(space.size(), 416u);
  ASSERT_EQ(expected.size(), 416u);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(space[i], expected[i]) << "index " << i;
  }
}

TEST(LazySpace, EnumeratorsAreMaterializeWrappers) {
  EXPECT_EQ(LazySpace::paper().materialize(), paper_design_space());
  EXPECT_EQ(LazySpace::reduced().materialize(), reduced_design_space());
  const GridAxes axes = small_axes();
  EXPECT_EQ(LazySpace(axes).materialize(), enumerate_grid(axes));
}

TEST(LazySpace, ReducedLayoutUsesMidTrcdPerController) {
  const LazySpace space = LazySpace::reduced();
  EXPECT_EQ(space.size(), 96u);
  std::set<std::string> ids;
  for (std::size_t i = 0; i < space.size(); ++i) {
    const DesignPoint p = space[i];
    ids.insert(p.id());
    if (p.kind == MemoryKind::kDram) {
      EXPECT_EQ(p.trcd, 9u);
    } else {
      const auto& trcds = memsim::nvm_trcd_set(p.ctrl_freq_mhz);
      EXPECT_EQ(p.trcd, trcds[trcds.size() / 2]) << p.id();
    }
  }
  EXPECT_EQ(ids.size(), space.size());
}

TEST(LazySpace, DecodeBlockMatchesPerIndexDecode) {
  const LazySpace space = LazySpace::paper();
  std::vector<DesignPoint> block;
  space.decode_block(100, 180, block);
  ASSERT_EQ(block.size(), 80u);
  for (std::size_t i = 0; i < block.size(); ++i) {
    EXPECT_EQ(block[i], space[100 + i]);
  }
  space.decode_block(10, 10, block);
  EXPECT_TRUE(block.empty());
  EXPECT_THROW(space.decode_block(400, 500, block), Error);
}

TEST(LazySpace, DecodeFeaturesMatchesFeatureVector) {
  const LazySpace space = LazySpace::reduced();
  const std::size_t width = DesignPoint::feature_names().size();
  std::vector<double> buffer(space.size() * width);
  space.decode_features(0, space.size(), buffer);
  for (std::size_t i = 0; i < space.size(); ++i) {
    const std::vector<double> expected = space[i].features();
    ASSERT_EQ(expected.size(), width);
    for (std::size_t f = 0; f < width; ++f) {
      EXPECT_EQ(buffer[i * width + f], expected[f]) << i << "/" << f;
    }
  }
}

TEST(LazySpace, ChecksumMatchesPointsChecksum) {
  for (const LazySpace& space :
       {LazySpace::paper(), LazySpace::reduced(), LazySpace(small_axes())}) {
    EXPECT_EQ(space.checksum(), points_checksum(space.materialize()));
  }
}

TEST(LazySpace, MillionSpaceExceedsAMillionPoints) {
  const LazySpace space(LazySpace::million_axes());
  EXPECT_EQ(space.size(), 1043200u);
  EXPECT_GE(space.size(), 1000000u);
  // Every point must be simulatable; validating all 10^6 configs is too
  // slow for a unit test, so sample a coprime stride that hits every
  // kind, channel count, and tRCD bucket.
  std::set<std::string> ids;
  for (std::size_t i = 0; i < space.size(); i += 997) {
    const DesignPoint p = space[i];
    EXPECT_NO_THROW(validate(p)) << p.id();
    ids.insert(p.id());
  }
  EXPECT_EQ(ids.size(), (space.size() + 996) / 997);  // all distinct
}

TEST(LazySpace, FeatureBoundsMatchExhaustiveScan) {
  const LazySpace space = LazySpace::reduced();
  std::vector<double> mins, maxs;
  space.feature_bounds(mins, maxs);
  const std::size_t width = DesignPoint::feature_names().size();
  ASSERT_EQ(mins.size(), width);
  ASSERT_EQ(maxs.size(), width);
  std::vector<double> expect_min(width, 1e300), expect_max(width, -1e300);
  for (const DesignPoint& p : space.materialize()) {
    const std::vector<double> f = p.features();
    for (std::size_t c = 0; c < width; ++c) {
      expect_min[c] = std::min(expect_min[c], f[c]);
      expect_max[c] = std::max(expect_max[c], f[c]);
    }
  }
  EXPECT_EQ(mins, expect_min);
  EXPECT_EQ(maxs, expect_max);
}

TEST(LazySpace, RejectsEmptyAxes) {
  GridAxes axes = small_axes();
  axes.cpu_freqs_mhz.clear();
  EXPECT_THROW(LazySpace{axes}, Error);
  EXPECT_THROW(LazySpace::paper()[416], Error);
}

}  // namespace
}  // namespace gmd::dse
