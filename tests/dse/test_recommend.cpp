#include "gmd/dse/recommend.hpp"

#include <gtest/gtest.h>

#include "gmd/common/error.hpp"
#include "gmd/cpusim/workloads.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/graph/generators.hpp"

namespace gmd::dse {
namespace {

class RecommendTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph::UniformRandomParams params;
    params.num_vertices = 128;
    params.edge_factor = 8;
    graph::EdgeList list = graph::generate_uniform_random(params);
    graph::symmetrize(list);
    const auto g = graph::CsrGraph::from_edge_list(list);
    cpusim::VectorSink sink;
    cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
    cpusim::BfsWorkload(g, 0).run(cpu);
    rows_ = new std::vector<SweepRow>(
        run_sweep(reduced_design_space(), sink.events()));
  }
  static void TearDownTestSuite() {
    delete rows_;
    rows_ = nullptr;
  }
  static std::vector<SweepRow>* rows_;
};

std::vector<SweepRow>* RecommendTest::rows_ = nullptr;

TEST(MetricDirection, BandwidthMaximizedOthersMinimized) {
  EXPECT_EQ(metric_direction("bandwidth_mbs"), Direction::kMaximize);
  EXPECT_EQ(metric_direction("power_w"), Direction::kMinimize);
  EXPECT_EQ(metric_direction("latency_cycles"), Direction::kMinimize);
  EXPECT_EQ(metric_direction("writes_per_channel"), Direction::kMinimize);
}

TEST_F(RecommendTest, OneRecommendationPerMetric) {
  const auto recs = recommend_from_sweep(*rows_);
  EXPECT_EQ(recs.size(), target_metric_names().size());
}

TEST_F(RecommendTest, RecommendationIsActualOptimum) {
  const auto recs = recommend_from_sweep(*rows_);
  for (const auto& rec : recs) {
    std::size_t metric_index = 0;
    const auto& names = target_metric_names();
    while (names[metric_index] != rec.metric) ++metric_index;
    const Direction direction = metric_direction(rec.metric);
    for (const auto& row : *rows_) {
      const double value = row.metrics.metric_values()[metric_index];
      if (direction == Direction::kMinimize) {
        EXPECT_GE(value, rec.value - 1e-12) << rec.metric;
      } else {
        EXPECT_LE(value, rec.value + 1e-12) << rec.metric;
      }
    }
  }
}

TEST_F(RecommendTest, PowerOptimumIsNvmAtLowClock) {
  // Paper §IV-B: "NVM with a controller frequency of 400 MHz for better
  // power performance".
  const auto recs = recommend_from_sweep(*rows_);
  const auto& power = recs[0];
  ASSERT_EQ(power.metric, "power_w");
  EXPECT_EQ(power.best.kind, MemoryKind::kNvm);
  EXPECT_EQ(power.best.ctrl_freq_mhz, 400u);
}

TEST_F(RecommendTest, BandwidthOptimumIsDramAtHighClocks) {
  // Paper §IV-B: "For better bandwidth performance, we recommend DRAM";
  // Fig. 2: bandwidth grows with CPU and controller frequency.
  const auto recs = recommend_from_sweep(*rows_);
  const auto& bw = recs[1];
  ASSERT_EQ(bw.metric, "bandwidth_mbs");
  EXPECT_EQ(bw.best.kind, MemoryKind::kDram);
  EXPECT_EQ(bw.best.cpu_freq_mhz, 6500u);
  EXPECT_EQ(bw.best.ctrl_freq_mhz, 1600u);
}

TEST_F(RecommendTest, SurrogateRecommendationsAgreeOnStrongSignals) {
  const auto direct = recommend_from_sweep(*rows_);
  std::vector<DesignPoint> candidates;
  candidates.reserve(rows_->size());
  for (const auto& row : *rows_) candidates.push_back(row.point);
  const auto surrogate = recommend_from_surrogate(*rows_, candidates, "svr");
  ASSERT_EQ(surrogate.size(), direct.size());
  // Power has a wide margin (NVM vs DRAM): the surrogate must find the
  // same technology and controller frequency.
  EXPECT_EQ(surrogate[0].best.kind, direct[0].best.kind);
  EXPECT_EQ(surrogate[0].best.ctrl_freq_mhz, direct[0].best.ctrl_freq_mhz);
}

TEST_F(RecommendTest, FormattedReportMentionsEachMetric) {
  const auto recs = recommend_from_sweep(*rows_);
  const std::string text = format_recommendations(recs);
  for (const auto& metric : target_metric_names()) {
    EXPECT_NE(text.find(metric), std::string::npos) << metric;
  }
}

TEST(Recommend, EmptyInputsThrow) {
  EXPECT_THROW(recommend_from_sweep({}), Error);
  std::vector<SweepRow> rows(20);
  EXPECT_THROW(recommend_from_surrogate(rows, {}), Error);
}

}  // namespace
}  // namespace gmd::dse
