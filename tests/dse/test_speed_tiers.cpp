/// Sweep-level speed tiers: channel-parallel simulation must be
/// bit-identical to the serial sweep across the full paper design grid
/// at several worker counts (hybrids fall back to serial automatically),
/// and chunk-sampled sweeps must carry per-row confidence intervals
/// through rows, CSV tables, and the resume journal — with the sampling
/// geometry part of the journal identity.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>

#include "gmd/cpusim/workloads.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/dataset_builder.hpp"
#include "gmd/dse/sweep.hpp"
#include "gmd/graph/generators.hpp"
#include "gmd/tracestore/reader.hpp"
#include "gmd/tracestore/writer.hpp"

namespace gmd::dse {
namespace {

std::vector<cpusim::MemoryEvent> bfs_trace(std::uint32_t vertices = 128) {
  graph::UniformRandomParams params;
  params.num_vertices = vertices;
  params.edge_factor = 8;
  graph::EdgeList list = graph::generate_uniform_random(params);
  graph::symmetrize(list);
  const auto g = graph::CsrGraph::from_edge_list(list);
  cpusim::VectorSink sink;
  cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
  cpusim::BfsWorkload(g, 0).run(cpu);
  return sink.take();
}

/// Deterministic mixed-phase trace, large enough that a 25% sample of
/// 1000-event chunks clears SampledSimOptions::min_sampled_chunks
/// instead of falling back to an exhaustive run.
std::vector<cpusim::MemoryEvent> phased_trace(std::size_t n = 60000) {
  std::vector<cpusim::MemoryEvent> trace;
  trace.reserve(n);
  std::uint64_t tick = 0;
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t r = state >> 33;
    tick += 2 + (r % 9);
    const std::size_t phase = (i / 512) % 3;
    std::uint64_t address;
    if (phase == 0) {
      address = 0x100000 + i * 64;  // streaming
    } else if (phase == 1) {
      address = 0x400000 + (r % 97) * 8192;  // scattered rows
    } else {
      address = 0x800000 + (r % 29) * 64;  // hot cluster
    }
    trace.push_back({tick, address, 64, r % 4 == 0});
  }
  return trace;
}

void expect_rows_identical(const SweepRow& a, const SweepRow& b) {
  EXPECT_EQ(a.point, b.point);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.metrics.metric_values(), b.metrics.metric_values());
  EXPECT_EQ(a.metrics.total_reads, b.metrics.total_reads);
  EXPECT_EQ(a.metrics.total_writes, b.metrics.total_writes);
  EXPECT_EQ(a.metrics.execution_seconds, b.metrics.execution_seconds);
  EXPECT_EQ(a.metrics.dynamic_energy_j, b.metrics.dynamic_energy_j);
  EXPECT_EQ(a.metrics.background_energy_j, b.metrics.background_energy_j);
  EXPECT_EQ(a.metrics.max_line_writes, b.metrics.max_line_writes);
  EXPECT_EQ(a.metrics.unique_lines_written, b.metrics.unique_lines_written);
}

// Channel-parallel equivalence ----------------------------------------

/// The acceptance bar: every config of the paper's 416-point grid —
/// DRAM, NVM, and hybrid — produces bit-identical metrics at any
/// sim_workers count (hybrids ignore the setting and stay serial).
TEST(SweepSimWorkers, PaperGridBitIdenticalAtAllWorkerCounts) {
  const auto trace = bfs_trace();
  const auto points = paper_design_space();
  SweepOptions serial;
  serial.num_threads = 2;
  const auto baseline = run_sweep(points, trace, serial);
  ASSERT_EQ(baseline.size(), points.size());
  for (const std::uint32_t workers : {2u, 4u}) {
    SweepOptions options;
    options.num_threads = 2;
    options.sim_workers = workers;
    const auto rows = run_sweep(points, trace, options);
    ASSERT_EQ(rows.size(), baseline.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      expect_rows_identical(rows[i], baseline[i]);
    }
  }
}

TEST(SweepSimWorkers, SharedPredecodeOffStillIdentical) {
  const auto trace = bfs_trace(96);
  const auto points = reduced_design_space();
  SweepOptions serial;
  serial.num_threads = 2;
  const auto baseline = run_sweep(points, trace, serial);
  SweepOptions options;
  options.num_threads = 2;
  options.sim_workers = 4;
  options.share_predecoded_traces = false;  // raw event path per point
  const auto rows = run_sweep(points, trace, options);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    expect_rows_identical(rows[i], baseline[i]);
  }
}

// Chunk-sampled sweeps -------------------------------------------------

std::vector<DesignPoint> sampling_points() {
  GridAxes axes;
  axes.kinds = {MemoryKind::kDram, MemoryKind::kNvm, MemoryKind::kHybrid};
  axes.cpu_freqs_mhz = {2000};
  axes.ctrl_freqs_mhz = {666};
  axes.channel_counts = {2};
  axes.trcds = {20};
  return enumerate_grid(axes);
}

TEST(SampledSweep, RowsCarryIntervalsHybridsStayExhaustive) {
  const auto trace = phased_trace();
  const auto points = sampling_points();
  SweepOptions exhaustive;
  exhaustive.num_threads = 2;
  const auto exact = run_sweep(points, trace, exhaustive);

  SweepOptions options;
  options.num_threads = 2;
  options.sample_fraction = 0.25;
  options.sampling_chunk_events = 1000;
  const auto rows = run_sweep(points, trace, options);
  ASSERT_EQ(rows.size(), points.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    ASSERT_TRUE(row.ok()) << row.error;
    ASSERT_TRUE(row.sampled());
    ASSERT_EQ(row.metric_ci.size(),
              memsim::MemoryMetrics::metric_names().size());
    const auto estimate = row.metrics.metric_values();
    for (std::size_t m = 0; m < row.metric_ci.size(); ++m) {
      EXPECT_LE(row.metric_ci[m].lo, estimate[m]);
      EXPECT_GE(row.metric_ci[m].hi, estimate[m]);
    }
    if (row.point.kind == MemoryKind::kHybrid) {
      // Hybrids run exhaustively: exact metrics, point intervals.
      expect_rows_identical(row, exact[i]);
      for (std::size_t m = 0; m < row.metric_ci.size(); ++m) {
        EXPECT_EQ(row.metric_ci[m].lo, row.metric_ci[m].hi);
      }
    } else {
      // Sampled estimates should land near the exhaustive metrics.
      const auto truth = exact[i].metrics.metric_values();
      for (std::size_t m = 0; m < truth.size(); ++m) {
        EXPECT_NEAR(estimate[m], truth[m], 0.35 * truth[m] + 1e-12)
            << row.point.id() << " metric " << m;
      }
    }
  }
}

TEST(SampledSweep, TableRoundTripsIntervals) {
  const auto trace = phased_trace();
  const auto points = sampling_points();
  SweepOptions options;
  options.num_threads = 2;
  options.sample_fraction = 0.25;
  options.sampling_chunk_events = 1000;
  const auto rows = run_sweep(points, trace, options);

  const CsvTable table = sweep_to_table(rows);
  EXPECT_TRUE(table.has_column("total_latency_cycles_ci_lo"));
  EXPECT_TRUE(table.has_column("total_latency_cycles_ci_hi"));
  const auto back = table_to_sweep(table);
  ASSERT_EQ(back.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    ASSERT_EQ(back[i].metric_ci.size(), rows[i].metric_ci.size());
    for (std::size_t m = 0; m < rows[i].metric_ci.size(); ++m) {
      EXPECT_DOUBLE_EQ(back[i].metric_ci[m].lo, rows[i].metric_ci[m].lo);
      EXPECT_DOUBLE_EQ(back[i].metric_ci[m].hi, rows[i].metric_ci[m].hi);
    }
  }

  // An exhaustive sweep's table has no CI columns at all.
  SweepOptions exhaustive;
  exhaustive.num_threads = 2;
  const CsvTable plain = sweep_to_table(run_sweep(points, trace, exhaustive));
  EXPECT_FALSE(plain.has_column("total_latency_cycles_ci_lo"));
}

TEST(SampledSweep, StoreFeedSamplesNativeChunks) {
  const auto events = phased_trace();
  const std::string store_path =
      testing::TempDir() + "/gmd_sampled_store.gmdt";
  std::filesystem::remove(store_path);
  tracestore::TraceStoreWriterOptions wopts;
  wopts.events_per_chunk = 1000;
  tracestore::write_trace_store(store_path, events, wopts);
  const tracestore::TraceStoreReader store(store_path);

  const auto points = sampling_points();
  SweepOptions options;
  options.num_threads = 2;
  options.sample_fraction = 0.25;
  // sampling_chunk_events is ignored for store feeds (native chunking);
  // a span feed with the same window size must agree exactly.
  options.sampling_chunk_events = 1000;
  const auto from_store = run_sweep(points, store, options);
  const auto from_span = run_sweep(points, events, options);
  ASSERT_EQ(from_store.size(), from_span.size());
  for (std::size_t i = 0; i < from_store.size(); ++i) {
    ASSERT_TRUE(from_store[i].ok()) << from_store[i].error;
    expect_rows_identical(from_store[i], from_span[i]);
    ASSERT_EQ(from_store[i].metric_ci.size(), from_span[i].metric_ci.size());
    for (std::size_t m = 0; m < from_store[i].metric_ci.size(); ++m) {
      EXPECT_EQ(from_store[i].metric_ci[m].lo, from_span[i].metric_ci[m].lo);
      EXPECT_EQ(from_store[i].metric_ci[m].hi, from_span[i].metric_ci[m].hi);
    }
  }
  std::filesystem::remove(store_path);
}

TEST(SampledSweep, JournalRestoresIntervalsAndKeysOnSamplingParams) {
  const auto trace = phased_trace();
  const auto points = sampling_points();
  const std::string journal_path =
      testing::TempDir() + "/gmd_sampled_journal.txt";
  std::filesystem::remove(journal_path);

  SweepOptions options;
  options.num_threads = 2;
  options.sample_fraction = 0.25;
  options.sampling_chunk_events = 1000;
  options.checkpoint_path = journal_path;
  const auto first = run_sweep(points, trace, options);

  // Resume under identical sampling parameters: every point restores
  // from the journal (the fault hook proves no simulation ran), and the
  // restored intervals are bit-identical.
  auto simulated = std::make_shared<std::atomic<std::size_t>>(0);
  options.resume = true;
  options.fault_hook = [simulated](std::size_t, std::uint32_t) {
    simulated->fetch_add(1);
  };
  const auto resumed = run_sweep(points, trace, options);
  EXPECT_EQ(simulated->load(), 0u);
  ASSERT_EQ(resumed.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    expect_rows_identical(resumed[i], first[i]);
    ASSERT_EQ(resumed[i].metric_ci.size(), first[i].metric_ci.size());
    for (std::size_t m = 0; m < first[i].metric_ci.size(); ++m) {
      EXPECT_EQ(resumed[i].metric_ci[m].lo, first[i].metric_ci[m].lo);
      EXPECT_EQ(resumed[i].metric_ci[m].hi, first[i].metric_ci[m].hi);
    }
  }

  // A different sampling seed is a different journal identity: the old
  // journal must be refused (with a warning) and every point
  // re-simulated rather than silently reusing estimates from another
  // sampling geometry.
  options.sample_seed = 99;
  const auto resampled = run_sweep(points, trace, options);
  EXPECT_EQ(simulated->load(), points.size());
  for (const SweepRow& row : resampled) {
    EXPECT_TRUE(row.ok()) << row.error;
  }
  std::filesystem::remove(journal_path);
}

TEST(SampledSweep, RejectsBadOptions) {
  const auto trace = bfs_trace(96);
  const auto points = sampling_points();
  SweepOptions options;
  options.sample_fraction = 0.0;
  EXPECT_THROW(run_sweep(points, trace, options), gmd::Error);
  options.sample_fraction = 1.5;
  EXPECT_THROW(run_sweep(points, trace, options), gmd::Error);
  options.sample_fraction = 0.5;
  options.sampling_chunk_events = 0;
  EXPECT_THROW(run_sweep(points, trace, options), gmd::Error);
  options.sampling_chunk_events = 1000;
  options.sim_workers = 0;
  EXPECT_THROW(run_sweep(points, trace, options), gmd::Error);
}

}  // namespace
}  // namespace gmd::dse
