#include "gmd/dse/dataset_builder.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "gmd/common/error.hpp"
#include "gmd/common/logging.hpp"
#include "gmd/cpusim/workloads.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/graph/generators.hpp"

namespace gmd::dse {
namespace {

class DatasetBuilderTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph::UniformRandomParams params;
    params.num_vertices = 128;
    params.edge_factor = 8;
    graph::EdgeList list = graph::generate_uniform_random(params);
    graph::symmetrize(list);
    const auto g = graph::CsrGraph::from_edge_list(list);
    cpusim::VectorSink sink;
    cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
    cpusim::BfsWorkload(g, 0).run(cpu);
    rows_ = new std::vector<SweepRow>(
        run_sweep(reduced_design_space(), sink.events()));
  }
  static void TearDownTestSuite() {
    delete rows_;
    rows_ = nullptr;
  }
  static std::vector<SweepRow>* rows_;
};

std::vector<SweepRow>* DatasetBuilderTest::rows_ = nullptr;

TEST_F(DatasetBuilderTest, DatasetShapeMatchesSweep) {
  const MetricDataset md = build_metric_dataset(*rows_, "power_w");
  EXPECT_EQ(md.data.size(), rows_->size());
  EXPECT_EQ(md.data.num_features(), DesignPoint::feature_names().size());
  EXPECT_EQ(md.data.target_name, "power_w");
  EXPECT_NO_THROW(md.data.validate());
}

TEST_F(DatasetBuilderTest, TargetsAreMinMaxScaled) {
  for (const std::string& metric : target_metric_names()) {
    const MetricDataset md = build_metric_dataset(*rows_, metric);
    double lo = 1e300, hi = -1e300;
    for (const double y : md.data.y) {
      lo = std::min(lo, y);
      hi = std::max(hi, y);
    }
    EXPECT_DOUBLE_EQ(lo, 0.0) << metric;
    EXPECT_DOUBLE_EQ(hi, 1.0) << metric;
  }
}

TEST_F(DatasetBuilderTest, FeaturesAreScaledToUnitBox) {
  const MetricDataset md = build_metric_dataset(*rows_, "bandwidth_mbs");
  for (std::size_t r = 0; r < md.data.X.rows(); ++r) {
    for (const double v : md.data.X.row(r)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST_F(DatasetBuilderTest, RawTargetsRecoverableThroughScaler) {
  const MetricDataset md = build_metric_dataset(*rows_, "latency_cycles");
  const auto recovered = md.y_scaler.inverse_transform(md.data.y);
  ASSERT_EQ(recovered.size(), md.raw_y.size());
  for (std::size_t i = 0; i < recovered.size(); ++i) {
    EXPECT_NEAR(recovered[i], md.raw_y[i], 1e-9);
  }
}

TEST_F(DatasetBuilderTest, UnknownMetricThrows) {
  EXPECT_THROW(build_metric_dataset(*rows_, "nonexistent"), Error);
  EXPECT_THROW(build_metric_dataset({}, "power_w"), Error);
}

TEST_F(DatasetBuilderTest, TableHasFeatureAndMetricColumns) {
  const CsvTable table = sweep_to_table(*rows_);
  EXPECT_EQ(table.num_rows(), rows_->size());
  EXPECT_EQ(table.num_columns(), DesignPoint::feature_names().size() +
                                     target_metric_names().size());
  EXPECT_TRUE(table.has_column("cpu_freq_mhz"));
  EXPECT_TRUE(table.has_column("power_w"));
}

TEST_F(DatasetBuilderTest, TableRoundTripsThroughCsv) {
  const CsvTable table = sweep_to_table(*rows_);
  std::stringstream ss;
  table.write(ss);
  const CsvTable back = CsvTable::read(ss);
  const auto rows = table_to_sweep(back);
  ASSERT_EQ(rows.size(), rows_->size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].point, (*rows_)[i].point) << i;
    EXPECT_NEAR(rows[i].metrics.avg_power_per_channel_w,
                (*rows_)[i].metrics.avg_power_per_channel_w, 1e-12);
    EXPECT_NEAR(rows[i].metrics.avg_reads_per_channel,
                (*rows_)[i].metrics.avg_reads_per_channel, 1e-9);
  }
}

TEST_F(DatasetBuilderTest, TargetMetricNamesMatchMemsim) {
  EXPECT_EQ(target_metric_names(), memsim::MemoryMetrics::metric_names());
  EXPECT_EQ(target_metric_names().size(), 6u);
}

TEST_F(DatasetBuilderTest, NonFiniteRowsAreQuarantinedNotFatal) {
  std::vector<SweepRow> rows = *rows_;
  rows[0].metrics.avg_power_per_channel_w = std::nan("");
  rows[2].metrics.avg_power_per_channel_w =
      std::numeric_limits<double>::infinity();

  std::vector<std::string> warnings;
  log::set_sink([&warnings](log::Level level, std::string_view msg) {
    if (level == log::Level::kWarn) warnings.emplace_back(msg);
  });
  const MetricDataset md = build_metric_dataset(rows, "power_w");
  log::set_sink(nullptr);

  EXPECT_EQ(md.quarantined_rows, 2u);
  EXPECT_EQ(md.data.size(), rows.size() - 2);
  EXPECT_NO_THROW(md.data.validate());
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("quarantin"), std::string::npos) << warnings[0];

  // Other metrics are untouched by the poisoned power column.
  const MetricDataset clean = build_metric_dataset(rows, "latency_cycles");
  EXPECT_EQ(clean.quarantined_rows, 0u);
  EXPECT_EQ(clean.data.size(), rows.size());
}

TEST_F(DatasetBuilderTest, AllRowsNonFiniteIsTypedInvalidData) {
  std::vector<SweepRow> rows = *rows_;
  for (SweepRow& row : rows) {
    row.metrics.avg_power_per_channel_w = std::nan("");
  }
  log::set_sink([](log::Level, std::string_view) {});
  try {
    build_metric_dataset(rows, "power_w");
    log::set_sink(nullptr);
    FAIL() << "expected Error(kInvalidData)";
  } catch (const Error& e) {
    log::set_sink(nullptr);
    EXPECT_EQ(e.code(), ErrorCode::kInvalidData) << e.what();
  }
}

TEST_F(DatasetBuilderTest, MultiWorkloadDatasetAppendsDescriptors) {
  WorkloadSweep a;
  a.name = "bfs";
  a.rows = *rows_;
  a.log10_events = 4.5;
  a.read_fraction = 0.95;
  a.footprint_kb = 140.0;
  WorkloadSweep b = a;
  b.name = "pagerank";
  b.log10_events = 6.0;
  b.read_fraction = 0.66;
  b.footprint_kb = 150.0;

  const std::vector<WorkloadSweep> sweeps{a, b};
  const MetricDataset md = build_multi_workload_dataset(sweeps, "power_w");
  EXPECT_EQ(md.data.size(), 2 * rows_->size());
  EXPECT_EQ(md.data.num_features(), DesignPoint::feature_names().size() +
                                        workload_feature_names().size());
  // The descriptor columns separate the two workloads: first block has
  // the min-scaled read fraction 1, second block 0.
  const std::size_t rf_col = DesignPoint::feature_names().size() + 1;
  EXPECT_DOUBLE_EQ(md.data.X.at(0, rf_col), 1.0);
  EXPECT_DOUBLE_EQ(md.data.X.at(rows_->size(), rf_col), 0.0);
  EXPECT_NO_THROW(md.data.validate());
}

TEST_F(DatasetBuilderTest, MultiWorkloadRejectsBadInput) {
  EXPECT_THROW(build_multi_workload_dataset({}, "power_w"), Error);
  WorkloadSweep empty;
  empty.name = "empty";
  const std::vector<WorkloadSweep> sweeps{empty};
  EXPECT_THROW(build_multi_workload_dataset(sweeps, "power_w"), Error);
  WorkloadSweep ok;
  ok.rows = *rows_;
  const std::vector<WorkloadSweep> ok_sweeps{ok};
  EXPECT_THROW(build_multi_workload_dataset(ok_sweeps, "bogus"), Error);
}

}  // namespace
}  // namespace gmd::dse
