#include "gmd/dse/surrogate.hpp"

#include <gtest/gtest.h>

#include "gmd/common/error.hpp"
#include "gmd/cpusim/workloads.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/graph/generators.hpp"

namespace gmd::dse {
namespace {

class SurrogateTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph::UniformRandomParams params;
    params.num_vertices = 128;
    params.edge_factor = 8;
    graph::EdgeList list = graph::generate_uniform_random(params);
    graph::symmetrize(list);
    const auto g = graph::CsrGraph::from_edge_list(list);
    cpusim::VectorSink sink;
    cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
    cpusim::BfsWorkload(g, 0).run(cpu);
    rows_ = new std::vector<SweepRow>(
        run_sweep(reduced_design_space(), sink.events()));
    suite_ = new SurrogateSuite(SurrogateSuite::train(*rows_));
  }
  static void TearDownTestSuite() {
    delete suite_;
    delete rows_;
    suite_ = nullptr;
    rows_ = nullptr;
  }
  static std::vector<SweepRow>* rows_;
  static SurrogateSuite* suite_;
};

std::vector<SweepRow>* SurrogateTest::rows_ = nullptr;
SurrogateSuite* SurrogateTest::suite_ = nullptr;

TEST_F(SurrogateTest, AllMetricModelPairsScored) {
  EXPECT_EQ(suite_->scores().size(),
            target_metric_names().size() * ml::table1_model_names().size());
  for (const auto& metric : target_metric_names()) {
    for (const auto& model : ml::table1_model_names()) {
      EXPECT_NO_THROW((void)suite_->score(metric, model));
    }
  }
}

TEST_F(SurrogateTest, ScoresAreReasonable) {
  // Every model family must beat the mean predictor on most metrics;
  // the best model per metric must be strongly predictive.
  for (const auto& metric : target_metric_names()) {
    const auto& best = suite_->best_model(metric);
    EXPECT_GT(best.r2, 0.85) << metric << " best=" << best.model;
    EXPECT_LT(best.mse, 0.05) << metric;
  }
}

TEST_F(SurrogateTest, ReadsWritesAreEasyForLinear) {
  // reads/writes per channel are a deterministic function of the
  // channel count: linear regression nails them (paper Table I).
  EXPECT_GT(suite_->score("reads_per_channel", "linear").r2, 0.999);
  EXPECT_GT(suite_->score("writes_per_channel", "linear").r2, 0.999);
}

TEST_F(SurrogateTest, SeriesCoverEveryMetric) {
  ASSERT_EQ(suite_->series().size(), target_metric_names().size());
  for (const auto& series : suite_->series()) {
    EXPECT_FALSE(series.truth.empty());
    for (const auto& model : ml::table1_model_names()) {
      ASSERT_TRUE(series.predictions.count(model)) << model;
      EXPECT_EQ(series.predictions.at(model).size(), series.truth.size());
    }
  }
}

TEST_F(SurrogateTest, TestSplitIs20Percent) {
  const std::size_t expected =
      static_cast<std::size_t>(static_cast<double>(rows_->size()) * 0.2 + 0.5);
  EXPECT_EQ(suite_->series().front().truth.size(), expected);
}

TEST_F(SurrogateTest, UnknownLookupThrows) {
  EXPECT_THROW((void)suite_->score("power_w", "nope"), Error);
  EXPECT_THROW((void)suite_->best_model("nope"), Error);
}

TEST_F(SurrogateTest, Table1FormatListsMetricsAndModels) {
  const std::string table = suite_->format_table1();
  for (const auto& metric : target_metric_names()) {
    EXPECT_NE(table.find(metric), std::string::npos) << metric;
  }
  EXPECT_NE(table.find("MSE"), std::string::npos);
  EXPECT_NE(table.find("R2"), std::string::npos);
  EXPECT_NE(table.find("svr"), std::string::npos);
}

TEST_F(SurrogateTest, DeployedModelPredictsPhysicalUnits) {
  const auto deployed =
      SurrogateSuite::deploy(*rows_, "reads_per_channel", "linear");
  // Prediction at a training point should be near its simulated value.
  const SweepRow& probe = (*rows_)[10];
  const double predicted = deployed.predict(probe.point);
  const double truth = probe.metrics.avg_reads_per_channel;
  EXPECT_NEAR(predicted, truth, std::abs(truth) * 0.05 + 1.0);
}

TEST_F(SurrogateTest, DeterministicTraining) {
  const SurrogateSuite again = SurrogateSuite::train(*rows_);
  for (std::size_t i = 0; i < again.scores().size(); ++i) {
    EXPECT_DOUBLE_EQ(again.scores()[i].mse, suite_->scores()[i].mse);
  }
}

TEST_F(SurrogateTest, CustomModelListRespected) {
  SurrogateOptions options;
  options.models = {"linear"};
  const SurrogateSuite small = SurrogateSuite::train(*rows_, options);
  EXPECT_EQ(small.scores().size(), target_metric_names().size());
}

TEST(Surrogate, TooFewRowsThrows) {
  std::vector<SweepRow> rows(3);
  EXPECT_THROW(SurrogateSuite::train(rows), Error);
}

}  // namespace
}  // namespace gmd::dse
