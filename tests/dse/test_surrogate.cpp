#include "gmd/dse/surrogate.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <string>
#include <vector>

#include "gmd/common/deadline.hpp"
#include "gmd/common/error.hpp"
#include "gmd/common/logging.hpp"
#include "gmd/cpusim/workloads.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/graph/generators.hpp"

namespace gmd::dse {
namespace {

class SurrogateTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph::UniformRandomParams params;
    params.num_vertices = 128;
    params.edge_factor = 8;
    graph::EdgeList list = graph::generate_uniform_random(params);
    graph::symmetrize(list);
    const auto g = graph::CsrGraph::from_edge_list(list);
    cpusim::VectorSink sink;
    cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
    cpusim::BfsWorkload(g, 0).run(cpu);
    rows_ = new std::vector<SweepRow>(
        run_sweep(reduced_design_space(), sink.events()));
    suite_ = new SurrogateSuite(SurrogateSuite::train(*rows_));
  }
  static void TearDownTestSuite() {
    delete suite_;
    delete rows_;
    suite_ = nullptr;
    rows_ = nullptr;
  }
  static std::vector<SweepRow>* rows_;
  static SurrogateSuite* suite_;
};

std::vector<SweepRow>* SurrogateTest::rows_ = nullptr;
SurrogateSuite* SurrogateTest::suite_ = nullptr;

TEST_F(SurrogateTest, AllMetricModelPairsScored) {
  EXPECT_EQ(suite_->scores().size(),
            target_metric_names().size() * ml::table1_model_names().size());
  for (const auto& metric : target_metric_names()) {
    for (const auto& model : ml::table1_model_names()) {
      EXPECT_NO_THROW((void)suite_->score(metric, model));
    }
  }
}

TEST_F(SurrogateTest, ScoresAreReasonable) {
  // Every model family must beat the mean predictor on most metrics;
  // the best model per metric must be strongly predictive.
  for (const auto& metric : target_metric_names()) {
    const auto& best = suite_->best_model(metric);
    EXPECT_GT(best.r2, 0.85) << metric << " best=" << best.model;
    EXPECT_LT(best.mse, 0.05) << metric;
  }
}

TEST_F(SurrogateTest, ReadsWritesAreEasyForLinear) {
  // reads/writes per channel are a deterministic function of the
  // channel count: linear regression nails them (paper Table I).
  EXPECT_GT(suite_->score("reads_per_channel", "linear").r2, 0.999);
  EXPECT_GT(suite_->score("writes_per_channel", "linear").r2, 0.999);
}

TEST_F(SurrogateTest, SeriesCoverEveryMetric) {
  ASSERT_EQ(suite_->series().size(), target_metric_names().size());
  for (const auto& series : suite_->series()) {
    EXPECT_FALSE(series.truth.empty());
    for (const auto& model : ml::table1_model_names()) {
      ASSERT_TRUE(series.predictions.count(model)) << model;
      EXPECT_EQ(series.predictions.at(model).size(), series.truth.size());
    }
  }
}

TEST_F(SurrogateTest, TestSplitIs20Percent) {
  const std::size_t expected =
      static_cast<std::size_t>(static_cast<double>(rows_->size()) * 0.2 + 0.5);
  EXPECT_EQ(suite_->series().front().truth.size(), expected);
}

TEST_F(SurrogateTest, UnknownLookupThrows) {
  EXPECT_THROW((void)suite_->score("power_w", "nope"), Error);
  EXPECT_THROW((void)suite_->best_model("nope"), Error);
}

TEST_F(SurrogateTest, Table1FormatListsMetricsAndModels) {
  const std::string table = suite_->format_table1();
  for (const auto& metric : target_metric_names()) {
    EXPECT_NE(table.find(metric), std::string::npos) << metric;
  }
  EXPECT_NE(table.find("MSE"), std::string::npos);
  EXPECT_NE(table.find("R2"), std::string::npos);
  EXPECT_NE(table.find("svr"), std::string::npos);
}

TEST_F(SurrogateTest, DeployedModelPredictsPhysicalUnits) {
  const auto deployed =
      SurrogateSuite::deploy(*rows_, "reads_per_channel", "linear");
  // Prediction at a training point should be near its simulated value.
  const SweepRow& probe = (*rows_)[10];
  const double predicted = deployed.predict(probe.point);
  const double truth = probe.metrics.avg_reads_per_channel;
  EXPECT_NEAR(predicted, truth, std::abs(truth) * 0.05 + 1.0);
}

TEST_F(SurrogateTest, BatchPredictMatchesPerPoint) {
  // The batch entry point shares the scaler transforms and model with
  // the scalar one, so every value must match bit-for-bit.
  for (const std::string model : {"linear", "rf", "gb"}) {
    const auto deployed =
        SurrogateSuite::deploy(*rows_, "bandwidth_mbs", model);
    std::vector<DesignPoint> candidates;
    candidates.reserve(rows_->size());
    for (const auto& row : *rows_) candidates.push_back(row.point);
    const std::vector<double> batch = deployed.predict(candidates);
    ASSERT_EQ(batch.size(), candidates.size()) << model;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      EXPECT_EQ(batch[i], deployed.predict(candidates[i]))
          << model << " point " << i;
    }
  }
}

TEST_F(SurrogateTest, BatchPredictOnEmptySpanIsEmpty) {
  const auto deployed = SurrogateSuite::deploy(*rows_, "power_w", "rf");
  EXPECT_TRUE(deployed.predict(std::vector<DesignPoint>{}).empty());
}

TEST_F(SurrogateTest, DeployedModelFileRoundTripPredictsIdentically) {
  // A .gmdm artifact (model + both scalers) loads back into a deployment
  // that predicts bit-identically — the model registry's load path.
  const std::string path = testing::TempDir() + "/gmd_deployed_rt.gmdm";
  for (const std::string model : {"linear", "gb"}) {
    const auto deployed =
        SurrogateSuite::deploy(*rows_, "bandwidth_mbs", model);
    deployed.save_file(path);
    const auto restored = SurrogateSuite::DeployedModel::load_file(path);
    ASSERT_NE(restored.model, nullptr) << model;
    EXPECT_EQ(restored.model->name(), deployed.model->name());

    std::vector<DesignPoint> candidates;
    for (const auto& row : *rows_) candidates.push_back(row.point);
    EXPECT_EQ(restored.predict(candidates), deployed.predict(candidates))
        << model;
  }
  std::remove(path.c_str());
}

TEST_F(SurrogateTest, DeployedModelLoadRejectsMalformedInput) {
  std::stringstream not_ours("something-else entirely\n");
  EXPECT_THROW((void)SurrogateSuite::DeployedModel::load(not_ours), Error);
  SurrogateSuite::DeployedModel unfitted;
  std::stringstream out;
  EXPECT_THROW(unfitted.save(out), Error);
}

TEST_F(SurrogateTest, DeterministicTraining) {
  const SurrogateSuite again = SurrogateSuite::train(*rows_);
  for (std::size_t i = 0; i < again.scores().size(); ++i) {
    EXPECT_DOUBLE_EQ(again.scores()[i].mse, suite_->scores()[i].mse);
  }
}

TEST_F(SurrogateTest, CustomModelListRespected) {
  SurrogateOptions options;
  options.models = {"linear"};
  const SurrogateSuite small = SurrogateSuite::train(*rows_, options);
  EXPECT_EQ(small.scores().size(), target_metric_names().size());
}

TEST_F(SurrogateTest, SkipFailedMetricsDegradesInsteadOfAborting) {
  // Poison one metric across every row: its dataset build fails with
  // kInvalidData.  Degraded mode records the skip and keeps training
  // the other five metrics.
  std::vector<SweepRow> rows = *rows_;
  for (SweepRow& row : rows) {
    row.metrics.avg_power_per_channel_w = std::nan("");
  }
  SurrogateOptions options;
  options.models = {"linear"};
  options.skip_failed_metrics = true;
  log::set_sink([](log::Level, std::string_view) {});
  const SurrogateSuite suite = SurrogateSuite::train(rows, options);
  log::set_sink(nullptr);

  ASSERT_EQ(suite.skipped().size(), 1u);
  EXPECT_EQ(suite.skipped()[0].metric, "power_w");
  EXPECT_EQ(suite.skipped()[0].code, ErrorCode::kInvalidData);
  EXPECT_EQ(suite.scores().size(), target_metric_names().size() - 1);
  // Table I names the casualty instead of silently shrinking.
  const std::string table = suite.format_table1();
  EXPECT_NE(table.find("skipped: power_w"), std::string::npos) << table;

  // Without the flag the same failure is fatal.
  options.skip_failed_metrics = false;
  log::set_sink([](log::Level, std::string_view) {});
  try {
    SurrogateSuite::train(rows, options);
    log::set_sink(nullptr);
    FAIL() << "expected Error(kInvalidData)";
  } catch (const Error& e) {
    log::set_sink(nullptr);
    EXPECT_EQ(e.code(), ErrorCode::kInvalidData) << e.what();
  }
}

TEST_F(SurrogateTest, QuarantinedRowCountsSurfacePerMetric) {
  std::vector<SweepRow> rows = *rows_;
  rows[1].metrics.avg_latency_cycles = std::nan("");
  SurrogateOptions options;
  options.models = {"linear"};
  log::set_sink([](log::Level, std::string_view) {});
  const SurrogateSuite suite = SurrogateSuite::train(rows, options);
  log::set_sink(nullptr);
  ASSERT_EQ(suite.quarantined().count("latency_cycles"), 1u);
  EXPECT_EQ(suite.quarantined().at("latency_cycles"), 1u);
  EXPECT_EQ(suite.quarantined().count("power_w"), 0u);
  EXPECT_NE(suite.format_table1().find("quarantined: latency_cycles"),
            std::string::npos);
}

TEST_F(SurrogateTest, CancellationPropagatesEvenInDegradedMode) {
  // kCancelled means "stop the run", not "this metric is bad": it must
  // escape even with skip_failed_metrics on.
  Deadline cancelled;
  cancelled.cancel();
  SurrogateOptions options;
  options.models = {"linear"};
  options.skip_failed_metrics = true;
  options.deadline = &cancelled;
  try {
    SurrogateSuite::train(*rows_, options);
    FAIL() << "expected Error(kCancelled)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled) << e.what();
  }
}

TEST_F(SurrogateTest, ExpiredDeadlineStopsTreeEnsembleTraining) {
  // The deadline reaches inside rf/gb training (per tree / per boosting
  // stage), so even a single-metric run cannot overshoot its budget by
  // a whole model fit.
  Deadline expired(std::chrono::nanoseconds{0});
  SurrogateOptions options;
  options.models = {"rf"};
  options.deadline = &expired;
  try {
    SurrogateSuite::train(*rows_, options);
    FAIL() << "expected Error(kTimeout)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTimeout) << e.what();
  }
}

TEST(Surrogate, TooFewRowsThrows) {
  std::vector<SweepRow> rows(3);
  EXPECT_THROW(SurrogateSuite::train(rows), Error);
}

}  // namespace
}  // namespace gmd::dse
