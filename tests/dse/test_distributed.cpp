/// Distributed sweep integration tests: multi-process lease-sharded
/// runs must produce rows (and a sweep.csv) bit-identical to the
/// single-process runner on the same inputs — including after SIGKILLed
/// workers, stale leases, corrupted journals, and double-claim races.
/// Suites deliberately avoid the "Sweep." name prefix so the fork-based
/// tests stay out of the thread-sanitizer sweep filter.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gmd/common/error.hpp"
#include "gmd/common/logging.hpp"
#include "gmd/cpusim/workloads.hpp"
#include "gmd/dse/checkpoint.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/dataset_builder.hpp"
#include "gmd/dse/distributed.hpp"
#include "gmd/dse/lease.hpp"
#include "gmd/graph/generators.hpp"
#include "gmd/tracestore/reader.hpp"
#include "gmd/tracestore/writer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define GMD_HAS_FORK 1
#else
#define GMD_HAS_FORK 0
#endif

namespace gmd::dse {
namespace {

namespace fs = std::filesystem;

std::vector<cpusim::MemoryEvent> small_trace() {
  graph::UniformRandomParams params;
  params.num_vertices = 64;
  params.edge_factor = 8;
  graph::EdgeList list = graph::generate_uniform_random(params);
  graph::symmetrize(list);
  const auto g = graph::CsrGraph::from_edge_list(list);
  cpusim::VectorSink sink;
  cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
  cpusim::BfsWorkload(g, 0).run(cpu);
  return sink.take();
}

std::vector<DesignPoint> small_space() {
  GridAxes axes;
  axes.kinds = {MemoryKind::kDram, MemoryKind::kNvm};
  axes.cpu_freqs_mhz = {2000, 3000};
  axes.ctrl_freqs_mhz = {666, 800};
  axes.channel_counts = {1, 2};
  axes.trcds = {9};
  return enumerate_grid(axes);  // 16 points
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void expect_rows_bit_identical(const std::vector<SweepRow>& got,
                               const std::vector<SweepRow>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].outcome, want[i].outcome) << "point " << i;
    EXPECT_EQ(got[i].point.id(), want[i].point.id()) << "point " << i;
    if (want[i].ok()) {
      EXPECT_EQ(got[i].metrics.metric_values(),
                want[i].metrics.metric_values())
          << "point " << i << " must be bit-identical";
    }
  }
}

class DistributedRun : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("gmd_dist_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);
    trace_ = small_trace();
    store_path_ = (root_ / "trace.gmdt").string();
    tracestore::write_trace_store(store_path_, trace_);
    store_ = std::make_unique<tracestore::TraceStoreReader>(store_path_);
    points_ = small_space();
  }
  void TearDown() override {
    log::set_sink(nullptr);
    store_.reset();
    fs::remove_all(root_);
  }

  std::string run_dir(const std::string& name) const {
    return (root_ / name).string();
  }

  JournalKey identity(const SweepOptions& sweep = {}) const {
    return sweep_identity(make_journal_key(points_, *store_), sweep);
  }

  fs::path root_;
  std::vector<cpusim::MemoryEvent> trace_;
  std::string store_path_;
  std::unique_ptr<tracestore::TraceStoreReader> store_;
  std::vector<DesignPoint> points_;
};

#if GMD_HAS_FORK

TEST_F(DistributedRun, PaperGridFourWorkersBitIdenticalToSingleProcess) {
  // The acceptance bar: the full 416-point paper grid, four worker
  // processes, merged rows AND sweep.csv byte-identical to run_sweep.
  points_ = paper_design_space();
  SweepOptions sweep;
  const std::vector<SweepRow> reference = run_sweep(points_, *store_, sweep);

  DistributedSweepOptions dist;
  dist.num_workers = 4;
  dist.shard_size = 16;
  DistributedStats stats;
  const auto rows = run_sweep_distributed(points_, *store_, run_dir("a"),
                                          sweep, dist, &stats);
  expect_rows_bit_identical(rows, reference);
  EXPECT_EQ(stats.shards, 26u);  // ceil(416 / 16)

  std::vector<SweepRow> ok_rows;
  for (const auto& row : reference) {
    if (row.ok()) ok_rows.push_back(row);
  }
  const std::string single_csv = (root_ / "single.csv").string();
  sweep_to_table(ok_rows).save(single_csv);
  EXPECT_EQ(slurp(run_dir("a") + "/sweep.csv"), slurp(single_csv))
      << "merged sweep.csv must be byte-identical to the single-process "
         "writer";
}

TEST_F(DistributedRun, CompletedRunResumesAsNoOp) {
  SweepOptions sweep;
  DistributedSweepOptions dist;
  dist.num_workers = 2;
  dist.shard_size = 4;
  const auto first =
      run_sweep_distributed(points_, *store_, run_dir("a"), sweep, dist);
  const std::string csv_before = slurp(run_dir("a") + "/sweep.csv");

  DistributedStats stats;
  const auto second = run_sweep_distributed(points_, *store_, run_dir("a"),
                                            sweep, dist, &stats);
  expect_rows_bit_identical(second, first);
  EXPECT_EQ(stats.tasks_issued, 0u) << "nothing to re-issue on resume";
  EXPECT_EQ(slurp(run_dir("a") + "/sweep.csv"), csv_before);
}

TEST_F(DistributedRun, RunDirRefusesForeignSweepIdentity) {
  SweepOptions sweep;
  DistributedSweepOptions dist;
  dist.num_workers = 1;
  dist.shard_size = 4;
  (void)run_sweep_distributed(points_, *store_, run_dir("a"), sweep, dist);
  // Same directory, different sampling geometry => different identity.
  SweepOptions sampled = sweep;
  sampled.sample_fraction = 0.5;
  try {
    run_sweep_distributed(points_, *store_, run_dir("a"), sampled, dist);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kConfig);
  }
}

using DistributedFaults = DistributedRun;

TEST_F(DistributedFaults, SigkilledWorkersMidRunStillBitIdentical) {
  SweepOptions sweep;
  const std::vector<SweepRow> reference = run_sweep(points_, *store_, sweep);

  // Every initial worker _Exit(137)s — no unwinding, no flushes — after
  // journaling three points, so at most 12 of the 16 points exist when
  // the massacre ends: completing the run REQUIRES the supervisor to
  // reap and respawn.  One-point shards maximize mid-shard state at
  // death.
  DistributedSweepOptions dist;
  dist.num_workers = 4;
  dist.shard_size = 1;
  dist.lease_ttl = std::chrono::milliseconds(500);
  dist.kill_workers = 4;
  dist.kill_after_points = 3;
  DistributedStats stats;
  const auto rows = run_sweep_distributed(points_, *store_, run_dir("a"),
                                          sweep, dist, &stats);
  expect_rows_bit_identical(rows, reference);
  EXPECT_GE(stats.workers_respawned, 1u);
}

TEST_F(DistributedFaults, AllWorkersDeadWithoutRespawnThrowsTyped) {
  SweepOptions sweep;
  DistributedSweepOptions dist;
  dist.num_workers = 2;
  dist.shard_size = 1;
  dist.kill_workers = 2;  // every worker dies after one point...
  dist.kill_after_points = 1;
  dist.respawn_dead_workers = false;  // ...and nobody replaces them
  try {
    run_sweep_distributed(points_, *store_, run_dir("a"), sweep, dist);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kSimulation);
  }
  // The journaled prefix survives: a clean re-run over the same
  // directory finishes the sweep instead of restarting it.
  dist.kill_workers = 0;
  DistributedStats stats;
  const auto rows =
      run_sweep_distributed(points_, *store_, run_dir("a"), sweep, dist,
                            &stats);
  expect_rows_bit_identical(rows, run_sweep(points_, *store_, sweep));
  EXPECT_LT(stats.tasks_issued, points_.size())
      << "resume must only re-issue what the dead workers never covered";
}

TEST_F(DistributedFaults, StaleLeaseIsExpiredAndReissued) {
  // A lease whose holder died before its first real heartbeat: content
  // never changes, so the supervisor's staleness clock expires it and
  // re-issues the shard under the next generation.
  SweepOptions sweep;
  const RunDir run{run_dir("a")};
  prepare_run(run, identity(sweep), /*shard_size=*/4);
  fs::create_directories(run.leases_dir());
  std::ofstream(run.leases_dir() + "/" + lease_filename({0, 1}))
      << "gmd-sweep-lease v1 shard=0 gen=1 holder=ghost beat=1 wall_ns=0\n";

  DistributedSweepOptions dist;
  dist.num_workers = 2;
  dist.shard_size = 4;
  dist.lease_ttl = std::chrono::milliseconds(200);
  DistributedStats stats;
  const auto rows = run_sweep_distributed(points_, *store_, run.root, sweep,
                                          dist, &stats);
  expect_rows_bit_identical(rows, run_sweep(points_, *store_, sweep));
  EXPECT_GE(stats.leases_expired, 1u);
}

TEST_F(DistributedFaults, CorruptJournalIsReissuedNotFatal) {
  SweepOptions sweep;
  DistributedSweepOptions dist;
  dist.num_workers = 2;
  dist.shard_size = 2;
  const auto first =
      run_sweep_distributed(points_, *store_, run_dir("a"), sweep, dist);

  // Rot one worker's journal behind the run's back and force a re-merge
  // by clearing the completion artifacts.
  const RunDir run{run_dir("a")};
  std::string victim;
  for (const auto& entry : fs::directory_iterator(run.journals_dir())) {
    if (entry.path().extension() == ".journal") {
      victim = entry.path().string();
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  std::ofstream(victim, std::ios::app) << "bogus record\n";
  fs::remove(run.complete_path());
  fs::remove(run.csv_path());

  std::vector<std::string> warnings;
  log::set_sink([&warnings](log::Level level, std::string_view msg) {
    if (level == log::Level::kWarn) warnings.emplace_back(msg);
  });
  DistributedStats stats;
  const auto rows = run_sweep_distributed(points_, *store_, run.root, sweep,
                                          dist, &stats);
  log::set_sink(nullptr);
  expect_rows_bit_identical(rows, first);
  EXPECT_GT(stats.tasks_issued, 0u)
      << "the corrupt journal's rows count as never-run";
  bool saw_unusable = false;
  for (const auto& warning : warnings) {
    if (warning.find("unusable journal") != std::string::npos) {
      saw_unusable = true;
    }
  }
  EXPECT_TRUE(saw_unusable);
}

TEST_F(DistributedFaults, TruncatedJournalLoadsAsEmptyNotParseError) {
  // Zero-length journal in the run directory (crash during the first
  // append): the merge treats it as empty-with-warning and the run
  // completes normally.
  SweepOptions sweep;
  const RunDir run{run_dir("a")};
  prepare_run(run, identity(sweep), /*shard_size=*/4);
  fs::create_directories(run.journals_dir());
  std::ofstream(run.journal_path("crashed-worker"));  // zero bytes

  DistributedSweepOptions dist;
  dist.num_workers = 2;
  dist.shard_size = 4;
  const auto rows =
      run_sweep_distributed(points_, *store_, run.root, sweep, dist);
  expect_rows_bit_identical(rows, run_sweep(points_, *store_, sweep));
}

#endif  // GMD_HAS_FORK

TEST_F(DistributedRun, DoubleClaimRaceHasExactlyOneWinner) {
  const RunDir run{run_dir("a")};
  fs::create_directories(run.tasks_dir());
  fs::create_directories(run.leases_dir());
  const ShardTask task{0, 1};
  write_task_file(run.tasks_dir() + "/" + task_filename(task), task);

  // Eight claimants race the same task through one rename(2) each.
  std::atomic<int> winners{0};
  std::atomic<int> conflicts{0};
  std::vector<std::thread> racers;
  for (int t = 0; t < 8; ++t) {
    racers.emplace_back([&, t] {
      try {
        HeldLease lease =
            claim_shard(run, task, "racer-" + std::to_string(t));
        ++winners;
        lease.release();
      } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::kLeaseConflict);
        ++conflicts;
      }
    });
  }
  for (auto& racer : racers) racer.join();
  EXPECT_EQ(winners.load(), 1);
  EXPECT_EQ(conflicts.load(), 7);
}

TEST_F(DistributedRun, ConcurrentJournalWritersMergeOrderIndependent) {
  // Two writers, distinct journals, same run identity — the distributed
  // write path.  Whatever the completion order, the merge is the same.
  const std::vector<SweepRow> reference = run_sweep(points_, *store_, {});
  const JournalKey key = identity();

  const auto write_journals = [&](const std::string& dir, bool a_first,
                                  bool interleave) {
    const RunDir run{dir};
    fs::create_directories(run.journals_dir());
    SweepJournal a(run.journal_path("worker-a"), key, "worker-a");
    SweepJournal b(run.journal_path("worker-b"), key, "worker-b");
    // worker-a owns the even indices, worker-b the odd ones; both also
    // journal point 0 (a stolen-lease duplicate).
    std::vector<std::size_t> order(points_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    if (!a_first) std::reverse(order.begin(), order.end());
    std::thread writer_a([&] {
      for (const std::size_t i : order) {
        if (i % 2 == 0) a.record(i, reference[i]);
      }
    });
    if (!interleave) writer_a.join();
    std::thread writer_b([&] {
      for (const std::size_t i : order) {
        if (i % 2 == 1) b.record(i, reference[i]);
      }
      b.record(0, reference[0]);  // duplicate of worker-a's row
    });
    writer_b.join();
    if (interleave) writer_a.join();
    return merge_journals(run, key);
  };

  const MergeResult forward = write_journals(run_dir("fwd"), true, false);
  const MergeResult backward = write_journals(run_dir("bwd"), false, true);

  for (const MergeResult* merge : {&forward, &backward}) {
    ASSERT_TRUE(merge->complete());
    EXPECT_EQ(merge->duplicates, 1u);
    EXPECT_TRUE(merge->warnings.empty());
    ASSERT_EQ(merge->rows.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_TRUE(merge->rows[i].has_value());
      EXPECT_EQ(merge->rows[i]->metrics.metric_values(),
                reference[i].metrics.metric_values());
    }
  }
}

}  // namespace
}  // namespace gmd::dse
