/// simulate_point(store, point, options) is run_sweep's per-point body
/// factored out; these tests pin the contract the query service depends
/// on: for the same (store, point, sampling geometry) the single-point
/// API returns metrics bit-identical to the SweepRow a fresh run_sweep
/// over the same store produces — across technologies, warm feeds, and
/// sampled geometries.

#include <gtest/gtest.h>

#include <filesystem>

#include "gmd/common/deadline.hpp"
#include "gmd/cpusim/workloads.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/sweep.hpp"
#include "gmd/graph/generators.hpp"
#include "gmd/memsim/predecoded_trace.hpp"
#include "gmd/tracestore/reader.hpp"
#include "gmd/tracestore/writer.hpp"

namespace gmd::dse {
namespace {

std::vector<cpusim::MemoryEvent> bfs_trace(std::uint32_t vertices = 128) {
  graph::UniformRandomParams params;
  params.num_vertices = vertices;
  params.edge_factor = 8;
  graph::EdgeList list = graph::generate_uniform_random(params);
  graph::symmetrize(list);
  const auto g = graph::CsrGraph::from_edge_list(list);
  cpusim::VectorSink sink;
  cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
  cpusim::BfsWorkload(g, 0).run(cpu);
  return sink.take();
}

void expect_metrics_identical(const memsim::MemoryMetrics& a,
                              const memsim::MemoryMetrics& b) {
  EXPECT_EQ(a.metric_values(), b.metric_values());
  EXPECT_EQ(a.total_reads, b.total_reads);
  EXPECT_EQ(a.total_writes, b.total_writes);
  EXPECT_EQ(a.execution_seconds, b.execution_seconds);
  EXPECT_EQ(a.dynamic_energy_j, b.dynamic_energy_j);
  EXPECT_EQ(a.background_energy_j, b.background_energy_j);
  EXPECT_EQ(a.row_hits, b.row_hits);
  EXPECT_EQ(a.row_misses, b.row_misses);
  EXPECT_EQ(a.max_line_writes, b.max_line_writes);
  EXPECT_EQ(a.unique_lines_written, b.unique_lines_written);
}

class SimulatePointStore : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    store_path_ = new std::string(testing::TempDir() +
                                  "/gmd_simulate_point_store.gmdt");
    std::filesystem::remove(*store_path_);
    tracestore::TraceStoreWriterOptions wopts;
    wopts.events_per_chunk = 1000;
    tracestore::write_trace_store(*store_path_, bfs_trace(), wopts);
    store_ = new tracestore::TraceStoreReader(*store_path_);
  }

  static void TearDownTestSuite() {
    delete store_;
    store_ = nullptr;
    std::filesystem::remove(*store_path_);
    delete store_path_;
    store_path_ = nullptr;
  }

  static std::string* store_path_;
  static tracestore::TraceStoreReader* store_;
};

std::string* SimulatePointStore::store_path_ = nullptr;
tracestore::TraceStoreReader* SimulatePointStore::store_ = nullptr;

// The headline contract: every point of a mixed-technology space
// answers bit-identically to the corresponding fresh run_sweep row.
TEST_F(SimulatePointStore, BitIdenticalToSweepRows) {
  const std::vector<DesignPoint> points = reduced_design_space();
  const std::vector<SweepRow> rows = run_sweep(points, *store_);
  ASSERT_EQ(rows.size(), points.size());

  for (std::size_t i = 0; i < points.size(); ++i) {
    SCOPED_TRACE(points[i].id());
    const MetricsRow row = simulate_point(*store_, points[i]);
    ASSERT_TRUE(rows[i].ok());
    expect_metrics_identical(row.metrics, rows[i].metrics);
    EXPECT_FALSE(row.sampled());
  }
}

// A warm predecoded feed (the service's shared handle) must not change
// a single bit versus the cold store path.
TEST_F(SimulatePointStore, WarmPredecodedFeedIsIdentical) {
  DesignPoint point;
  point.kind = MemoryKind::kNvm;
  point.cpu_freq_mhz = 3333;
  point.ctrl_freq_mhz = 666;
  point.channels = 4;
  point.trcd = 50;

  const MetricsRow cold = simulate_point(*store_, point);

  const auto events = store_->read_all();
  const memsim::PredecodedTrace predecoded =
      memsim::PredecodedTrace::build(point.single_config(), events);
  SimulateOptions warm;
  warm.predecoded = &predecoded;
  expect_metrics_identical(simulate_point(*store_, point, warm).metrics,
                           cold.metrics);

  SimulateOptions raw;
  raw.raw_events = events;
  expect_metrics_identical(simulate_point(*store_, point, raw).metrics,
                           cold.metrics);
}

// Hybrid points take the raw-event path (optionally warm).
TEST_F(SimulatePointStore, HybridMatchesSweep) {
  DesignPoint point;
  point.kind = MemoryKind::kHybrid;
  point.cpu_freq_mhz = 2000;
  point.ctrl_freq_mhz = 400;
  point.channels = 2;
  point.trcd = 50;

  const std::vector<DesignPoint> points{point};
  const std::vector<SweepRow> rows = run_sweep(points, *store_);
  ASSERT_TRUE(rows[0].ok());

  const MetricsRow cold = simulate_point(*store_, point);
  expect_metrics_identical(cold.metrics, rows[0].metrics);

  const auto events = store_->read_all();
  SimulateOptions warm;
  warm.raw_events = events;
  expect_metrics_identical(simulate_point(*store_, point, warm).metrics,
                           rows[0].metrics);
}

// Sampled geometry must reproduce the sampled sweep's estimates and
// intervals exactly (same chunk subset, same estimators).
TEST_F(SimulatePointStore, SampledMatchesSampledSweep) {
  DesignPoint point;
  point.kind = MemoryKind::kDram;
  point.cpu_freq_mhz = 2000;
  point.ctrl_freq_mhz = 400;
  point.channels = 2;

  SweepOptions sweep_options;
  sweep_options.sample_fraction = 0.5;
  sweep_options.sample_seed = 7;
  const std::vector<DesignPoint> points{point};
  const std::vector<SweepRow> rows = run_sweep(points, *store_, sweep_options);
  ASSERT_TRUE(rows[0].ok());
  ASSERT_TRUE(rows[0].sampled());

  SimulateOptions options;
  options.sample_fraction = 0.5;
  options.sample_seed = 7;
  const MetricsRow row = simulate_point(*store_, point, options);
  ASSERT_TRUE(row.sampled());
  expect_metrics_identical(row.metrics, rows[0].metrics);
  ASSERT_EQ(row.metric_ci.size(), rows[0].metric_ci.size());
  for (std::size_t m = 0; m < row.metric_ci.size(); ++m) {
    EXPECT_EQ(row.metric_ci[m].lo, rows[0].metric_ci[m].lo);
    EXPECT_EQ(row.metric_ci[m].hi, rows[0].metric_ci[m].hi);
  }
}

// sim_workers is identity-neutral for the single-point API, exactly as
// for sweeps.
TEST_F(SimulatePointStore, SimWorkersNeutral) {
  DesignPoint point;
  point.kind = MemoryKind::kDram;
  point.cpu_freq_mhz = 5000;
  point.ctrl_freq_mhz = 1250;
  point.channels = 4;

  const MetricsRow serial = simulate_point(*store_, point);
  SimulateOptions parallel;
  parallel.sim_workers = 4;
  expect_metrics_identical(simulate_point(*store_, point, parallel).metrics,
                           serial.metrics);
}

TEST_F(SimulatePointStore, ValidatesPointAndOptions) {
  DesignPoint bad;
  bad.channels = 0;
  EXPECT_THROW(simulate_point(*store_, bad), Error);

  DesignPoint ok;
  SimulateOptions bad_fraction;
  bad_fraction.sample_fraction = 0.0;
  EXPECT_THROW(simulate_point(*store_, ok, bad_fraction), Error);
  SimulateOptions bad_workers;
  bad_workers.sim_workers = 0;
  EXPECT_THROW(simulate_point(*store_, ok, bad_workers), Error);
}

TEST_F(SimulatePointStore, HonorsCancellation) {
  Deadline cancel;
  cancel.cancel();
  SimulateOptions options;
  options.deadline = &cancel;
  DesignPoint point;
  try {
    (void)simulate_point(*store_, point, options);
    FAIL() << "expected cancellation";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled);
  }
}

// The in-memory overload rides the same core: equal events, equal bits.
TEST_F(SimulatePointStore, SpanOverloadMatchesStore) {
  DesignPoint point;
  point.kind = MemoryKind::kNvm;
  point.trcd = 125;
  const auto events = store_->read_all();
  const memsim::MemoryMetrics from_span = simulate_point(point, events);
  expect_metrics_identical(from_span, simulate_point(*store_, point).metrics);
}

}  // namespace
}  // namespace gmd::dse
