#include "gmd/dse/multi_study.hpp"

#include <gtest/gtest.h>

#include "gmd/common/error.hpp"
#include "gmd/dse/config_space.hpp"

namespace gmd::dse {
namespace {

MultiStudyConfig small_study() {
  MultiStudyConfig config;
  config.workloads = {"bfs", "cc"};
  config.graph_vertices = 96;
  config.edge_factor = 8;
  config.metrics = {"power_w", "latency_cycles"};
  GridAxes axes;
  axes.kinds = {MemoryKind::kDram, MemoryKind::kNvm};
  axes.cpu_freqs_mhz = {2000, 5000};
  axes.ctrl_freqs_mhz = {400, 1250};
  axes.channel_counts = {2, 4};
  axes.trcds = {20, 62};
  config.design_points = enumerate_grid(axes);
  return config;
}

TEST(MultiStudy, RunsAllWorkloadsAndScoresLowo) {
  const MultiStudyResult result = run_multi_workload_study(small_study());
  ASSERT_EQ(result.sweeps.size(), 2u);
  EXPECT_EQ(result.sweeps[0].name, "bfs");
  EXPECT_EQ(result.sweeps[1].name, "cc");
  for (const auto& sweep : result.sweeps) {
    EXPECT_EQ(sweep.rows.size(), small_study().design_points.size());
    EXPECT_GT(sweep.log10_events, 0.0);
    EXPECT_GT(sweep.read_fraction, 0.0);
    EXPECT_LE(sweep.read_fraction, 1.0);
    EXPECT_GT(sweep.footprint_kb, 0.0);
  }
  // 2 metrics x 2 held-out workloads.
  EXPECT_EQ(result.lowo.size(), 4u);
}

TEST(MultiStudy, PowerGeneralizesToBracketedKernel) {
  // LOWO needs the held-out kernel's descriptors inside the training
  // range: hold out CC, whose trace statistics sit between BFS's and
  // SSSP's (all three are read-dominated traversals).
  MultiStudyConfig config = small_study();
  config.workloads = {"bfs", "cc", "sssp"};
  config.metrics = {"power_w"};
  config.graph_vertices = 256;
  config.design_points.clear();  // full reduced space: 96 points
  const MultiStudyResult result = run_multi_workload_study(config);
  double cc_r2 = -1e9;
  double bfs_r2 = -1e9;
  for (const auto& score : result.lowo) {
    if (score.metric != "power_w") continue;
    if (score.held_out_workload == "cc") cc_r2 = score.r2;
    if (score.held_out_workload == "bfs") bfs_r2 = score.r2;
  }
  // Generalization to the bracketed kernel is real (positive R2) and
  // clearly better than extrapolating to the descriptor-range edge.
  // (The full-scale version of this experiment — 1024-vertex traces,
  // four kernels — reaches R2 ~0.9; see bench_ablation_transfer.)
  EXPECT_GT(cc_r2, 0.25);
  EXPECT_GT(cc_r2, bfs_r2);
}

TEST(MultiStudy, SummaryListsWorkloadsAndScores) {
  const MultiStudyResult result = run_multi_workload_study(small_study());
  const std::string text = result.summary();
  EXPECT_NE(text.find("bfs"), std::string::npos);
  EXPECT_NE(text.find("cc"), std::string::npos);
  EXPECT_NE(text.find("hold out"), std::string::npos);
  EXPECT_NE(text.find("power_w"), std::string::npos);
}

TEST(MultiStudy, MeanLowoRejectsUnknownMetric) {
  const MultiStudyResult result = run_multi_workload_study(small_study());
  EXPECT_THROW((void)result.mean_lowo_r2("bogus"), Error);
}

TEST(MultiStudy, NeedsAtLeastTwoWorkloads) {
  MultiStudyConfig config = small_study();
  config.workloads = {"bfs"};
  EXPECT_THROW(run_multi_workload_study(config), Error);
}

}  // namespace
}  // namespace gmd::dse
