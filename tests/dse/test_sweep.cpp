#include "gmd/dse/sweep.hpp"

#include <gtest/gtest.h>

#include "gmd/cpusim/workloads.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/graph/generators.hpp"

namespace gmd::dse {
namespace {

std::vector<cpusim::MemoryEvent> small_trace() {
  graph::UniformRandomParams params;
  params.num_vertices = 128;
  params.edge_factor = 8;
  graph::EdgeList list = graph::generate_uniform_random(params);
  graph::symmetrize(list);
  const auto g = graph::CsrGraph::from_edge_list(list);
  cpusim::VectorSink sink;
  cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
  cpusim::BfsWorkload(g, 0).run(cpu);
  return sink.take();
}

TEST(Sweep, RowOrderMatchesPointOrder) {
  const auto trace = small_trace();
  GridAxes axes;
  axes.kinds = {MemoryKind::kDram, MemoryKind::kNvm, MemoryKind::kHybrid};
  axes.cpu_freqs_mhz = {2000, 5000};
  axes.ctrl_freqs_mhz = {400};
  axes.channel_counts = {2};
  axes.trcds = {20};
  const auto points = enumerate_grid(axes);
  const auto rows = run_sweep(points, trace);
  ASSERT_EQ(rows.size(), points.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].point, points[i]);
  }
}

TEST(Sweep, AllRowsCarryRealMetrics) {
  const auto trace = small_trace();
  const auto points = reduced_design_space();
  SweepOptions options;
  options.num_threads = 2;
  const auto rows = run_sweep(points, trace, options);
  for (const auto& row : rows) {
    EXPECT_GT(row.metrics.total_reads + row.metrics.total_writes, 0u)
        << row.point.id();
    EXPECT_GT(row.metrics.avg_power_per_channel_w, 0.0) << row.point.id();
    EXPECT_GT(row.metrics.avg_latency_cycles, 0.0) << row.point.id();
  }
}

TEST(Sweep, ParallelMatchesSerial) {
  const auto trace = small_trace();
  GridAxes axes;
  axes.kinds = {MemoryKind::kNvm};
  axes.cpu_freqs_mhz = {2000, 3000};
  axes.ctrl_freqs_mhz = {400, 666};
  axes.channel_counts = {2, 4};
  const auto points = enumerate_grid(axes);
  SweepOptions serial;
  serial.num_threads = 1;
  SweepOptions parallel;
  parallel.num_threads = 4;
  const auto a = run_sweep(points, trace, serial);
  const auto b = run_sweep(points, trace, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].metrics.metric_values(), b[i].metrics.metric_values());
  }
}

TEST(Sweep, SimulatePointDispatchesAllKinds) {
  const auto trace = small_trace();
  for (const MemoryKind kind :
       {MemoryKind::kDram, MemoryKind::kNvm, MemoryKind::kHybrid}) {
    DesignPoint p;
    p.kind = kind;
    p.trcd = kind == MemoryKind::kDram ? 9 : 20;
    const auto metrics = simulate_point(p, trace);
    EXPECT_EQ(metrics.channels, p.channels) << to_string(kind);
    EXPECT_GT(metrics.total_reads, 0u) << to_string(kind);
  }
}

TEST(Sweep, ReadsWritesIndependentOfMemoryKind) {
  // The workload determines reads/writes; the technology must not.
  const auto trace = small_trace();
  DesignPoint dram, nvm, hybrid;
  nvm.kind = MemoryKind::kNvm;
  nvm.trcd = 20;
  hybrid.kind = MemoryKind::kHybrid;
  hybrid.trcd = 20;
  const auto md = simulate_point(dram, trace);
  const auto mn = simulate_point(nvm, trace);
  const auto mh = simulate_point(hybrid, trace);
  EXPECT_EQ(md.total_reads, mn.total_reads);
  EXPECT_EQ(mn.total_reads, mh.total_reads);
  EXPECT_EQ(md.total_writes, mh.total_writes);
}

}  // namespace
}  // namespace gmd::dse
