#include "gmd/dse/config_space.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "gmd/common/error.hpp"

namespace gmd::dse {
namespace {

TEST(PaperDesignSpace, Has416Configurations) {
  const auto points = paper_design_space();
  EXPECT_EQ(points.size(), 416u);  // §IV-A3: "total 416 memory configurations"
}

TEST(PaperDesignSpace, KindBreakdownMatchesPaper) {
  const auto points = paper_design_space();
  std::map<MemoryKind, std::size_t> counts;
  for (const auto& p : points) ++counts[p.kind];
  EXPECT_EQ(counts[MemoryKind::kDram], 32u);    // 4 cpu x 4 ctrl x 2 ch
  EXPECT_EQ(counts[MemoryKind::kNvm], 192u);    // 32 cells x 6 tRCD
  EXPECT_EQ(counts[MemoryKind::kHybrid], 192u);
}

TEST(PaperDesignSpace, AllPointsDistinct) {
  const auto points = paper_design_space();
  std::set<std::string> ids;
  for (const auto& p : points) ids.insert(p.id());
  EXPECT_EQ(ids.size(), points.size());
}

TEST(PaperDesignSpace, TrcdValuesFollowControllerFrequency) {
  for (const auto& p : paper_design_space()) {
    if (p.kind == MemoryKind::kDram) {
      EXPECT_EQ(p.trcd, 9u);
      continue;
    }
    const auto& allowed = memsim::nvm_trcd_set(p.ctrl_freq_mhz);
    EXPECT_NE(std::find(allowed.begin(), allowed.end(), p.trcd),
              allowed.end())
        << p.id();
  }
}

TEST(ReducedDesignSpace, Has96PointsCoveringAllCells) {
  const auto points = reduced_design_space();
  EXPECT_EQ(points.size(), 96u);  // 32 cells x 3 memory kinds
  std::set<std::string> cells;
  for (const auto& p : points) {
    cells.insert(std::to_string(p.cpu_freq_mhz) + "/" +
                 std::to_string(p.ctrl_freq_mhz) + "/" +
                 std::to_string(p.channels) + "/" + to_string(p.kind));
  }
  EXPECT_EQ(cells.size(), 96u);
}

TEST(EnumerateGrid, CustomAxes) {
  GridAxes axes;
  axes.kinds = {MemoryKind::kDram, MemoryKind::kNvm};
  axes.cpu_freqs_mhz = {2000};
  axes.ctrl_freqs_mhz = {400};
  axes.channel_counts = {2, 4};
  axes.trcds = {20, 40};
  const auto points = enumerate_grid(axes);
  // DRAM: 1x1x2 = 2; NVM: 1x1x2x2 = 4.
  EXPECT_EQ(points.size(), 6u);
}

TEST(EnumerateGrid, EmptyTrcdsUsesPaperSets) {
  GridAxes axes;
  axes.kinds = {MemoryKind::kNvm};
  axes.cpu_freqs_mhz = {2000};
  axes.ctrl_freqs_mhz = {400};
  axes.channel_counts = {2};
  const auto points = enumerate_grid(axes);
  EXPECT_EQ(points.size(), 6u);  // the 400 MHz tRCD set
}

TEST(EnumerateGrid, RejectsEmptyAxes) {
  GridAxes axes;
  EXPECT_THROW(enumerate_grid(axes), Error);
}

}  // namespace
}  // namespace gmd::dse
