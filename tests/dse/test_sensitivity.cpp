#include "gmd/dse/sensitivity.hpp"

#include <gtest/gtest.h>

#include "gmd/common/error.hpp"
#include "gmd/cpusim/workloads.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/dataset_builder.hpp"
#include "gmd/graph/generators.hpp"

namespace gmd::dse {
namespace {

class SensitivityTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph::UniformRandomParams params;
    params.num_vertices = 128;
    params.edge_factor = 8;
    graph::EdgeList list = graph::generate_uniform_random(params);
    graph::symmetrize(list);
    const auto g = graph::CsrGraph::from_edge_list(list);
    cpusim::VectorSink sink;
    cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
    cpusim::BfsWorkload(g, 0).run(cpu);
    rows_ = new std::vector<SweepRow>(
        run_sweep(reduced_design_space(), sink.events()));
  }
  static void TearDownTestSuite() {
    delete rows_;
    rows_ = nullptr;
  }
  static std::vector<SweepRow>* rows_;
};

std::vector<SweepRow>* SensitivityTest::rows_ = nullptr;

TEST_F(SensitivityTest, ChannelsDominateReadsPerChannel) {
  // reads/channel is exactly total/channels: the channel count must be
  // the dominant knob by a wide margin.
  const auto result = analyze_sensitivity(*rows_, "reads_per_channel");
  EXPECT_EQ(result.dominant().parameter, "channels");
  EXPECT_EQ(result.dominant().best_level, "4");  // fewer per channel
}

TEST_F(SensitivityTest, TechnologyMattersForPower) {
  const auto result = analyze_sensitivity(*rows_, "power_w");
  // Memory kind must be among the strong knobs and NVM the best level.
  bool found = false;
  for (const auto& effect : result.effects) {
    if (effect.parameter == "kind") {
      found = true;
      EXPECT_EQ(effect.best_level, "nvm");
      EXPECT_GT(effect.relative_effect, 0.1);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SensitivityTest, EffectsAreSortedByLeverage) {
  const auto result = analyze_sensitivity(*rows_, "total_latency_cycles");
  for (std::size_t i = 1; i < result.effects.size(); ++i) {
    EXPECT_GE(result.effects[i - 1].relative_effect,
              result.effects[i].relative_effect);
  }
  EXPECT_EQ(result.effects.size(),
            sensitivity_parameter_names().size());
}

TEST_F(SensitivityTest, LevelMeansBracketOverallMean) {
  const auto result = analyze_sensitivity(*rows_, "bandwidth_mbs");
  for (const auto& effect : result.effects) {
    EXPECT_LE(effect.min_level_mean, result.overall_mean + 1e-9);
    EXPECT_GE(effect.max_level_mean, result.overall_mean - 1e-9);
  }
}

TEST_F(SensitivityTest, SummaryListsAllParameters) {
  const auto result = analyze_sensitivity(*rows_, "power_w");
  const std::string text = result.summary();
  for (const auto& parameter : sensitivity_parameter_names()) {
    EXPECT_NE(text.find(parameter), std::string::npos) << parameter;
  }
}

TEST_F(SensitivityTest, UnsweptParameterSkipped) {
  // A sweep with a single channel count has no "channels" effect.
  std::vector<SweepRow> filtered;
  for (const auto& row : *rows_) {
    if (row.point.channels == 2) filtered.push_back(row);
  }
  const auto result = analyze_sensitivity(filtered, "power_w");
  for (const auto& effect : result.effects) {
    EXPECT_NE(effect.parameter, "channels");
  }
}

TEST_F(SensitivityTest, ValuesEntryPointMatchesSweepAnalysis) {
  // analyze_sensitivity is a thin adapter over the (point, value) core:
  // feeding the same rows through both must give identical numbers.
  const std::string metric = "total_latency_cycles";
  std::size_t index = 0;
  const auto& names = target_metric_names();
  while (names[index] != metric) ++index;

  std::vector<DesignPoint> points;
  std::vector<double> values;
  for (const auto& row : *rows_) {
    points.push_back(row.point);
    values.push_back(row.metrics.metric_values()[index]);
  }
  const auto direct = analyze_sensitivity(*rows_, metric);
  const auto via_values = analyze_sensitivity_values(points, values, metric);
  EXPECT_EQ(direct.overall_mean, via_values.overall_mean);
  ASSERT_EQ(direct.effects.size(), via_values.effects.size());
  for (std::size_t i = 0; i < direct.effects.size(); ++i) {
    EXPECT_EQ(direct.effects[i].parameter, via_values.effects[i].parameter);
    EXPECT_EQ(direct.effects[i].relative_effect,
              via_values.effects[i].relative_effect);
    EXPECT_EQ(direct.effects[i].best_level, via_values.effects[i].best_level);
  }
}

TEST_F(SensitivityTest, PredictedSensitivityRecoversTheDominantKnob) {
  // A surrogate trained on the sweep and batch-evaluated over the same
  // points must agree on the headline finding: the channel count
  // dominates reads/channel.
  std::vector<DesignPoint> candidates;
  for (const auto& row : *rows_) candidates.push_back(row.point);
  const auto result =
      analyze_sensitivity_predicted(*rows_, candidates, "reads_per_channel");
  ASSERT_FALSE(result.effects.empty());
  EXPECT_EQ(result.dominant().parameter, "channels");
  EXPECT_EQ(result.dominant().best_level, "4");
}

TEST(Sensitivity, ErrorsOnBadInput) {
  EXPECT_THROW(analyze_sensitivity({}, "power_w"), Error);
  std::vector<SweepRow> rows(3);
  EXPECT_THROW(analyze_sensitivity(rows, "bogus"), Error);
}

}  // namespace
}  // namespace gmd::dse
