#include "gmd/dse/active_learning.hpp"

#include <gtest/gtest.h>

#include <set>

#include "gmd/common/error.hpp"
#include "gmd/cpusim/workloads.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/graph/generators.hpp"
#include "gmd/ml/dataset.hpp"

namespace gmd::dse {
namespace {

class ActiveLearningTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph::UniformRandomParams params;
    params.num_vertices = 128;
    params.edge_factor = 8;
    graph::EdgeList list = graph::generate_uniform_random(params);
    graph::symmetrize(list);
    const auto g = graph::CsrGraph::from_edge_list(list);
    cpusim::VectorSink sink;
    cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
    cpusim::BfsWorkload(g, 0).run(cpu);
    const auto rows = run_sweep(reduced_design_space(), sink.events());
    // 75/25 pool/holdout split by index stride.
    pool_ = new std::vector<SweepRow>();
    holdout_ = new std::vector<SweepRow>();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      (i % 4 == 0 ? holdout_ : pool_)->push_back(rows[i]);
    }
  }
  static void TearDownTestSuite() {
    delete pool_;
    delete holdout_;
    pool_ = nullptr;
    holdout_ = nullptr;
  }
  static std::vector<SweepRow>* pool_;
  static std::vector<SweepRow>* holdout_;
};

std::vector<SweepRow>* ActiveLearningTest::pool_ = nullptr;
std::vector<SweepRow>* ActiveLearningTest::holdout_ = nullptr;

TEST_F(ActiveLearningTest, CurveTracksBudget) {
  ActiveLearningOptions options;
  options.initial_labels = 8;
  options.label_budget = 24;
  options.batch_size = 4;
  const auto result =
      run_active_learning(*pool_, *holdout_, "power_w", options);
  ASSERT_FALSE(result.curve.empty());
  EXPECT_EQ(result.curve.front().labels_used, 8u);
  EXPECT_EQ(result.curve.back().labels_used, 24u);
  EXPECT_EQ(result.curve.size(), 5u);  // 8, 12, 16, 20, 24
}

TEST_F(ActiveLearningTest, AcquisitionOrderHasNoDuplicates) {
  ActiveLearningOptions options;
  options.label_budget = 30;
  const auto result =
      run_active_learning(*pool_, *holdout_, "latency_cycles", options);
  std::set<std::size_t> seen(result.acquisition_order.begin(),
                             result.acquisition_order.end());
  EXPECT_EQ(seen.size(), result.acquisition_order.size());
  for (const std::size_t i : result.acquisition_order) {
    EXPECT_LT(i, pool_->size());
  }
}

TEST_F(ActiveLearningTest, AccuracyImprovesWithLabels) {
  ActiveLearningOptions options;
  options.initial_labels = 6;
  options.label_budget = 48;
  options.batch_size = 6;
  const auto result =
      run_active_learning(*pool_, *holdout_, "power_w", options);
  EXPECT_GT(result.curve.back().r2_on_holdout,
            result.curve.front().r2_on_holdout);
  EXPECT_GT(result.curve.back().r2_on_holdout, 0.7);
}

TEST_F(ActiveLearningTest, ActiveBeatsOrMatchesRandomAtBudgetEnd) {
  ActiveLearningOptions options;
  options.initial_labels = 6;
  options.label_budget = 40;
  options.batch_size = 2;
  options.seed = 3;
  const auto active =
      run_active_learning(*pool_, *holdout_, "total_latency_cycles", options);
  const auto random =
      run_random_sampling(*pool_, *holdout_, "total_latency_cycles", options);
  // Active learning should not be much worse than random, and usually
  // better; allow slack for the small pool.
  EXPECT_GT(active.curve.back().r2_on_holdout,
            random.curve.back().r2_on_holdout - 0.1);
}

TEST_F(ActiveLearningTest, RandomBaselineDeterministicPerSeed) {
  ActiveLearningOptions options;
  options.label_budget = 20;
  const auto a = run_random_sampling(*pool_, *holdout_, "power_w", options);
  const auto b = run_random_sampling(*pool_, *holdout_, "power_w", options);
  EXPECT_EQ(a.acquisition_order, b.acquisition_order);
}

TEST_F(ActiveLearningTest, BudgetClampedToPoolSize) {
  ActiveLearningOptions options;
  options.initial_labels = 4;
  options.label_budget = 100000;
  options.batch_size = 16;
  const auto result =
      run_active_learning(*pool_, *holdout_, "power_w", options);
  EXPECT_LE(result.curve.back().labels_used, pool_->size());
  EXPECT_EQ(result.acquisition_order.size(),
            result.curve.back().labels_used);
}

TEST_F(ActiveLearningTest, ForestModelLearnsAndIsThreadInvariant) {
  ActiveLearningOptions options;
  options.model = "rf";
  options.initial_labels = 10;
  options.label_budget = 30;
  options.batch_size = 4;
  const auto serial =
      run_active_learning(*pool_, *holdout_, "power_w", options);
  ASSERT_FALSE(serial.curve.empty());
  EXPECT_EQ(serial.curve.back().labels_used, 30u);
  EXPECT_GT(serial.curve.back().r2_on_holdout, 0.3);

  // The pool workspace is presorted once and every round's retrain is
  // derived from it; training is bit-identical at any thread count, so
  // the acquisition trajectory must be too.
  options.num_threads = 3;
  const auto threaded =
      run_active_learning(*pool_, *holdout_, "power_w", options);
  EXPECT_EQ(threaded.acquisition_order, serial.acquisition_order);
  for (std::size_t i = 0; i < serial.curve.size(); ++i) {
    EXPECT_EQ(threaded.curve[i].r2_on_holdout, serial.curve[i].r2_on_holdout);
  }
}

TEST_F(ActiveLearningTest, BadOptionsThrow) {
  ActiveLearningOptions options;
  options.initial_labels = 1;
  EXPECT_THROW(run_active_learning(*pool_, *holdout_, "power_w", options),
               Error);
  options = ActiveLearningOptions{};
  options.label_budget = 2;
  options.initial_labels = 10;
  EXPECT_THROW(run_active_learning(*pool_, *holdout_, "power_w", options),
               Error);
  EXPECT_THROW(run_active_learning({}, *holdout_, "power_w", {}), Error);
  options = ActiveLearningOptions{};
  options.model = "svm";
  EXPECT_THROW(run_active_learning(*pool_, *holdout_, "power_w", options),
               Error);
}

}  // namespace
}  // namespace gmd::dse
