#include "gmd/dse/explorer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>
#include <stdexcept>
#include <vector>

#include "gmd/common/error.hpp"
#include "gmd/cpusim/workloads.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/lazy_space.hpp"
#include "gmd/graph/generators.hpp"

namespace gmd::dse {
namespace {

std::vector<cpusim::MemoryEvent> make_trace(std::uint32_t vertices = 96) {
  graph::UniformRandomParams params;
  params.num_vertices = vertices;
  params.edge_factor = 8;
  graph::EdgeList list = graph::generate_uniform_random(params);
  graph::symmetrize(list);
  const auto g = graph::CsrGraph::from_edge_list(list);
  cpusim::VectorSink sink;
  cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
  cpusim::BfsWorkload(g, 0).run(cpu);
  return sink.events();
}

/// A deterministic stand-in scorer: a fixed function of the raw
/// features, so expected rankings can be recomputed exhaustively.
BlockScorer synthetic_scorer() {
  return [](const ml::Matrix& x, std::size_t /*first*/,
            std::span<double> out) {
    for (std::size_t r = 0; r < x.rows(); ++r) {
      const auto row = x.row(r);
      out[r] = std::sin(row[0] * 0.001) + 0.5 * std::cos(row[1] * 0.01) +
               0.1 * row[2] - 0.001 * row[3];
    }
  };
}

std::vector<ScoredPoint> exhaustive_reference(
    const LazySpace& space, const BlockScorer& scorer, std::size_t k,
    std::span<const std::size_t> skip = {}) {
  const std::size_t width = DesignPoint::feature_names().size();
  ml::Matrix x(space.size(), width);
  for (std::size_t i = 0; i < space.size(); ++i) {
    space.decode_features(i, i + 1, x.row(i));
  }
  std::vector<double> scores(space.size());
  scorer(x, 0, scores);
  std::vector<ScoredPoint> all;
  for (std::size_t i = 0; i < space.size(); ++i) {
    if (std::binary_search(skip.begin(), skip.end(), i)) continue;
    all.push_back({i, scores[i]});
  }
  std::sort(all.begin(), all.end(), scored_before);
  if (all.size() > k) all.resize(k);
  return all;
}

TEST(ScoredBefore, TotalOrderWithIndexTieBreak) {
  EXPECT_TRUE(scored_before({5, 2.0}, {3, 1.0}));
  EXPECT_FALSE(scored_before({3, 1.0}, {5, 2.0}));
  EXPECT_TRUE(scored_before({3, 1.0}, {5, 1.0}));   // tie: lower index
  EXPECT_FALSE(scored_before({5, 1.0}, {3, 1.0}));
  EXPECT_FALSE(scored_before({3, 1.0}, {3, 1.0}));  // irreflexive
}

TEST(StreamScoreTopk, MatchesExhaustiveRanking) {
  const LazySpace space = LazySpace::paper();
  const BlockScorer scorer = synthetic_scorer();
  const auto expected = exhaustive_reference(space, scorer, 25);
  const auto got = stream_score_topk(space, scorer, 25);
  EXPECT_EQ(got, expected);
}

TEST(StreamScoreTopk, InvariantToBlockSizeAndThreads) {
  const LazySpace space = LazySpace::paper();
  const BlockScorer scorer = synthetic_scorer();
  const auto reference = stream_score_topk(space, scorer, 10);
  for (const std::size_t block : {1ul, 7ul, 64ul, 100000ul}) {
    for (const std::size_t threads : {1ul, 2ul, 5ul}) {
      StreamStats stats;
      const auto got =
          stream_score_topk(space, scorer, 10, {}, block, threads, &stats);
      EXPECT_EQ(got, reference) << "block " << block << " threads " << threads;
      EXPECT_EQ(stats.scored, space.size());
      EXPECT_EQ(stats.blocks, (space.size() + block - 1) / block);
    }
  }
}

TEST(StreamScoreTopk, ConstantScoresTieBreakToLowestIndices) {
  const LazySpace space = LazySpace::reduced();
  const BlockScorer constant = [](const ml::Matrix& x, std::size_t,
                                  std::span<double> out) {
    for (std::size_t r = 0; r < x.rows(); ++r) out[r] = 7.0;
  };
  const std::vector<std::size_t> skip = {0, 2, 3};
  const auto got = stream_score_topk(space, constant, 4, skip, 16, 3);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].index, 1u);
  EXPECT_EQ(got[1].index, 4u);
  EXPECT_EQ(got[2].index, 5u);
  EXPECT_EQ(got[3].index, 6u);
}

TEST(StreamScoreTopk, SkipListAndShortSpaces) {
  const LazySpace space = LazySpace::reduced();
  const BlockScorer scorer = synthetic_scorer();
  std::vector<std::size_t> skip;
  for (std::size_t i = 0; i < space.size(); i += 2) skip.push_back(i);
  const auto expected = exhaustive_reference(space, scorer, 200, skip);
  const auto got = stream_score_topk(space, scorer, 200, skip, 13, 2);
  EXPECT_EQ(got, expected);  // k > candidates: returns all, sorted
  EXPECT_EQ(got.size(), space.size() - skip.size());
  EXPECT_TRUE(stream_score_topk(space, scorer, 0).empty());
}

class ExplorerTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new std::vector<cpusim::MemoryEvent>(make_trace());
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }

  static ExplorerOptions small_options() {
    ExplorerOptions options;
    options.initial_samples = 8;
    options.batch_size = 4;
    options.max_rounds = 3;
    options.simulation_budget = 20;
    options.top_k = 5;
    return options;
  }

  static std::vector<cpusim::MemoryEvent>* trace_;
};

std::vector<cpusim::MemoryEvent>* ExplorerTest::trace_ = nullptr;

void expect_same_result(const ExplorerResult& a, const ExplorerResult& b) {
  EXPECT_EQ(a.space_size, b.space_size);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_EQ(a.rounds[r].acquired, b.rounds[r].acquired) << "round " << r;
    EXPECT_EQ(a.rounds[r].best_value, b.rounds[r].best_value) << "round " << r;
  }
  EXPECT_EQ(a.top, b.top);
  ASSERT_EQ(a.labeled.size(), b.labeled.size());
  for (std::size_t i = 0; i < a.labeled.size(); ++i) {
    EXPECT_EQ(a.labeled[i].first, b.labeled[i].first);
  }
  ASSERT_EQ(a.fronts.size(), b.fronts.size());
  for (std::size_t f = 0; f < a.fronts.size(); ++f) {
    EXPECT_EQ(a.fronts[f].entries, b.fronts[f].entries);
  }
}

TEST_F(ExplorerTest, RespectsBudgetAndRoundStructure) {
  const LazySpace space = LazySpace::reduced();
  const ExplorerResult result =
      run_explorer(space, *trace_, small_options());
  ASSERT_FALSE(result.rounds.empty());
  EXPECT_EQ(result.rounds.front().acquired.size(), 8u);
  EXPECT_LE(result.labeled.size(), 20u);
  EXPECT_EQ(result.top.size(), 5u);
  std::set<std::size_t> seen;
  for (const ExplorerRound& round : result.rounds) {
    for (const std::size_t index : round.acquired) {
      EXPECT_TRUE(seen.insert(index).second)
          << "index " << index << " acquired twice";
    }
  }
  EXPECT_EQ(seen.size(), result.labeled.size());
  EXPECT_EQ(result.fronts.size(), 2u);
}

TEST_F(ExplorerTest, DeterministicAcrossThreadsAndBlocks) {
  const LazySpace space = LazySpace::reduced();
  ExplorerOptions base = small_options();
  const ExplorerResult reference = run_explorer(space, *trace_, base);

  ExplorerOptions threaded = base;
  threaded.num_threads = 4;
  threaded.block_size = 8;
  expect_same_result(run_explorer(space, *trace_, threaded), reference);

  ExplorerOptions tiny_blocks = base;
  tiny_blocks.block_size = 1;
  expect_same_result(run_explorer(space, *trace_, tiny_blocks), reference);
}

TEST_F(ExplorerTest, AcquisitionModesAndModelsRun) {
  const LazySpace space = LazySpace::reduced();
  for (const Acquisition acquisition :
       {Acquisition::kMaxVariance, Acquisition::kExpectedImprovement,
        Acquisition::kBestPredicted}) {
    for (const char* model : {"gp", "rf"}) {
      ExplorerOptions options = small_options();
      options.acquisition = acquisition;
      options.model = model;
      const ExplorerResult result = run_explorer(space, *trace_, options);
      EXPECT_EQ(result.top.size(), 5u)
          << model << "/" << to_string(acquisition);
    }
  }
}

TEST_F(ExplorerTest, KillAndResumeReachesIdenticalResult) {
  const LazySpace space = LazySpace::reduced();
  const std::string run_dir =
      (std::filesystem::temp_directory_path() / "gmd_explorer_resume_test")
          .string();
  std::filesystem::remove_all(run_dir);

  ExplorerOptions options = small_options();
  const ExplorerResult uninterrupted = run_explorer(space, *trace_, options);

  // Round hooks fire after each round is simulated and journaled, so
  // throwing from one is the in-process stand-in for SIGKILL at the
  // worst moment: a freshly journaled acquisition with nothing resumed.
  struct Killed {};
  for (std::size_t kill_after = 1; kill_after <= 3; ++kill_after) {
    std::filesystem::remove_all(run_dir);
    ExplorerOptions killed = options;
    killed.run_dir = run_dir;
    killed.round_hook = [kill_after](std::size_t completed) {
      if (completed >= kill_after) throw Killed{};
    };
    EXPECT_THROW(run_explorer(space, *trace_, killed), Killed);

    ExplorerOptions resumed = options;
    resumed.run_dir = run_dir;
    resumed.resume = true;
    const ExplorerResult result = run_explorer(space, *trace_, resumed);
    expect_same_result(result, uninterrupted);
  }
  std::filesystem::remove_all(run_dir);
}

TEST_F(ExplorerTest, ResumeRefusesForeignJournal) {
  const std::string run_dir =
      (std::filesystem::temp_directory_path() / "gmd_explorer_identity_test")
          .string();
  std::filesystem::remove_all(run_dir);
  ExplorerOptions options = small_options();
  options.run_dir = run_dir;
  run_explorer(LazySpace::reduced(), *trace_, options);

  // Same run dir, different space: the rounds journal identity check
  // must refuse rather than mix trajectories.
  options.resume = true;
  EXPECT_THROW(run_explorer(LazySpace::paper(), *trace_, options), Error);

  // Different options hash likewise.
  ExplorerOptions changed = options;
  changed.seed = 99;
  EXPECT_THROW(run_explorer(LazySpace::reduced(), *trace_, changed), Error);
  std::filesystem::remove_all(run_dir);
}

TEST_F(ExplorerTest, SurrogateAgreesWithExhaustive416Sweep) {
  const LazySpace space = LazySpace::paper();
  ExplorerOptions options;
  options.initial_samples = 32;
  options.batch_size = 16;
  options.max_rounds = 8;
  options.simulation_budget = 128;  // < 1/3 of the exhaustive sweep
  options.top_k = 10;
  const ExplorerResult result = run_explorer(space, *trace_, options);
  EXPECT_LE(result.labeled.size(), 128u);

  const std::vector<SweepRow> rows =
      run_sweep(space.materialize(), *trace_, {});
  const std::vector<std::size_t> truth =
      exhaustive_topk(rows, options.metric, 10);
  std::vector<std::size_t> picks;
  for (const ScoredPoint& p : result.top) picks.push_back(p.index);
  EXPECT_GE(topk_agreement(picks, truth), 0.9)
      << "explorer found " << topk_agreement(picks, truth) * 10
      << " of the true top-10 with " << result.labeled.size()
      << " simulations";
}

TEST(ExplorerHelpers, ExhaustiveTopkAndAgreement) {
  EXPECT_EQ(topk_agreement(std::vector<std::size_t>{}, {}), 1.0);
  const std::vector<std::size_t> truth = {1, 2, 3, 4};
  const std::vector<std::size_t> picks = {4, 9, 1, 7};
  EXPECT_DOUBLE_EQ(topk_agreement(picks, truth), 0.5);
}

TEST(ExplorerOptionsValidation, RejectsBadInputs) {
  const LazySpace space = LazySpace::reduced();
  const std::vector<cpusim::MemoryEvent> trace = make_trace(64);
  ExplorerOptions options;
  options.initial_samples = 1;
  EXPECT_THROW(run_explorer(space, trace, options), Error);
  options = {};
  options.simulation_budget = 4;  // below initial_samples
  EXPECT_THROW(run_explorer(space, trace, options), Error);
  options = {};
  options.model = "svm";
  EXPECT_THROW(run_explorer(space, trace, options), Error);
  EXPECT_THROW(parse_acquisition("nope"), Error);
  EXPECT_EQ(parse_acquisition("ei"), Acquisition::kExpectedImprovement);
  EXPECT_EQ(to_string(Acquisition::kMaxVariance), "variance");
}

}  // namespace
}  // namespace gmd::dse
