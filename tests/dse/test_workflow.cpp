#include "gmd/dse/workflow.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "gmd/dse/config_space.hpp"
#include "gmd/graph/bfs.hpp"

namespace gmd::dse {
namespace {

WorkflowConfig small_config() {
  WorkflowConfig config;
  config.graph_vertices = 128;
  config.edge_factor = 8;
  // A small grid keeps the integration test fast.
  GridAxes axes;
  axes.kinds = {MemoryKind::kDram, MemoryKind::kNvm, MemoryKind::kHybrid};
  axes.cpu_freqs_mhz = {2000, 6500};
  axes.ctrl_freqs_mhz = {400, 1600};
  axes.channel_counts = {2, 4};
  axes.trcds = {20, 80};
  config.design_points = enumerate_grid(axes);
  return config;
}

TEST(Workflow, EndToEndProducesAllStages) {
  const WorkflowResult result = run_workflow(small_config());
  EXPECT_GT(result.graph.num_vertices(), 0u);
  EXPECT_FALSE(result.trace.empty());
  EXPECT_EQ(result.sweep.size(), small_config().design_points.size());
  EXPECT_FALSE(result.surrogates.scores().empty());
  EXPECT_EQ(result.recommendations.size(), target_metric_names().size());
}

TEST(Workflow, ChecksumMatchesDirectBfs) {
  WorkflowConfig config = small_config();
  graph::CsrGraph g;
  std::uint64_t checksum = 0;
  const auto trace = generate_workload_trace(config, &g, &checksum);
  EXPECT_FALSE(trace.empty());
  // The workload's visited count must be a real BFS visited count.
  EXPECT_GT(checksum, 0u);
  EXPECT_LE(checksum, g.num_vertices());
}

TEST(Workflow, DeterministicForFixedSeed) {
  const WorkflowConfig config = small_config();
  const auto a = generate_workload_trace(config);
  const auto b = generate_workload_trace(config);
  EXPECT_EQ(a, b);
  WorkflowConfig other = config;
  other.seed = 99;
  const auto c = generate_workload_trace(other);
  EXPECT_NE(a, c);
}

TEST(Workflow, TraceRoundTripThroughFilesPreservesSweepInputs) {
  WorkflowConfig config = small_config();
  const auto tmp = std::filesystem::temp_directory_path() / "gmd_wf_trace";
  std::filesystem::create_directories(tmp);
  config.trace_dir = tmp.string();
  const WorkflowResult via_files = run_workflow(config);

  WorkflowConfig in_memory = small_config();
  const WorkflowResult direct = run_workflow(in_memory);

  // NVMain format drops sizes (fixed 64B words) but keeps tick,
  // address, and kind; reads/writes totals must agree.
  ASSERT_EQ(via_files.sweep.size(), direct.sweep.size());
  EXPECT_EQ(via_files.sweep[0].metrics.total_writes,
            direct.sweep[0].metrics.total_writes);
  EXPECT_TRUE(std::filesystem::exists(tmp / "gem5_trace.txt"));
  EXPECT_TRUE(std::filesystem::exists(tmp / "nvmain_trace.txt"));
}

TEST(Workflow, AlternativeWorkloadsRun) {
  for (const std::string workload : {"pagerank", "cc", "sssp"}) {
    WorkflowConfig config = small_config();
    config.workload = workload;
    config.graph_vertices = 64;
    const auto trace = generate_workload_trace(config);
    EXPECT_FALSE(trace.empty()) << workload;
  }
}

TEST(Workflow, ReportContainsAllSections) {
  const WorkflowResult result = run_workflow(small_config());
  const std::string report = result.report();
  EXPECT_NE(report.find("workflow report"), std::string::npos);
  EXPECT_NE(report.find("TABLE I"), std::string::npos);
  EXPECT_NE(report.find("recommendations"), std::string::npos);
}

}  // namespace
}  // namespace gmd::dse
