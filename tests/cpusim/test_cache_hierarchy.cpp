#include "gmd/cpusim/cache_hierarchy.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "gmd/common/error.hpp"
#include "gmd/cpusim/atomic_cpu.hpp"

namespace gmd::cpusim {
namespace {

CacheHierarchyConfig small_hierarchy() {
  CacheHierarchyConfig config;
  config.l1 = CacheConfig{512, 64, 2};   // 4 sets
  config.l2 = CacheConfig{2048, 64, 4};  // 8 sets
  return config;
}

TEST(CacheHierarchy, ColdMissFillsFromMemory) {
  CacheHierarchy hierarchy(small_hierarchy());
  const HierarchyTraffic t = hierarchy.access(0x1000, false);
  EXPECT_FALSE(t.l1_hit);
  EXPECT_FALSE(t.l2_hit);
  ASSERT_EQ(t.fills.size(), 1u);
  EXPECT_EQ(t.fills[0], 0x1000u);
  EXPECT_TRUE(t.writebacks.empty());
}

TEST(CacheHierarchy, L1HitProducesNoTraffic) {
  CacheHierarchy hierarchy(small_hierarchy());
  (void)hierarchy.access(0x1000, false);
  const HierarchyTraffic t = hierarchy.access(0x1008, false);
  EXPECT_TRUE(t.l1_hit);
  EXPECT_TRUE(t.fills.empty());
  EXPECT_TRUE(t.writebacks.empty());
}

TEST(CacheHierarchy, L2CatchesL1Evictions) {
  CacheHierarchy hierarchy(small_hierarchy());
  // L1: 4 sets x 64B -> lines 0x000, 0x100, 0x200 map to set 0.
  (void)hierarchy.access(0x000, false);
  (void)hierarchy.access(0x100, false);
  const HierarchyTraffic evict = hierarchy.access(0x200, false);
  EXPECT_FALSE(evict.l1_hit);
  // L2 is cold for 0x200 -> one memory fill, no write-back (clean L1
  // victim).
  EXPECT_EQ(evict.fills.size(), 1u);
  // Re-access the evicted 0x000: L1 misses but L2 still holds it.
  const HierarchyTraffic again = hierarchy.access(0x000, false);
  EXPECT_FALSE(again.l1_hit);
  EXPECT_TRUE(again.l2_hit);
  EXPECT_TRUE(again.fills.empty());
}

TEST(CacheHierarchy, DirtyL1VictimSpillsIntoL2NotMemory) {
  CacheHierarchy hierarchy(small_hierarchy());
  (void)hierarchy.access(0x000, true);  // dirty in L1
  (void)hierarchy.access(0x100, false);
  const HierarchyTraffic evict = hierarchy.access(0x200, false);
  // The dirty L1 victim is absorbed by L2: no memory write-back yet.
  EXPECT_TRUE(evict.writebacks.empty());
}

TEST(CacheHierarchy, FlushWritesDirtyLinesOnce) {
  CacheHierarchy hierarchy(small_hierarchy());
  (void)hierarchy.access(0x000, true);
  (void)hierarchy.access(0x400, true);
  (void)hierarchy.access(0x800, false);  // clean
  auto lines = hierarchy.flush();
  std::sort(lines.begin(), lines.end());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], 0x000u);
  EXPECT_EQ(lines[1], 0x400u);
}

TEST(CacheHierarchy, RejectsMismatchedGeometry) {
  CacheHierarchyConfig config = small_hierarchy();
  config.l2.line_bytes = 128;
  EXPECT_THROW(CacheHierarchy{config}, Error);
  config = small_hierarchy();
  config.l2.size_bytes = 256;  // smaller than L1
  EXPECT_THROW(CacheHierarchy{config}, Error);
}

TEST(AtomicCpuHierarchy, FiltersMoreThanSingleLevel) {
  // A working set that fits L2 but not L1: the hierarchy emits fewer
  // memory events than a single L1-sized cache.
  const auto run = [](CpuModel model) {
    VectorSink sink;
    AtomicCpu cpu(model, &sink);
    for (int pass = 0; pass < 4; ++pass) {
      for (std::uint64_t addr = 0; addr < 1024; addr += 64) {
        cpu.load(addr, 8);
      }
    }
    cpu.flush_cache();
    return sink.events().size();
  };

  CpuModel single;
  single.cache = CacheConfig{512, 64, 2};
  CpuModel two_level;
  two_level.cache_hierarchy = small_hierarchy();

  EXPECT_LT(run(two_level), run(single));
}

TEST(AtomicCpuHierarchy, HierarchyTakesPrecedenceOverSingleCache) {
  CpuModel model;
  model.cache = CacheConfig{512, 64, 2};
  model.cache_hierarchy = small_hierarchy();
  AtomicCpu cpu(model);
  EXPECT_NE(cpu.hierarchy(), nullptr);
  EXPECT_EQ(cpu.cache(), nullptr);
}

}  // namespace
}  // namespace gmd::cpusim
