#include "gmd/cpusim/workloads.hpp"

#include <gtest/gtest.h>

#include <string>

#include "gmd/common/error.hpp"
#include "gmd/graph/algorithms.hpp"
#include "gmd/graph/bfs.hpp"
#include "gmd/graph/generators.hpp"

namespace gmd::cpusim {
namespace {

graph::CsrGraph paper_graph(std::uint64_t seed = 1) {
  graph::UniformRandomParams p;
  p.num_vertices = 256;  // scaled-down paper graph for fast tests
  p.edge_factor = 16;
  p.seed = seed;
  graph::EdgeList list = graph::generate_uniform_random(p);
  graph::symmetrize(list);
  graph::remove_self_loops_and_duplicates(list);
  return graph::CsrGraph::from_edge_list(list);
}

TEST(BfsWorkload, VisitsSameVerticesAsReferenceBfs) {
  const auto g = paper_graph();
  const auto reference = graph::bfs_top_down(g, 7);
  VectorSink sink;
  AtomicCpu cpu(CpuModel{}, &sink);
  const BfsWorkload workload(g, 7);
  const WorkloadResult result = workload.run(cpu);
  EXPECT_EQ(result.kernel_output, reference.vertices_visited);
  EXPECT_FALSE(sink.events().empty());
}

TEST(BfsWorkload, TraceTouchesAllCsrRegions) {
  const auto g = paper_graph();
  VectorSink sink;
  AtomicCpu cpu(CpuModel{}, &sink);
  BfsWorkload(g, 0).run(cpu);
  // The trace must include reads of offsets, neighbors, and parent
  // arrays: check coverage by address diversity.
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (const auto& e : sink.events()) {
    lo = std::min(lo, e.address);
    hi = std::max(hi, e.address);
  }
  // CSR offsets (257*8) + neighbors (~8K*4) + 3 vertex arrays: the
  // span must cover at least the neighbor array size.
  EXPECT_GT(hi - lo, g.num_edges() * sizeof(graph::VertexId));
}

TEST(BfsWorkload, ReadsDominateWrites) {
  const auto g = paper_graph();
  VectorSink sink;
  AtomicCpu cpu(CpuModel{}, &sink);
  BfsWorkload(g, 0).run(cpu);
  std::size_t reads = 0, writes = 0;
  for (const auto& e : sink.events()) (e.is_write ? writes : reads)++;
  EXPECT_GT(reads, writes);  // BFS is read-dominated (graph structure)
  EXPECT_GT(writes, 0u);
}

TEST(BfsWorkload, DeterministicTrace) {
  const auto g = paper_graph();
  VectorSink s1, s2;
  AtomicCpu c1(CpuModel{}, &s1), c2(CpuModel{}, &s2);
  BfsWorkload(g, 3).run(c1);
  BfsWorkload(g, 3).run(c2);
  EXPECT_EQ(s1.events(), s2.events());
}

TEST(BfsWorkload, RejectsBadSource) {
  const auto g = paper_graph();
  EXPECT_THROW(BfsWorkload(g, 100000), Error);
}

TEST(BfsWorkload, CacheReducesTraceSize) {
  const auto g = paper_graph();
  VectorSink uncached_sink, cached_sink;
  AtomicCpu uncached(CpuModel{}, &uncached_sink);
  CpuModel with_cache;
  with_cache.cache = CacheConfig{32 * 1024, 64, 4};
  AtomicCpu cached(with_cache, &cached_sink);
  BfsWorkload(g, 0).run(uncached);
  BfsWorkload(g, 0).run(cached);
  EXPECT_LT(cached_sink.events().size(), uncached_sink.events().size() / 2);
}

TEST(PageRankWorkload, RunsAndProducesChecksum) {
  const auto g = paper_graph();
  VectorSink sink;
  AtomicCpu cpu(CpuModel{}, &sink);
  const WorkloadResult result = PageRankWorkload(g, 3).run(cpu);
  // Scores sum to ~1, checksum is sum * 1e6.
  EXPECT_NEAR(static_cast<double>(result.kernel_output), 1e6, 1e4);
  EXPECT_FALSE(sink.events().empty());
}

TEST(PageRankWorkload, TraceScalesWithIterations) {
  const auto g = paper_graph();
  VectorSink s1, s5;
  AtomicCpu c1(CpuModel{}, &s1), c5(CpuModel{}, &s5);
  PageRankWorkload(g, 1).run(c1);
  PageRankWorkload(g, 5).run(c5);
  EXPECT_GT(s5.events().size(), 4 * s1.events().size());
}

TEST(ConnectedComponentsWorkload, CountsComponents) {
  graph::EdgeList list;
  list.num_vertices = 6;
  list.edges = {{0, 1}, {1, 2}, {3, 4}};
  graph::symmetrize(list);
  const auto g = graph::CsrGraph::from_edge_list(list);
  AtomicCpu cpu(CpuModel{});
  const WorkloadResult result = ConnectedComponentsWorkload(g).run(cpu);
  EXPECT_EQ(result.kernel_output, 3u);
}

TEST(SsspWorkload, ReachesAllInConnectedGraph) {
  const auto g = paper_graph();
  AtomicCpu cpu(CpuModel{});
  const WorkloadResult result = SsspWorkload(g, 0).run(cpu);
  EXPECT_EQ(result.kernel_output, g.num_vertices());
}

TEST(SsspWorkload, RespectsDisconnection) {
  graph::EdgeList list;
  list.num_vertices = 4;
  list.edges = {{0, 1}};
  graph::symmetrize(list);
  const auto g = graph::CsrGraph::from_edge_list(list);
  AtomicCpu cpu(CpuModel{});
  const WorkloadResult result = SsspWorkload(g, 0).run(cpu);
  EXPECT_EQ(result.kernel_output, 2u);
}

TEST(DirectionOptimizingBfsWorkload, MatchesReferenceVisitCount) {
  const auto g = paper_graph();
  const auto reference = graph::bfs_top_down(g, 11);
  cpusim::AtomicCpu cpu(CpuModel{});
  const WorkloadResult result =
      DirectionOptimizingBfsWorkload(g, 11).run(cpu);
  EXPECT_EQ(result.kernel_output, reference.vertices_visited);
}

TEST(DirectionOptimizingBfsWorkload, TraceDiffersFromTopDown) {
  // On a dense graph the bottom-up phases change the address stream.
  const auto g = paper_graph();
  VectorSink td_sink, dir_sink;
  AtomicCpu td_cpu(CpuModel{}, &td_sink), dir_cpu(CpuModel{}, &dir_sink);
  BfsWorkload(g, 0).run(td_cpu);
  DirectionOptimizingBfsWorkload(g, 0).run(dir_cpu);
  EXPECT_NE(td_sink.events().size(), dir_sink.events().size());
}

TEST(DirectionOptimizingBfsWorkload, HandlesDisconnectedGraphs) {
  graph::EdgeList list;
  list.num_vertices = 6;
  list.edges = {{0, 1}, {4, 5}};
  graph::symmetrize(list);
  const auto g = graph::CsrGraph::from_edge_list(list);
  AtomicCpu cpu(CpuModel{});
  const WorkloadResult result =
      DirectionOptimizingBfsWorkload(g, 0).run(cpu);
  EXPECT_EQ(result.kernel_output, 2u);
}

TEST(TriangleCountWorkload, MatchesReferenceCount) {
  const auto g = paper_graph();
  const std::uint64_t reference = graph::count_triangles(g);
  AtomicCpu cpu(CpuModel{});
  const WorkloadResult result = TriangleCountWorkload(g).run(cpu);
  EXPECT_EQ(result.kernel_output, reference);
  EXPECT_GT(reference, 0u);  // dense random graph has triangles
}

TEST(WorkloadFactory, CreatesAllKnownWorkloads) {
  const auto g = paper_graph();
  for (const std::string name :
       {"bfs", "dobfs", "pagerank", "cc", "sssp", "triangles"}) {
    const auto workload = make_workload(name, g, 1);
    ASSERT_NE(workload, nullptr) << name;
    EXPECT_EQ(workload->name(), name);
  }
  EXPECT_EQ(make_workload("BFS", g, 0)->name(), "bfs");  // case-insensitive
}

TEST(WorkloadFactory, UnknownNameThrows) {
  const auto g = paper_graph();
  EXPECT_THROW(make_workload("quicksort", g), Error);
}

TEST(Workloads, DifferentKernelsProduceDifferentTraces) {
  const auto g = paper_graph();
  VectorSink bfs_sink, pr_sink;
  AtomicCpu bfs_cpu(CpuModel{}, &bfs_sink), pr_cpu(CpuModel{}, &pr_sink);
  BfsWorkload(g, 0).run(bfs_cpu);
  PageRankWorkload(g, 10).run(pr_cpu);
  EXPECT_NE(bfs_sink.events().size(), pr_sink.events().size());
}

TEST(Workloads, ResultReportsFootprint) {
  const auto g = paper_graph();
  AtomicCpu cpu(CpuModel{});
  const WorkloadResult result = BfsWorkload(g, 0).run(cpu);
  // At least the CSR arrays must have been allocated.
  EXPECT_GT(result.sim_bytes,
            g.num_edges() * sizeof(graph::VertexId) +
                (g.num_vertices() + 1) * sizeof(std::uint64_t));
  EXPECT_GT(result.cpu.ticks, 0u);
}

}  // namespace
}  // namespace gmd::cpusim
