#include "gmd/cpusim/address_space.hpp"

#include <gtest/gtest.h>

#include "gmd/common/error.hpp"

namespace gmd::cpusim {
namespace {

TEST(AddressSpace, AllocationsAreDisjointAndAligned) {
  AtomicCpu cpu(CpuModel{});
  AddressSpace space(0x1000'0000, 64);
  auto a = space.allocate<std::uint32_t>(cpu, 10, "a");  // 40 bytes
  auto b = space.allocate<std::uint64_t>(cpu, 5, "b");   // 40 bytes
  EXPECT_EQ(a.base_address(), 0x1000'0000u);
  EXPECT_EQ(a.base_address() % 64, 0u);
  EXPECT_EQ(b.base_address() % 64, 0u);
  EXPECT_GE(b.base_address(), a.base_address() + 10 * sizeof(std::uint32_t));
  ASSERT_EQ(space.allocations().size(), 2u);
  EXPECT_EQ(space.allocations()[0].name, "a");
  EXPECT_EQ(space.allocations()[1].bytes, 40u);
}

TEST(AddressSpace, BytesAllocatedTracksUsage) {
  AtomicCpu cpu(CpuModel{});
  AddressSpace space(0, 64);
  EXPECT_EQ(space.bytes_allocated(), 0u);
  (void)space.allocate<char>(cpu, 100);
  EXPECT_EQ(space.bytes_allocated(), 128u);  // rounded to alignment
}

TEST(SimArray, AddressOfIsElementStride) {
  AtomicCpu cpu(CpuModel{});
  AddressSpace space(0x100, 64);
  auto arr = space.allocate<std::uint64_t>(cpu, 4);
  EXPECT_EQ(arr.address_of(0), 0x100u);
  EXPECT_EQ(arr.address_of(3), 0x100u + 3 * 8);
}

TEST(SimArray, LoadStoreRoundTripAndTraffic) {
  VectorSink sink;
  AtomicCpu cpu(CpuModel{}, &sink);
  AddressSpace space(0x200, 64);
  auto arr = space.allocate<int>(cpu, 8);
  arr.store(2, 42);
  EXPECT_EQ(arr.load(2), 42);
  ASSERT_EQ(sink.events().size(), 2u);
  EXPECT_TRUE(sink.events()[0].is_write);
  EXPECT_EQ(sink.events()[0].address, 0x200u + 2 * sizeof(int));
  EXPECT_EQ(sink.events()[0].size, sizeof(int));
  EXPECT_FALSE(sink.events()[1].is_write);
}

TEST(SimArray, SilentOperationsEmitNoTraffic) {
  VectorSink sink;
  AtomicCpu cpu(CpuModel{}, &sink);
  AddressSpace space;
  auto arr = space.allocate<double>(cpu, 16);
  arr.fill_silent(1.5);
  arr.assign_silent(std::vector<double>(16, 2.5));
  EXPECT_TRUE(sink.events().empty());
  EXPECT_DOUBLE_EQ(arr.peek(7), 2.5);
}

TEST(SimArray, AssignSilentSizeMismatchThrows) {
  AtomicCpu cpu(CpuModel{});
  AddressSpace space;
  auto arr = space.allocate<int>(cpu, 4);
  EXPECT_THROW(arr.assign_silent({1, 2}), Error);
}

TEST(SimArray, OutOfRangeAccessThrows) {
  AtomicCpu cpu(CpuModel{});
  AddressSpace space;
  auto arr = space.allocate<int>(cpu, 2);
  EXPECT_THROW((void)arr.load(2), Error);
  EXPECT_THROW(arr.store(5, 1), Error);
  EXPECT_THROW((void)arr.peek(2), Error);
}

}  // namespace
}  // namespace gmd::cpusim
