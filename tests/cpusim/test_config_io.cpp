#include "gmd/cpusim/config_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "gmd/common/error.hpp"

namespace gmd::cpusim {
namespace {

TEST(CpuConfigIo, RoundTripsPlainModel) {
  CpuModel model;
  model.freq_mhz = 5000;
  model.compute_op_ticks = 2;
  model.memory_op_ticks = 25;
  std::stringstream ss;
  write_cpu_config(ss, model);
  const CpuModel back = read_cpu_config(ss);
  EXPECT_EQ(back.freq_mhz, 5000u);
  EXPECT_EQ(back.compute_op_ticks, 2u);
  EXPECT_EQ(back.memory_op_ticks, 25u);
  EXPECT_FALSE(back.cache.has_value());
  EXPECT_FALSE(back.cache_hierarchy.has_value());
}

TEST(CpuConfigIo, RoundTripsSingleLevelCache) {
  CpuModel model;
  model.cache = CacheConfig{64 * 1024, 64, 8};
  std::stringstream ss;
  write_cpu_config(ss, model);
  const CpuModel back = read_cpu_config(ss);
  ASSERT_TRUE(back.cache.has_value());
  EXPECT_EQ(back.cache->size_bytes, 64u * 1024);
  EXPECT_EQ(back.cache->associativity, 8u);
  EXPECT_FALSE(back.cache_hierarchy.has_value());
}

TEST(CpuConfigIo, RoundTripsHierarchy) {
  CpuModel model;
  model.cache_hierarchy = CacheHierarchyConfig{};
  std::stringstream ss;
  write_cpu_config(ss, model);
  const CpuModel back = read_cpu_config(ss);
  ASSERT_TRUE(back.cache_hierarchy.has_value());
  EXPECT_EQ(back.cache_hierarchy->l1.size_bytes,
            model.cache_hierarchy->l1.size_bytes);
  EXPECT_EQ(back.cache_hierarchy->l2.size_bytes,
            model.cache_hierarchy->l2.size_bytes);
}

TEST(CpuConfigIo, ParsesHandWrittenFile) {
  std::istringstream in(
      "# my gem5-ish system\n"
      "CPUFreqMHz 6500\n"
      "MemoryOpTicks 12 ; near-saturation\n"
      "L1Size 32768\n"
      "L1Line 64\n"
      "L1Assoc 4\n");
  const CpuModel model = read_cpu_config(in);
  EXPECT_EQ(model.freq_mhz, 6500u);
  EXPECT_EQ(model.memory_op_ticks, 12u);
  ASSERT_TRUE(model.cache.has_value());
  EXPECT_EQ(model.cache->size_bytes, 32768u);
}

TEST(CpuConfigIo, CacheEnableFalseStripsCaches) {
  std::istringstream in(
      "L1Size 32768\nL1Line 64\nL1Assoc 4\nCacheEnable false\n");
  const CpuModel model = read_cpu_config(in);
  EXPECT_FALSE(model.cache.has_value());
  EXPECT_FALSE(model.cache_hierarchy.has_value());
}

TEST(CpuConfigIo, RejectsMalformedInput) {
  std::istringstream unknown("Banana 3\n");
  EXPECT_THROW(read_cpu_config(unknown), Error);
  std::istringstream l2_only("L2Size 262144\nL2Line 64\nL2Assoc 8\n");
  EXPECT_THROW(read_cpu_config(l2_only), Error);
  std::istringstream bad_value("CPUFreqMHz fast\n");
  EXPECT_THROW(read_cpu_config(bad_value), Error);
  std::istringstream invalid_model("ComputeOpTicks 0\n");
  EXPECT_THROW(read_cpu_config(invalid_model), Error);
  std::istringstream bad_cache("L1Size 1000\nL1Line 48\nL1Assoc 3\n");
  EXPECT_THROW(read_cpu_config(bad_cache), Error);
}

TEST(CpuConfigIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/gmd_cpu_test.cfg";
  CpuModel model;
  model.freq_mhz = 3000;
  save_cpu_config(path, model);
  EXPECT_EQ(load_cpu_config(path).freq_mhz, 3000u);
  EXPECT_THROW(load_cpu_config("/nonexistent/cpu.cfg"), Error);
}

}  // namespace
}  // namespace gmd::cpusim
