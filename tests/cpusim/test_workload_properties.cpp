/// Property-style invariants of the workload trace generator, swept
/// across kernels and graph seeds: traces must be deterministic,
/// tick-monotone, and confined to the simulated address space.

#include <gtest/gtest.h>

#include <tuple>

#include "gmd/cpusim/workloads.hpp"
#include "gmd/graph/generators.hpp"

namespace gmd::cpusim {
namespace {

using ParamTuple = std::tuple<const char*, std::uint64_t>;

class WorkloadTraceProperty : public testing::TestWithParam<ParamTuple> {
 protected:
  static graph::CsrGraph make_graph(std::uint64_t seed) {
    graph::UniformRandomParams params;
    params.num_vertices = 128;
    params.edge_factor = 8;
    params.seed = seed;
    graph::EdgeList list = graph::generate_uniform_random(params);
    graph::symmetrize(list);
    graph::remove_self_loops_and_duplicates(list);
    return graph::CsrGraph::from_edge_list(list);
  }

  std::vector<MemoryEvent> run_trace(const graph::CsrGraph& g) const {
    const auto [workload, seed] = GetParam();
    (void)seed;
    VectorSink sink;
    AtomicCpu cpu(CpuModel{}, &sink);
    make_workload(workload, g, 0)->run(cpu);
    return sink.take();
  }
};

TEST_P(WorkloadTraceProperty, TicksAreStrictlyMonotone) {
  const auto g = make_graph(std::get<1>(GetParam()));
  const auto trace = run_trace(g);
  ASSERT_FALSE(trace.empty());
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].tick, trace[i - 1].tick) << "event " << i;
  }
}

TEST_P(WorkloadTraceProperty, AddressesWithinSimulatedSpace) {
  const auto g = make_graph(std::get<1>(GetParam()));
  const auto trace = run_trace(g);
  // The bump allocator starts at 0x1000'0000; a 128-vertex workload
  // fits comfortably below 0x1100'0000.
  for (const auto& event : trace) {
    EXPECT_GE(event.address, 0x1000'0000u);
    EXPECT_LT(event.address + event.size, 0x1100'0000u);
    EXPECT_GT(event.size, 0u);
    EXPECT_LE(event.size, 8u);  // element-sized accesses, no cache
  }
}

TEST_P(WorkloadTraceProperty, DeterministicPerGraph) {
  const auto g = make_graph(std::get<1>(GetParam()));
  EXPECT_EQ(run_trace(g), run_trace(g));
}

TEST_P(WorkloadTraceProperty, StatsMatchTrace) {
  const auto g = make_graph(std::get<1>(GetParam()));
  const auto [workload, seed] = GetParam();
  (void)seed;
  VectorSink sink;
  AtomicCpu cpu(CpuModel{}, &sink);
  make_workload(workload, g, 0)->run(cpu);
  EXPECT_EQ(cpu.stats().memory_events, sink.events().size());
  EXPECT_EQ(cpu.stats().loads + cpu.stats().stores, sink.events().size());
  EXPECT_GE(cpu.stats().ticks, sink.events().size());  // each costs >= 1
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndSeeds, WorkloadTraceProperty,
    testing::Combine(testing::Values("bfs", "dobfs", "pagerank", "cc",
                                     "sssp", "triangles"),
                     testing::Values(1ull, 7ull, 42ull)),
    [](const testing::TestParamInfo<ParamTuple>& info) {
      return std::string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace gmd::cpusim
