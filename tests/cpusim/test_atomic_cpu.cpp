#include "gmd/cpusim/atomic_cpu.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "gmd/common/deadline.hpp"
#include "gmd/common/error.hpp"

namespace gmd::cpusim {
namespace {

TEST(AtomicCpu, ComputeAdvancesTicks) {
  AtomicCpu cpu(CpuModel{});
  cpu.compute(5);
  EXPECT_EQ(cpu.ticks(), 5u);
  EXPECT_EQ(cpu.stats().compute_ops, 5u);
}

TEST(AtomicCpu, CustomComputeCost) {
  CpuModel model;
  model.compute_op_ticks = 3;
  AtomicCpu cpu(model);
  cpu.compute(4);
  EXPECT_EQ(cpu.ticks(), 12u);
}

TEST(AtomicCpu, LoadStoreEmitEventsWithoutCache) {
  VectorSink sink;
  AtomicCpu cpu(CpuModel{}, &sink);
  cpu.load(0x1000, 8);
  cpu.store(0x2000, 4);
  ASSERT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.events()[0].address, 0x1000u);
  EXPECT_EQ(sink.events()[0].size, 8u);
  EXPECT_FALSE(sink.events()[0].is_write);
  EXPECT_EQ(sink.events()[1].address, 0x2000u);
  EXPECT_TRUE(sink.events()[1].is_write);
  EXPECT_EQ(cpu.stats().loads, 1u);
  EXPECT_EQ(cpu.stats().stores, 1u);
  EXPECT_EQ(cpu.stats().memory_events, 2u);
}

TEST(AtomicCpu, EventTicksAreMonotone) {
  VectorSink sink;
  AtomicCpu cpu(CpuModel{}, &sink);
  for (int i = 0; i < 10; ++i) {
    cpu.load(static_cast<std::uint64_t>(i) * 64, 8);
    cpu.compute(2);
  }
  for (std::size_t i = 1; i < sink.events().size(); ++i)
    EXPECT_GT(sink.events()[i].tick, sink.events()[i - 1].tick);
}

TEST(AtomicCpu, MemoryOpCostApplied) {
  CpuModel model;
  model.memory_op_ticks = 7;
  AtomicCpu cpu(model);
  cpu.load(0, 8);
  EXPECT_EQ(cpu.ticks(), 7u);
}

TEST(AtomicCpu, NullSinkStillCounts) {
  AtomicCpu cpu(CpuModel{}, nullptr);
  cpu.load(0x10, 8);
  EXPECT_EQ(cpu.stats().memory_events, 1u);
}

TEST(AtomicCpu, CacheFiltersRepeatAccesses) {
  CpuModel model;
  model.cache = CacheConfig{1024, 64, 2};
  VectorSink sink;
  AtomicCpu cpu(model, &sink);
  for (int i = 0; i < 8; ++i) cpu.load(0x1000, 8);
  // One fill, seven hits.
  ASSERT_EQ(sink.events().size(), 1u);
  EXPECT_EQ(sink.events()[0].size, 64u);
  EXPECT_FALSE(sink.events()[0].is_write);
  EXPECT_EQ(cpu.stats().loads, 8u);
}

TEST(AtomicCpu, CacheWritebackReachesSink) {
  CpuModel model;
  model.cache = CacheConfig{1024, 64, 2};
  VectorSink sink;
  AtomicCpu cpu(model, &sink);
  cpu.store(0x0000, 8);  // dirty set 0
  cpu.load(0x0200, 8);   // same set
  cpu.load(0x0400, 8);   // evicts dirty 0x0000
  bool saw_writeback = false;
  for (const auto& event : sink.events()) {
    if (event.is_write && event.address == 0x0000) saw_writeback = true;
  }
  EXPECT_TRUE(saw_writeback);
}

TEST(AtomicCpu, FlushCacheEmitsDirtyLines) {
  CpuModel model;
  model.cache = CacheConfig{1024, 64, 2};
  VectorSink sink;
  AtomicCpu cpu(model, &sink);
  cpu.store(0x1000, 8);
  const auto before = sink.events().size();
  cpu.flush_cache();
  ASSERT_EQ(sink.events().size(), before + 1);
  EXPECT_TRUE(sink.events().back().is_write);
  EXPECT_EQ(sink.events().back().address, 0x1000u);
}

TEST(AtomicCpu, FlushWithoutCacheIsNoop) {
  VectorSink sink;
  AtomicCpu cpu(CpuModel{}, &sink);
  cpu.flush_cache();
  EXPECT_TRUE(sink.events().empty());
}

TEST(AtomicCpu, RejectsBadModel) {
  CpuModel model;
  model.compute_op_ticks = 0;
  EXPECT_THROW(AtomicCpu{model}, Error);
  CpuModel model2;
  model2.memory_op_ticks = 0;
  EXPECT_THROW(AtomicCpu{model2}, Error);
}

TEST(AtomicCpu, ZeroSizeAccessRejected) {
  AtomicCpu cpu(CpuModel{});
  EXPECT_THROW(cpu.load(0, 0), Error);
}

TEST(AtomicCpu, CancelledDeadlineStopsTheAccessPath) {
  AtomicCpu cpu(CpuModel{});
  Deadline cancelled;
  cancelled.cancel();
  cpu.set_deadline(&cancelled);
  try {
    cpu.load(0x1000, 8);
    FAIL() << "expected Error(kCancelled)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled) << e.what();
  }
}

TEST(AtomicCpu, ExpiredDeadlineStopsTheAccessPath) {
  AtomicCpu cpu(CpuModel{});
  Deadline expired(std::chrono::nanoseconds{0});
  cpu.set_deadline(&expired);
  // check() reads the clock on its very first poll, so an
  // already-expired budget fires on the first access.
  try {
    cpu.load(0x1000, 8);
    FAIL() << "expected Error(kTimeout)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTimeout) << e.what();
  }
}

TEST(AtomicCpu, NullDeadlineClearsCancellation) {
  AtomicCpu cpu(CpuModel{});
  Deadline cancelled;
  cancelled.cancel();
  cpu.set_deadline(&cancelled);
  cpu.set_deadline(nullptr);
  EXPECT_NO_THROW(cpu.load(0x1000, 8));
  EXPECT_EQ(cpu.stats().loads, 1u);
}

}  // namespace
}  // namespace gmd::cpusim
