#include "gmd/cpusim/cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "gmd/common/error.hpp"

namespace gmd::cpusim {
namespace {

CacheConfig small_cache() {
  CacheConfig c;
  c.size_bytes = 1024;
  c.line_bytes = 64;
  c.associativity = 2;
  return c;  // 8 sets
}

TEST(Cache, GeometryDerivedCorrectly) {
  const Cache cache(small_cache());
  EXPECT_EQ(cache.num_sets(), 8u);
}

TEST(Cache, RejectsBadGeometry) {
  CacheConfig c = small_cache();
  c.line_bytes = 48;  // not a power of two
  EXPECT_THROW(Cache{c}, Error);
  c = small_cache();
  c.associativity = 0;
  EXPECT_THROW(Cache{c}, Error);
  c = small_cache();
  c.size_bytes = 1000;  // not a multiple of line*assoc
  EXPECT_THROW(Cache{c}, Error);
}

TEST(Cache, FirstAccessMissesThenHits) {
  Cache cache(small_cache());
  const auto miss = cache.access(0x1000, false);
  EXPECT_FALSE(miss.hit);
  EXPECT_TRUE(miss.fill);
  EXPECT_EQ(miss.fill_address, 0x1000u);
  const auto hit = cache.access(0x1000, false);
  EXPECT_TRUE(hit.hit);
  EXPECT_FALSE(hit.fill);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, SameLineDifferentOffsetHits) {
  Cache cache(small_cache());
  (void)cache.access(0x1000, false);
  const auto result = cache.access(0x103F, false);  // last byte of line
  EXPECT_TRUE(result.hit);
  const auto next_line = cache.access(0x1040, false);
  EXPECT_FALSE(next_line.hit);
}

TEST(Cache, CleanEvictionHasNoWriteback) {
  Cache cache(small_cache());
  // Three lines mapping to set 0 (stride = sets * line = 512B) in a
  // 2-way set: third fill evicts the LRU clean line silently.
  (void)cache.access(0x0000, false);
  (void)cache.access(0x0200, false);
  const auto evict = cache.access(0x0400, false);
  EXPECT_FALSE(evict.hit);
  EXPECT_TRUE(evict.fill);
  EXPECT_FALSE(evict.writeback);
}

TEST(Cache, DirtyEvictionEmitsWriteback) {
  Cache cache(small_cache());
  (void)cache.access(0x0000, true);  // dirty line
  (void)cache.access(0x0200, false);
  const auto evict = cache.access(0x0400, false);
  EXPECT_TRUE(evict.writeback);
  EXPECT_EQ(evict.writeback_address, 0x0000u);
  EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(Cache, LruVictimSelection) {
  Cache cache(small_cache());
  (void)cache.access(0x0000, false);
  (void)cache.access(0x0200, false);
  (void)cache.access(0x0000, false);  // refresh line 0; 0x0200 is now LRU
  const auto evict = cache.access(0x0400, true);
  EXPECT_TRUE(evict.fill);
  // 0x0000 must still be resident.
  EXPECT_TRUE(cache.access(0x0000, false).hit);
  // 0x0200 was evicted.
  EXPECT_FALSE(cache.access(0x0200, false).hit);
}

TEST(Cache, WriteAllocatePolicy) {
  Cache cache(small_cache());
  const auto write_miss = cache.access(0x2000, true);
  EXPECT_TRUE(write_miss.fill);  // line fetched on write miss
  EXPECT_TRUE(cache.access(0x2000, false).hit);
}

TEST(Cache, FlushReturnsDirtyLinesOnly) {
  Cache cache(small_cache());
  (void)cache.access(0x0000, true);
  (void)cache.access(0x1000, false);
  (void)cache.access(0x2040, true);
  auto dirty = cache.flush();
  std::sort(dirty.begin(), dirty.end());
  ASSERT_EQ(dirty.size(), 2u);
  EXPECT_EQ(dirty[0], 0x0000u);
  EXPECT_EQ(dirty[1], 0x2040u);
  // After flush everything misses again.
  EXPECT_FALSE(cache.access(0x0000, false).hit);
}

TEST(Cache, HitRateHighForSequentialScan) {
  Cache cache(small_cache());
  // 8 sequential 8-byte reads per line: 1 miss + 7 hits.
  for (std::uint64_t addr = 0; addr < 1024; addr += 8)
    (void)cache.access(addr, false);
  EXPECT_EQ(cache.misses(), 16u);
  EXPECT_EQ(cache.hits(), 112u);
}

}  // namespace
}  // namespace gmd::cpusim
