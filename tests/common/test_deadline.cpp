#include "gmd/common/deadline.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "gmd/common/error.hpp"

namespace gmd {
namespace {

TEST(Deadline, DefaultTokenNeverFires) {
  Deadline deadline;
  EXPECT_FALSE(deadline.cancelled());
  EXPECT_FALSE(deadline.expired());
  for (int i = 0; i < 1000; ++i) deadline.check();
}

TEST(Deadline, CancelThrowsCancelledError) {
  Deadline deadline;
  deadline.cancel();
  EXPECT_TRUE(deadline.cancelled());
  try {
    deadline.check();
    FAIL() << "check() must throw after cancel()";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled);
  }
}

TEST(Deadline, ExpiredBudgetThrowsTimeoutError) {
  Deadline deadline(std::chrono::nanoseconds(0));
  EXPECT_TRUE(deadline.expired());
  try {
    deadline.check();
    FAIL() << "check() must throw once the budget elapsed";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTimeout);
  }
}

TEST(Deadline, GenerousBudgetDoesNotFire) {
  Deadline deadline(std::chrono::hours(1));
  EXPECT_FALSE(deadline.expired());
  for (int i = 0; i < 1000; ++i) deadline.check();
}

TEST(Deadline, ParentCancellationPropagates) {
  Deadline parent;
  Deadline child(std::chrono::hours(1), &parent);
  child.check();
  parent.cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_THROW(child.check(), Error);
}

TEST(Deadline, ParentExpiryPropagatesToChild) {
  // A stage-wide budget must fell work polling only a per-item token.
  Deadline parent(std::chrono::nanoseconds(0));
  Deadline child(std::chrono::hours(1), &parent);
  EXPECT_FALSE(child.expired());
  EXPECT_TRUE(child.expired_chain());
  try {
    child.check_now();
    FAIL() << "check_now() must see the parent's expired budget";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTimeout);
  }
}

TEST(Deadline, CheckNowThrowsTypedErrors) {
  Deadline fine(std::chrono::hours(1));
  fine.check_now();

  Deadline cancelled;
  cancelled.cancel();
  try {
    cancelled.check_now();
    FAIL() << "check_now() must throw after cancel()";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled);
  }

  Deadline expired(std::chrono::nanoseconds(0));
  try {
    expired.check_now();
    FAIL() << "check_now() must throw once the budget elapsed";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTimeout);
  }
}

TEST(Deadline, ClockReadIsAmortizedButEventuallySeen) {
  // The clock is only consulted every 256th check; an expiry between
  // polls must still be caught within one amortization window.
  Deadline deadline(std::chrono::milliseconds(1));
  auto poll_all = [&deadline] {
    for (int i = 0; i < 600; ++i) deadline.check();
  };
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(2);
  while (std::chrono::steady_clock::now() < until) {
  }
  EXPECT_THROW(poll_all(), Error);
}

}  // namespace
}  // namespace gmd
