#include "gmd/common/hash.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace gmd {
namespace {

TEST(Fnv1aHash, MatchesReferenceVectors) {
  // Published FNV-1a 64 test vectors.
  EXPECT_EQ(fnv1a_bytes("", 0), 0xCBF29CE484222325ULL);
  EXPECT_EQ(fnv1a_bytes("a", 1), 0xAF63DC4C8601EC8CULL);
  const std::string foobar = "foobar";
  EXPECT_EQ(fnv1a_bytes(foobar.data(), foobar.size()), 0x85944171F73967E8ULL);
}

TEST(Fnv1aHash, MixU64EqualsLittleEndianBytes) {
  const std::uint64_t value = 0x0123456789ABCDEFULL;
  Fnv1a via_mix;
  via_mix.mix(value);

  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xFFu);
  }
  EXPECT_EQ(via_mix.state, fnv1a_bytes(bytes, sizeof bytes));
}

TEST(Fnv1aHash, IncrementalEqualsOneShot) {
  const std::string data = "the quick brown fox";
  Fnv1a h;
  h.mix_bytes(data.data(), 4);
  h.mix_bytes(data.data() + 4, data.size() - 4);
  EXPECT_EQ(h.state, fnv1a_bytes(data.data(), data.size()));
}

TEST(Fnv1aHash, DoubleUsesBitPattern) {
  Fnv1a a;
  a.mix_double(1.5);
  Fnv1a b;
  b.mix(0x3FF8000000000000ULL);  // IEEE-754 bits of 1.5
  EXPECT_EQ(a.state, b.state);
}

}  // namespace
}  // namespace gmd
