#include "gmd/common/atomic_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "gmd/common/error.hpp"
#include "gmd/common/hash.hpp"

namespace gmd {
namespace {

namespace fs = std::filesystem;

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("gmd_atomic_file_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  static std::string slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  fs::path dir_;
};

TEST_F(AtomicFileTest, CommitPublishesContentAndRemovesTemp) {
  AtomicFileWriter writer(path("a.txt"));
  writer.stream() << "hello";
  EXPECT_FALSE(fs::exists(path("a.txt")));
  EXPECT_TRUE(fs::exists(writer.temp_path()));
  writer.commit();
  EXPECT_TRUE(writer.committed());
  EXPECT_EQ(slurp(path("a.txt")), "hello");
  EXPECT_FALSE(fs::exists(writer.temp_path()));
}

TEST_F(AtomicFileTest, DestructionWithoutCommitLeavesOldArtifact) {
  atomic_write_text(path("a.txt"), "old");
  {
    AtomicFileWriter writer(path("a.txt"));
    writer.stream() << "new-but-never-committed";
  }
  EXPECT_EQ(slurp(path("a.txt")), "old");
  EXPECT_FALSE(fs::exists(path("a.txt") + ".tmp"));
}

TEST_F(AtomicFileTest, AtomicWriteFileRoundTrips) {
  atomic_write_file(path("b.bin"),
                    [](std::ostream& os) { os << "x\0y" << 42; },
                    std::ios::binary);
  EXPECT_TRUE(fs::exists(path("b.bin")));
  EXPECT_FALSE(fs::exists(path("b.bin") + ".tmp"));
}

TEST_F(AtomicFileTest, Fnv1aFileMatchesInMemoryHash) {
  const std::string content = "the quick brown fox";
  atomic_write_text(path("c.txt"), content);
  EXPECT_EQ(fnv1a_file(path("c.txt")),
            fnv1a_bytes(content.data(), content.size()));
}

TEST_F(AtomicFileTest, Fnv1aFileThrowsOnMissingFile) {
  try {
    fnv1a_file(path("missing.txt"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
  }
}

TEST_F(AtomicFileTest, RemoveStaleTempFilesSweepsRecursively) {
  fs::create_directories(dir_ / "sub");
  atomic_write_text(path("keep.txt"), "keep");
  std::ofstream(path("dead.tmp")) << "torn";
  std::ofstream((dir_ / "sub" / "dead2.tmp").string()) << "torn";
  EXPECT_EQ(remove_stale_temp_files(dir_.string()), 2u);
  EXPECT_TRUE(fs::exists(path("keep.txt")));
  EXPECT_FALSE(fs::exists(path("dead.tmp")));
  EXPECT_EQ(remove_stale_temp_files(dir_.string()), 0u);
}

TEST_F(AtomicFileTest, RemoveStaleTempFilesMissingDirYieldsZero) {
  EXPECT_EQ(remove_stale_temp_files((dir_ / "nope").string()), 0u);
}

TEST_F(AtomicFileTest, CommitIsIdempotent) {
  AtomicFileWriter writer(path("d.txt"));
  writer.stream() << "once";
  writer.commit();
  writer.commit();
  EXPECT_EQ(slurp(path("d.txt")), "once");
}

TEST_F(AtomicFileTest, RenameClaimMovesFileExactlyOnce) {
  atomic_write_text(path("task"), "shard 7");
  EXPECT_TRUE(atomic_rename_claim(path("task"), path("lease")));
  EXPECT_FALSE(fs::exists(path("task")));
  EXPECT_EQ(slurp(path("lease")), "shard 7");
  // The second claimant of the same source loses quietly: rename
  // consumed the file, so ENOENT means "somebody else won".
  EXPECT_FALSE(atomic_rename_claim(path("task"), path("lease2")));
  EXPECT_FALSE(fs::exists(path("lease2")));
}

TEST_F(AtomicFileTest, RenameClaimThrowsOnUnreachableDestination) {
  atomic_write_text(path("task"), "x");
  try {
    atomic_rename_claim(path("task"), (dir_ / "no-dir" / "lease").string());
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
  }
}

TEST_F(AtomicFileTest, RemoveFileIfExists) {
  atomic_write_text(path("f.txt"), "x");
  EXPECT_TRUE(remove_file_if_exists(path("f.txt")));
  EXPECT_FALSE(fs::exists(path("f.txt")));
  EXPECT_FALSE(remove_file_if_exists(path("f.txt")));
}

TEST_F(AtomicFileTest, OverwriteReplacesWholeFile) {
  atomic_write_text(path("e.txt"), "a much longer original content line");
  atomic_write_text(path("e.txt"), "short");
  EXPECT_EQ(slurp(path("e.txt")), "short");
}

}  // namespace
}  // namespace gmd
