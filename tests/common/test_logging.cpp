#include "gmd/common/logging.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace gmd {
namespace {

class LoggingTest : public testing::Test {
 protected:
  void SetUp() override {
    log::set_level(log::Level::kDebug);
    log::set_sink([this](log::Level level, std::string_view msg) {
      lines_.emplace_back(log::level_name(level));
      lines_.back() += ": ";
      lines_.back() += msg;
    });
  }
  void TearDown() override {
    log::set_sink(nullptr);
    log::set_level(log::Level::kInfo);
  }
  std::vector<std::string> lines_;
};

TEST_F(LoggingTest, StreamedMessageReachesSink) {
  GMD_LOG_INFO << "sweep " << 3 << " done";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0], "INFO: sweep 3 done");
}

TEST_F(LoggingTest, LevelFilterDropsBelowThreshold) {
  log::set_level(log::Level::kWarn);
  GMD_LOG_DEBUG << "dropped";
  GMD_LOG_INFO << "dropped too";
  GMD_LOG_WARN << "kept";
  GMD_LOG_ERROR << "kept too";
  ASSERT_EQ(lines_.size(), 2u);
  EXPECT_EQ(lines_[0], "WARN: kept");
  EXPECT_EQ(lines_[1], "ERROR: kept too");
}

TEST_F(LoggingTest, OffSilencesEverything) {
  log::set_level(log::Level::kOff);
  GMD_LOG_ERROR << "nope";
  EXPECT_TRUE(lines_.empty());
}

TEST(Logging, LevelNames) {
  EXPECT_EQ(log::level_name(log::Level::kDebug), "DEBUG");
  EXPECT_EQ(log::level_name(log::Level::kInfo), "INFO");
  EXPECT_EQ(log::level_name(log::Level::kWarn), "WARN");
  EXPECT_EQ(log::level_name(log::Level::kError), "ERROR");
}

}  // namespace
}  // namespace gmd
