#include "gmd/common/work_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace gmd {
namespace {

using Queue = BoundedPriorityQueue<int>;

TEST(WorkQueue, FifoWithinOneLane) {
  Queue queue(8, 1);
  EXPECT_EQ(queue.try_push(0, 1), Queue::Push::kAccepted);
  EXPECT_EQ(queue.try_push(0, 2), Queue::Push::kAccepted);
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.pop().value(), 2);
}

TEST(WorkQueue, LowerLaneDrainsFirst) {
  Queue queue(8, 2);
  ASSERT_EQ(queue.try_push(1, 100), Queue::Push::kAccepted);  // bulk first...
  ASSERT_EQ(queue.try_push(1, 101), Queue::Push::kAccepted);
  ASSERT_EQ(queue.try_push(0, 1), Queue::Push::kAccepted);  // ...then interactive
  // The interactive item overtakes the earlier bulk items.
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.pop().value(), 100);
  EXPECT_EQ(queue.pop().value(), 101);
}

TEST(WorkQueue, FullQueueRejectsWithoutBlocking) {
  Queue queue(2, 2);
  EXPECT_EQ(queue.try_push(0, 1), Queue::Push::kAccepted);
  EXPECT_EQ(queue.try_push(1, 2), Queue::Push::kAccepted);
  // The bound spans all lanes.
  EXPECT_EQ(queue.try_push(0, 3), Queue::Push::kFull);
  EXPECT_EQ(queue.try_push(1, 3), Queue::Push::kFull);
  EXPECT_EQ(queue.size(), 2u);
  // Draining one item re-opens admission.
  (void)queue.pop();
  EXPECT_EQ(queue.try_push(0, 3), Queue::Push::kAccepted);
}

TEST(WorkQueue, CloseDrainsAcceptedItemsThenStops) {
  Queue queue(8, 2);
  ASSERT_EQ(queue.try_push(1, 7), Queue::Push::kAccepted);
  ASSERT_EQ(queue.try_push(0, 3), Queue::Push::kAccepted);
  queue.close();
  EXPECT_EQ(queue.try_push(0, 9), Queue::Push::kClosed);
  // Accepted work still drains in priority order...
  EXPECT_EQ(queue.pop().value(), 3);
  EXPECT_EQ(queue.pop().value(), 7);
  // ...then pops report exhaustion.
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(WorkQueue, CloseWakesBlockedConsumers) {
  Queue queue(4, 1);
  std::atomic<int> finished{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (queue.pop().has_value()) {
      }
      ++finished;
    });
  }
  queue.close();
  for (auto& thread : consumers) thread.join();
  EXPECT_EQ(finished.load(), 3);
}

TEST(WorkQueue, RejectsInvalidGeometry) {
  EXPECT_THROW(Queue(0, 1), Error);
  EXPECT_THROW(Queue(4, 0), Error);
  Queue queue(4, 2);
  EXPECT_THROW(queue.try_push(2, 1), Error);
}

// Concurrent producers + consumers: every accepted item is popped
// exactly once, and nothing is popped after close() beyond the
// accepted set.
TEST(WorkQueue, ConcurrentProducersConsumers) {
  Queue queue(32, 2);
  std::atomic<int> accepted{0};
  std::atomic<int> popped{0};
  std::atomic<long long> pushed_sum{0};
  std::atomic<long long> popped_sum{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      while (const auto item = queue.pop()) {
        ++popped;
        popped_sum += *item;
      }
    });
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (int k = 0; k < 200; ++k) {
        const int value = p * 1000 + k;
        if (queue.try_push(static_cast<std::size_t>(k % 2), value) ==
            Queue::Push::kAccepted) {
          ++accepted;
          pushed_sum += value;
        }
      }
    });
  }
  for (auto& thread : producers) thread.join();
  queue.close();
  for (auto& thread : consumers) thread.join();

  EXPECT_EQ(popped.load(), accepted.load());
  EXPECT_EQ(popped_sum.load(), pushed_sum.load());
  EXPECT_EQ(queue.size(), 0u);
}

}  // namespace
}  // namespace gmd
