#include "gmd/common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "gmd/common/error.hpp"

namespace gmd {
namespace {

TEST(CsvTable, ConstructAndAccess) {
  CsvTable t({"a", "b"});
  t.add_row({1.0, 2.0});
  t.add_row({3.0, 4.0});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_DOUBLE_EQ(t.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.at(1, "b"), 4.0);
  EXPECT_EQ(t.column("a"), (std::vector<double>{1.0, 3.0}));
}

TEST(CsvTable, RejectsEmptySchema) {
  EXPECT_THROW(CsvTable(std::vector<std::string>{}), Error);
}

TEST(CsvTable, RejectsRaggedRow) {
  CsvTable t({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), Error);
  EXPECT_THROW(t.add_row({1.0, 2.0, 3.0}), Error);
}

TEST(CsvTable, UnknownColumnThrows) {
  CsvTable t({"a"});
  EXPECT_THROW((void)t.column_index("zzz"), Error);
  EXPECT_TRUE(t.has_column("a"));
  EXPECT_FALSE(t.has_column("zzz"));
}

TEST(CsvTable, OutOfRangeAccessThrows) {
  CsvTable t({"a"});
  t.add_row({1.0});
  EXPECT_THROW((void)t.at(1, 0), Error);
  EXPECT_THROW((void)t.at(0, 5), Error);
  EXPECT_THROW((void)t.row(9), Error);
}

TEST(CsvTable, RoundTripThroughStream) {
  CsvTable t({"x", "y", "z"});
  t.add_row({1.5, -2.0, 4.13e7});
  t.add_row({0.0, 1e-9, 31.87});
  std::ostringstream out;
  t.write(out);

  std::istringstream in(out.str());
  const CsvTable back = CsvTable::read(in);
  ASSERT_EQ(back.num_rows(), 2u);
  ASSERT_EQ(back.columns(), t.columns());
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(back.at(r, c), t.at(r, c));
}

TEST(CsvTable, ReadSkipsBlankLines) {
  std::istringstream in("a,b\n1,2\n\n3,4\n");
  const CsvTable t = CsvTable::read(in);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(CsvTable, ReadRejectsMalformedInput) {
  std::istringstream empty("");
  EXPECT_THROW(CsvTable::read(empty), Error);
  std::istringstream ragged("a,b\n1\n");
  EXPECT_THROW(CsvTable::read(ragged), Error);
  std::istringstream non_numeric("a\nhello\n");
  EXPECT_THROW(CsvTable::read(non_numeric), Error);
}

TEST(CsvTable, SaveAndLoadFile) {
  CsvTable t({"v"});
  t.add_row({42.0});
  const std::string path = testing::TempDir() + "/gmd_csv_test.csv";
  t.save(path);
  const CsvTable back = CsvTable::load(path);
  ASSERT_EQ(back.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(back.at(0, "v"), 42.0);
  EXPECT_THROW(CsvTable::load("/nonexistent/dir/x.csv"), Error);
}

}  // namespace
}  // namespace gmd
