#include "gmd/common/cli.hpp"

#include <gtest/gtest.h>

#include "gmd/common/error.hpp"

namespace gmd {
namespace {

CliParser make_parser() {
  CliParser p("demo", "test parser");
  p.add_option("vertices", "1024", "number of vertices")
      .add_option("rate", "0.5", "a rate")
      .add_option("name", "bfs", "workload name")
      .add_flag("verbose", "enable verbose output");
  return p;
}

TEST(CliParser, DefaultsApplyWhenUnset) {
  auto p = make_parser();
  const char* argv[] = {"demo"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_EQ(p.get_int("vertices"), 1024);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 0.5);
  EXPECT_EQ(p.get_string("name"), "bfs");
  EXPECT_FALSE(p.get_flag("verbose"));
}

TEST(CliParser, SpaceSeparatedValues) {
  auto p = make_parser();
  const char* argv[] = {"demo", "--vertices", "64", "--name", "pagerank"};
  ASSERT_TRUE(p.parse(5, argv));
  EXPECT_EQ(p.get_int("vertices"), 64);
  EXPECT_EQ(p.get_string("name"), "pagerank");
}

TEST(CliParser, EqualsSeparatedValues) {
  auto p = make_parser();
  const char* argv[] = {"demo", "--rate=0.25", "--verbose"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 0.25);
  EXPECT_TRUE(p.get_flag("verbose"));
}

TEST(CliParser, PositionalArgumentsCollected) {
  auto p = make_parser();
  const char* argv[] = {"demo", "input.txt", "--vertices", "8", "out.txt"};
  ASSERT_TRUE(p.parse(5, argv));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.txt");
  EXPECT_EQ(p.positional()[1], "out.txt");
}

TEST(CliParser, UnknownOptionThrows) {
  auto p = make_parser();
  const char* argv[] = {"demo", "--bogus", "1"};
  EXPECT_THROW(p.parse(3, argv), Error);
}

TEST(CliParser, MissingValueThrows) {
  auto p = make_parser();
  const char* argv[] = {"demo", "--vertices"};
  EXPECT_THROW(p.parse(2, argv), Error);
}

TEST(CliParser, NonNumericValueThrowsOnTypedGet) {
  auto p = make_parser();
  const char* argv[] = {"demo", "--vertices", "many"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_THROW((void)p.get_int("vertices"), Error);
}

TEST(CliParser, HelpReturnsFalse) {
  auto p = make_parser();
  const char* argv[] = {"demo", "--help"};
  testing::internal::CaptureStdout();
  EXPECT_FALSE(p.parse(2, argv));
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("--vertices"), std::string::npos);
}

TEST(CliParser, UndeclaredOptionAccessThrows) {
  auto p = make_parser();
  const char* argv[] = {"demo"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_THROW((void)p.get_string("nope"), Error);
}

}  // namespace
}  // namespace gmd
