#include "gmd/common/string_util.hpp"

#include <gtest/gtest.h>

namespace gmd {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(Split, OnDelimiterKeepsEmptyFields) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Split, SingleFieldAndTrailingDelimiter) {
  EXPECT_EQ(split("abc", ',').size(), 1u);
  const auto parts = split("a,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(SplitWhitespace, DropsEmptyFields) {
  const auto parts = split_whitespace("  12  R  0x1000\t64 ");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "12");
  EXPECT_EQ(parts[1], "R");
  EXPECT_EQ(parts[2], "0x1000");
  EXPECT_EQ(parts[3], "64");
  EXPECT_TRUE(split_whitespace("   ").empty());
}

TEST(ParseInt, AcceptsValidRejectsGarbage) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int("-17").value(), -17);
  EXPECT_EQ(parse_int(" 8 ").value(), 8);
  EXPECT_FALSE(parse_int("4x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("1.5").has_value());
}

TEST(ParseUint, HandlesHexPrefix) {
  EXPECT_EQ(parse_uint("255").value(), 255u);
  EXPECT_EQ(parse_uint("0x1000").value(), 0x1000u);
  EXPECT_EQ(parse_uint("0XFF").value(), 255u);
  EXPECT_FALSE(parse_uint("-1").has_value());
  EXPECT_FALSE(parse_uint("0xZZ").has_value());
}

TEST(ParseDouble, AcceptsScientificNotation) {
  EXPECT_DOUBLE_EQ(parse_double("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(parse_double("4.13e+07").value(), 4.13e7);
  EXPECT_DOUBLE_EQ(parse_double("-1e-3").value(), -1e-3);
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.2.3").has_value());
  EXPECT_FALSE(parse_double("").has_value());
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(starts_with("--option", "--"));
  EXPECT_FALSE(starts_with("-o", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_FALSE(starts_with("", "a"));
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("DRAM"), "dram");
  EXPECT_EQ(to_lower("MiXeD123"), "mixed123");
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Format, FixedAndScientific) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_sci(41300000.0, 2), "4.13e+07");
}

}  // namespace
}  // namespace gmd
