#include "gmd/common/lru_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "gmd/common/thread_pool.hpp"

namespace gmd {
namespace {

TEST(LruCache, MissThenHit) {
  ShardedLruCache<int, std::string> cache(8, 1);
  EXPECT_FALSE(cache.get(1).has_value());
  cache.put(1, "one");
  const auto hit = cache.get(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "one");

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(LruCache, PutRefreshesValueAndRecency) {
  ShardedLruCache<int, int> cache(2, 1);
  cache.put(1, 10);
  cache.put(2, 20);
  cache.put(1, 11);  // refresh: 1 is now most recent
  cache.put(3, 30);  // evicts 2, the least recently used
  EXPECT_EQ(cache.get(1).value_or(-1), 11);
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_EQ(cache.get(3).value_or(-1), 30);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(LruCache, GetPromotesAgainstEviction) {
  ShardedLruCache<int, int> cache(2, 1);
  cache.put(1, 10);
  cache.put(2, 20);
  ASSERT_TRUE(cache.get(1).has_value());  // 1 promoted over 2
  cache.put(3, 30);                       // evicts 2
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
}

// Single-shard eviction is fully deterministic: replaying the same
// operation sequence yields the same surviving set.
TEST(LruCache, SingleShardEvictionDeterminism) {
  const auto survivors = [] {
    ShardedLruCache<int, int> cache(4, 1);
    for (int round = 0; round < 3; ++round) {
      for (int k = 0; k < 10; ++k) {
        cache.put(k, k * 100 + round);
        (void)cache.get(k / 2);
      }
    }
    std::vector<int> alive;
    for (int k = 0; k < 10; ++k) {
      if (cache.get(k).has_value()) alive.push_back(k);
    }
    return alive;
  };
  const std::vector<int> first = survivors();
  EXPECT_EQ(first.size(), 4u);
  EXPECT_EQ(first, survivors());
  EXPECT_EQ(first, survivors());
}

TEST(LruCache, CapacityIsBoundAcrossShards) {
  ShardedLruCache<int, int> cache(16, 4);
  for (int k = 0; k < 1000; ++k) cache.put(k, k);
  EXPECT_LE(cache.size(), 16u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(LruCache, ShardCountNeverExceedsCapacity) {
  // 2 entries over 8 requested shards must still hold 2 entries, not 0.
  ShardedLruCache<int, int> cache(2, 8);
  EXPECT_LE(cache.num_shards(), 2u);
  cache.put(1, 1);
  cache.put(2, 2);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCache, ClearEmptiesEveryShard) {
  ShardedLruCache<int, int> cache(32, 4);
  for (int k = 0; k < 32; ++k) cache.put(k, k);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(0).has_value());
}

TEST(LruCache, RejectsZeroCapacity) {
  using Cache = ShardedLruCache<int, int>;
  EXPECT_THROW(Cache(0, 1), Error);
  EXPECT_THROW(Cache(4, 0), Error);
}

// Sharded concurrent access: hammer one cache from a pool; every
// completed get must return the value its key was last put with, the
// size bound must hold throughout, and the counters must balance.
TEST(LruCache, ConcurrentStressUnderThreadPool) {
  ShardedLruCache<std::uint64_t, std::uint64_t> cache(64, 8);
  ThreadPool pool(8);
  std::atomic<std::uint64_t> wrong_values{0};
  constexpr std::uint64_t kKeys = 128;
  constexpr std::size_t kOpsPerTask = 500;

  pool.parallel_for(0, 16, [&](std::size_t task) {
    std::uint64_t state = 0x9E3779B97F4A7C15ULL * (task + 1);
    for (std::size_t op = 0; op < kOpsPerTask; ++op) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      const std::uint64_t key = state % kKeys;
      if (state & 1) {
        cache.put(key, key * 7);
      } else {
        const auto value = cache.get(key);
        if (value.has_value() && *value != key * 7) ++wrong_values;
      }
    }
  });

  EXPECT_EQ(wrong_values.load(), 0u);
  EXPECT_LE(cache.size(), 64u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, cache.size());
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

}  // namespace
}  // namespace gmd
