#include "gmd/common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace gmd {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i)
    if (a() != b()) ++differing;
  EXPECT_GT(differing, 30);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, NextBelowStaysInBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowRejectsZeroBound) {
  Rng rng(3);
  EXPECT_THROW(rng.next_below(0), Error);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInRangeInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NormalMeanAndVariance) {
  Rng rng(17);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.1);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.split();
  // Child stream differs from continuing the parent stream.
  Rng parent_copy(21);
  (void)parent_copy();  // consume the split draw
  int differing = 0;
  for (int i = 0; i < 32; ++i)
    if (child() != parent_copy()) ++differing;
  EXPECT_GT(differing, 30);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to match
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

}  // namespace
}  // namespace gmd
