#include "gmd/common/faultinject.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "gmd/common/error.hpp"

namespace gmd::faultinject {
namespace {

/// Every test leaves the process-wide registry empty: chaos scenarios
/// in other binaries rely on a clean slate, and so do the tests below.
class FaultInjectTest : public ::testing::Test {
 protected:
  void SetUp() override { clear(); }
  void TearDown() override { clear(); }
};

TEST_F(FaultInjectTest, DisarmedSitesNeverFire) {
  EXPECT_FALSE(any_armed());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(fire("some.site").has_value());
  }
  // Unarmed hits are not even tracked: the fast path must stay a single
  // atomic load, with no registry mutation to contend on.
  EXPECT_TRUE(status().empty());
}

TEST_F(FaultInjectTest, FailNthFiresExactlyFromNthHit) {
  FaultSpec spec;
  spec.kind = FaultKind::kTimeout;
  spec.fail_nth = 3;
  arm("a.b", spec);
  EXPECT_EQ(armed_count(), 1u);
  EXPECT_FALSE(fire("a.b").has_value());
  EXPECT_FALSE(fire("a.b").has_value());
  const auto third = fire("a.b");
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(*third, FaultKind::kTimeout);
  // Not one-shot: every later hit keeps firing.
  EXPECT_TRUE(fire("a.b").has_value());
}

TEST_F(FaultInjectTest, OneShotDisarmsAfterFirstFire) {
  FaultSpec spec;
  spec.kind = FaultKind::kIo;
  spec.fail_nth = 2;
  spec.one_shot = true;
  arm("a.b", spec);
  EXPECT_FALSE(fire("a.b").has_value());
  EXPECT_TRUE(fire("a.b").has_value());
  EXPECT_EQ(armed_count(), 0u);
  EXPECT_FALSE(any_armed());
  EXPECT_FALSE(fire("a.b").has_value());
  // The fired-out site stays visible for diagnostics.
  const auto all = status();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].site, "a.b");
  EXPECT_EQ(all[0].fires, 1u);
  EXPECT_FALSE(all[0].armed);
}

TEST_F(FaultInjectTest, ProbabilityDrawsAreSeededAndDeterministic) {
  const auto run = [](std::uint64_t seed) {
    FaultSpec spec;
    spec.kind = FaultKind::kIo;
    spec.probability = 0.5;
    spec.seed = seed;
    arm("p.site", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(fire("p.site").has_value());
    clear();
    return fired;
  };
  const auto first = run(7);
  const auto again = run(7);
  const auto other = run(8);
  EXPECT_EQ(first, again) << "same seed must replay the same fire pattern";
  EXPECT_NE(first, other) << "different seeds must differ somewhere";
  const auto fires = static_cast<std::size_t>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 16u);
  EXPECT_LT(fires, 48u);
}

TEST_F(FaultInjectTest, ThrowInjectedRaisesMappedTypedError) {
  try {
    throw_injected(FaultKind::kUnavailable, "x.y");
    FAIL() << "throw_injected must not return";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnavailable);
    EXPECT_NE(std::string(e.what()).find("injected fault"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("x.y"), std::string::npos);
  }
  EXPECT_EQ(error_code_for(FaultKind::kIo), ErrorCode::kIo);
  EXPECT_EQ(error_code_for(FaultKind::kInvalidData), ErrorCode::kInvalidData);
  EXPECT_EQ(error_code_for(FaultKind::kTimeout), ErrorCode::kTimeout);
  EXPECT_EQ(error_code_for(FaultKind::kUnavailable), ErrorCode::kUnavailable);
  EXPECT_EQ(error_code_for(FaultKind::kPartialWrite), ErrorCode::kIo);
  EXPECT_EQ(error_code_for(FaultKind::kShortRead), ErrorCode::kIo);
}

TEST_F(FaultInjectTest, ArmFromSpecParsesEveryClause) {
  const std::size_t armed = arm_from_spec(
      "a.open=io, b.commit=partial-write:nth=4:p=0.25:seed=9:oneshot,"
      "c.load=invalid-data");
  EXPECT_EQ(armed, 3u);
  EXPECT_EQ(armed_count(), 3u);
  bool saw_commit = false;
  for (const auto& site : status()) {
    if (site.site != "b.commit") continue;
    saw_commit = true;
    EXPECT_EQ(site.spec.kind, FaultKind::kPartialWrite);
    EXPECT_EQ(site.spec.fail_nth, 4u);
    EXPECT_DOUBLE_EQ(site.spec.probability, 0.25);
    EXPECT_EQ(site.spec.seed, 9u);
    EXPECT_TRUE(site.spec.one_shot);
  }
  EXPECT_TRUE(saw_commit);
}

TEST_F(FaultInjectTest, MalformedSpecsRaiseConfigErrors) {
  for (const char* bad : {"nosite", "a.b=", "a.b=notakind", "=io",
                          "a.b=io:nth=0", "a.b=io:p=0", "a.b=io:p=1.5",
                          "a.b=io:nth=abc", "a.b=io:bogus=1"}) {
    EXPECT_THROW(arm_from_spec(bad), Error) << "spec: " << bad;
  }
  EXPECT_EQ(armed_count(), 0u) << "failed specs must not leave sites armed";
  EXPECT_EQ(arm_from_spec(""), 0u);
}

TEST_F(FaultInjectTest, ArmFromEnvReadsTheVariable) {
  ::setenv("GMD_TEST_FAULTS", "e.site=timeout:nth=2", 1);
  EXPECT_EQ(arm_from_env("GMD_TEST_FAULTS"), 1u);
  EXPECT_FALSE(fire("e.site").has_value());
  EXPECT_TRUE(fire("e.site").has_value());
  ::unsetenv("GMD_TEST_FAULTS");
  EXPECT_EQ(arm_from_env("GMD_TEST_FAULTS"), 0u);
}

TEST_F(FaultInjectTest, KindNamesRoundTrip) {
  for (const FaultKind kind :
       {FaultKind::kIo, FaultKind::kInvalidData, FaultKind::kTimeout,
        FaultKind::kUnavailable, FaultKind::kPartialWrite,
        FaultKind::kShortRead}) {
    FaultKind parsed{};
    ASSERT_TRUE(kind_from_string(to_string(kind), parsed));
    EXPECT_EQ(parsed, kind);
  }
  FaultKind ignored{};
  EXPECT_FALSE(kind_from_string("nope", ignored));
}

TEST_F(FaultInjectTest, ErrorCodeNamesRoundTripForEveryCode) {
  // The wire protocol and the retry policy key off these names; every
  // code must have a distinct stable name that parses back.
  std::set<std::string> seen;
  for (int raw = 0; raw <= static_cast<int>(kLastErrorCode); ++raw) {
    const auto code = static_cast<ErrorCode>(raw);
    const std::string name(to_string(code));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?") << "code " << raw << " lacks a name";
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
    ErrorCode parsed{};
    ASSERT_TRUE(error_code_from_string(name, parsed)) << name;
    EXPECT_EQ(parsed, code);
  }
  ErrorCode ignored{};
  EXPECT_FALSE(error_code_from_string("not-a-code", ignored));
}

TEST_F(FaultInjectTest, ConcurrentHitsFireTheConfiguredCount) {
  // 8 threads hammer one site armed to fire from hit 100 onward.  The
  // total fire count must be exactly hits - 99 regardless of schedule.
  FaultSpec spec;
  spec.kind = FaultKind::kIo;
  spec.fail_nth = 100;
  arm("mt.site", spec);
  std::atomic<std::uint64_t> fired{0};
  std::vector<std::thread> threads;
  constexpr int kPerThread = 200;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        if (fire("mt.site").has_value()) fired.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(fired.load(), 8u * kPerThread - 99u);
}

TEST_F(FaultInjectTest, GmdFaultPointMacroThrowsWhenArmed) {
  FaultSpec spec;
  spec.kind = FaultKind::kInvalidData;
  arm("macro.site", spec);
  EXPECT_THROW(GMD_FAULT_POINT("macro.site"), Error);
  clear();
  GMD_FAULT_POINT("macro.site");  // disarmed: must be a no-op
}

}  // namespace
}  // namespace gmd::faultinject
