#include "gmd/common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gmd {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats whole, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.37 * i - 20.0;
    whole.add(x);
    (i < 40 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(StatsFree, MeanAndStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(1.25), 1e-12);
  EXPECT_EQ(mean(std::span<const double>{}), 0.0);
}

TEST(StatsFree, PercentileEndpointsAndMedian) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 20.0);
}

TEST(StatsFree, PercentileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 75.0), 7.5);
}

TEST(StatsFree, PercentileRejectsBadInput) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(percentile({}, 50.0), Error);
  EXPECT_THROW(percentile(xs, -1.0), Error);
  EXPECT_THROW(percentile(xs, 101.0), Error);
}

}  // namespace
}  // namespace gmd
