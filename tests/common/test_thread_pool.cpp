#include "gmd/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "gmd/common/error.hpp"

namespace gmd {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait();
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(0, hits.size(), [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&calls](std::size_t) { ++calls; });
  pool.parallel_for(7, 3, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, TaskExceptionRethrownFromWait) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The pool remains usable after an exception.
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [](std::size_t i) {
                                   if (i == 7) throw Error("boom");
                                 }),
               Error);
}

TEST(ThreadPool, CollectedErrorsExposeEveryFailure) {
  ThreadPool pool(2);
  for (int i = 0; i < 4; ++i) {
    pool.submit([i] { throw Error("task " + std::to_string(i)); });
  }
  EXPECT_THROW(pool.wait(), Error);
  const std::vector<std::exception_ptr> errors = pool.collected_errors();
  EXPECT_EQ(errors.size(), 4u);
  for (const std::exception_ptr& error : errors) {
    try {
      std::rethrow_exception(error);
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("task "), std::string::npos);
    }
  }
}

TEST(ThreadPool, CollectedErrorsHoldLastFailingBatch) {
  ThreadPool pool(2);
  pool.submit([] { throw Error("first batch"); });
  EXPECT_THROW(pool.wait(), Error);
  ASSERT_EQ(pool.collected_errors().size(), 1u);

  // A clean batch leaves the previous error record untouched; a new
  // failing batch replaces it.
  pool.submit([] {});
  pool.wait();
  EXPECT_EQ(pool.collected_errors().size(), 1u);
  pool.submit([] { throw Error("second batch a"); });
  pool.submit([] { throw Error("second batch b"); });
  EXPECT_THROW(pool.wait(), Error);
  EXPECT_EQ(pool.collected_errors().size(), 2u);
}

TEST(ThreadPool, NullTaskRejected) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), Error);
}

TEST(ThreadPool, SingleThreadPoolStillParallelFor) {
  ThreadPool pool(1);
  std::vector<int> out(50, 0);
  pool.parallel_for(0, out.size(), [&out](std::size_t i) { out[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], static_cast<int>(i));
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace gmd
