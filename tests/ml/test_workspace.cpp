#include "gmd/ml/workspace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gmd/common/error.hpp"
#include "gmd/common/rng.hpp"
#include "gmd/ml/matrix.hpp"

namespace gmd::ml {
namespace {

/// Mixed-texture matrix: a continuous column, a heavily-duplicated
/// column, a constant column, and a coarse integer-grid column — the
/// value patterns DSE feature matrices actually have.
Matrix make_mixed(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rows.push_back({rng.next_double(),
                    static_cast<double>(rng.next_below(5)), 3.25,
                    static_cast<double>(rng.next_below(16)) * 100.0});
  }
  return Matrix::from_rows(rows);
}

TEST(TrainingWorkspace, SortsEveryFeatureByValueThenRow) {
  const Matrix x = make_mixed(64, 7);
  const TrainingWorkspace ws = TrainingWorkspace::build(x);
  ASSERT_EQ(ws.rows(), 64u);
  ASSERT_EQ(ws.features(), 4u);
  for (std::size_t f = 0; f < ws.features(); ++f) {
    const auto order = ws.sorted_order(f);
    const auto values = ws.sorted_values(f);
    ASSERT_EQ(order.size(), 64u);
    std::vector<bool> seen(64, false);
    for (std::size_t i = 0; i < order.size(); ++i) {
      EXPECT_EQ(values[i], x.at(order[i], f));
      EXPECT_FALSE(seen[order[i]]);
      seen[order[i]] = true;
      if (i > 0) {
        const bool ascending =
            values[i - 1] < values[i] ||
            (values[i - 1] == values[i] && order[i - 1] < order[i]);
        EXPECT_TRUE(ascending) << "feature " << f << " position " << i;
      }
    }
  }
}

TEST(TrainingWorkspace, ForSampleMatchesDirectBuildOfGatheredMatrix) {
  const Matrix x = make_mixed(80, 11);
  const TrainingWorkspace base = TrainingWorkspace::build(x);

  // A bootstrap-style sample: duplicates, omissions, arbitrary order.
  Rng rng(3);
  std::vector<std::size_t> sample(100);
  for (auto& idx : sample) idx = rng.next_below(80);

  const TrainingWorkspace derived = base.for_sample(sample);
  const TrainingWorkspace direct =
      TrainingWorkspace::build(x.gather_rows(sample));
  ASSERT_EQ(derived.rows(), direct.rows());
  ASSERT_EQ(derived.features(), direct.features());
  for (std::size_t f = 0; f < direct.features(); ++f) {
    const auto a_order = derived.sorted_order(f);
    const auto b_order = direct.sorted_order(f);
    const auto a_values = derived.sorted_values(f);
    const auto b_values = direct.sorted_values(f);
    ASSERT_EQ(a_order.size(), b_order.size());
    for (std::size_t i = 0; i < a_order.size(); ++i) {
      EXPECT_EQ(a_order[i], b_order[i]) << "feature " << f << " pos " << i;
      EXPECT_EQ(a_values[i], b_values[i]) << "feature " << f << " pos " << i;
    }
  }
}

TEST(TrainingWorkspace, LosslessHistogramsKeepOneBucketPerDistinctValue) {
  const Matrix x = make_mixed(200, 5);
  TrainingWorkspace ws = TrainingWorkspace::build(x);
  ws.build_histograms(32);
  ASSERT_TRUE(ws.has_histograms());

  // Feature 1 has 5 distinct values, feature 2 is constant, feature 3
  // has <= 16 — all fit losslessly in 32 bins.
  EXPECT_EQ(ws.num_bins(1), 5u);
  EXPECT_EQ(ws.num_bins(2), 1u);
  EXPECT_LE(ws.num_bins(3), 16u);
  for (const std::size_t f : {1u, 2u, 3u}) {
    for (std::size_t r = 0; r < ws.rows(); ++r) {
      EXPECT_LT(ws.bin_of(f, r), ws.num_bins(f));
    }
  }
  // Codes must be monotone in the value: bucket thresholds separate
  // every pair of distinct values.
  for (std::size_t a = 0; a < 50; ++a) {
    for (std::size_t b = a + 1; b < 50; ++b) {
      if (x.at(a, 1) < x.at(b, 1)) {
        EXPECT_LT(ws.bin_of(1, a), ws.bin_of(1, b));
      } else if (x.at(a, 1) == x.at(b, 1)) {
        EXPECT_EQ(ws.bin_of(1, a), ws.bin_of(1, b));
      }
    }
  }
}

TEST(TrainingWorkspace, QuantileHistogramsRespectTheBinBudget) {
  const Matrix x = make_mixed(1000, 13);
  TrainingWorkspace ws = TrainingWorkspace::build(x);
  ws.build_histograms(16);
  // Feature 0 is continuous (1000 distinct values): quantile mode.
  EXPECT_LE(ws.num_bins(0), 16u);
  EXPECT_GE(ws.num_bins(0), 8u);  // roughly balanced buckets
  // Thresholds order-separate the buckets.
  for (std::size_t r = 0; r < ws.rows(); ++r) {
    const std::uint8_t code = ws.bin_of(0, r);
    if (code > 0) {
      EXPECT_GT(x.at(r, 0), ws.bin_threshold(0, code - 1));
    }
    if (code + 1u < ws.num_bins(0)) {
      EXPECT_LE(x.at(r, 0), ws.bin_threshold(0, code));
    }
  }
}

TEST(TrainingWorkspace, ForSampleCarriesHistogramCodes) {
  const Matrix x = make_mixed(120, 17);
  TrainingWorkspace base = TrainingWorkspace::build(x);
  base.build_histograms(16);

  Rng rng(9);
  std::vector<std::size_t> sample(60);
  for (auto& idx : sample) idx = rng.next_below(120);
  const TrainingWorkspace derived = base.for_sample(sample);
  ASSERT_TRUE(derived.has_histograms());
  EXPECT_EQ(derived.max_bins(), base.max_bins());
  for (std::size_t f = 0; f < base.features(); ++f) {
    ASSERT_EQ(derived.num_bins(f), base.num_bins(f));
    for (std::size_t g = 0; g < sample.size(); ++g) {
      EXPECT_EQ(derived.bin_of(f, g), base.bin_of(f, sample[g]));
    }
  }
}

TEST(TrainingWorkspace, RejectsBadInputs) {
  const Matrix x = make_mixed(10, 1);
  TrainingWorkspace ws = TrainingWorkspace::build(x);
  EXPECT_THROW(ws.build_histograms(1), Error);
  EXPECT_THROW(ws.build_histograms(257), Error);
  const std::vector<std::size_t> out_of_range{10};
  EXPECT_THROW(ws.for_sample(out_of_range), Error);
  EXPECT_THROW(ws.for_sample({}), Error);
}

}  // namespace
}  // namespace gmd::ml
