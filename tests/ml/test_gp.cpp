#include "gmd/ml/gp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gmd/common/error.hpp"
#include "gmd/common/rng.hpp"
#include "gmd/ml/metrics.hpp"

namespace gmd::ml {
namespace {

void sample_smooth(std::size_t n, std::uint64_t seed, Matrix* x,
                   std::vector<double>* y) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  y->clear();
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.next_double();
    rows.push_back({a});
    y->push_back(std::sin(4.0 * a));
  }
  *x = Matrix::from_rows(rows);
}

TEST(GaussianProcess, InterpolatesTrainingPoints) {
  Matrix x;
  std::vector<double> y;
  sample_smooth(40, 1, &x, &y);
  GpParams params;
  params.kernel.gamma = 10.0;
  params.noise = 1e-8;
  GaussianProcess model(params);
  model.fit(x, y);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(model.predict_one(x.row(i)), y[i], 1e-3);
  }
}

TEST(GaussianProcess, GeneralizesSmoothFunction) {
  Matrix x;
  std::vector<double> y;
  sample_smooth(80, 2, &x, &y);
  GpParams params;
  params.kernel.gamma = 10.0;
  GaussianProcess model(params);
  model.fit(x, y);
  Matrix xt;
  std::vector<double> yt;
  sample_smooth(40, 3, &xt, &yt);
  EXPECT_GT(r2_score(yt, model.predict(xt)), 0.99);
}

TEST(GaussianProcess, VarianceLowNearDataHighFarAway) {
  const Matrix x = Matrix::from_rows({{0.4}, {0.5}, {0.6}});
  const std::vector<double> y{0.1, 0.2, 0.3};
  GpParams params;
  params.kernel.gamma = 50.0;
  GaussianProcess model(params);
  model.fit(x, y);
  const auto [near_mean, near_var] =
      model.predict_with_variance(std::vector<double>{0.5});
  const auto [far_mean, far_var] =
      model.predict_with_variance(std::vector<double>{5.0});
  (void)near_mean;
  (void)far_mean;
  EXPECT_LT(near_var, far_var);
  EXPECT_GE(near_var, 0.0);
}

TEST(GaussianProcess, FarPredictionsRevertToMean) {
  const Matrix x = Matrix::from_rows({{0.0}, {1.0}});
  const std::vector<double> y{2.0, 4.0};
  GpParams params;
  params.kernel.gamma = 10.0;
  GaussianProcess model(params);
  model.fit(x, y);
  EXPECT_NEAR(model.predict_one(std::vector<double>{100.0}), 3.0, 1e-6);
}

TEST(GaussianProcess, NoiseSmoothsInterpolation) {
  const Matrix x = Matrix::from_rows({{0.5}, {0.5}});  // duplicate input
  const std::vector<double> y{0.0, 1.0};               // conflicting targets
  GpParams params;
  params.noise = 0.1;
  GaussianProcess model(params);
  model.fit(x, y);  // would be singular without noise
  EXPECT_NEAR(model.predict_one(std::vector<double>{0.5}), 0.5, 1e-6);
}

TEST(GaussianProcess, MisuseErrors) {
  GaussianProcess model;
  EXPECT_THROW((void)model.predict_one(std::vector<double>{0.0}), Error);
  GpParams bad;
  bad.noise = 0.0;
  EXPECT_THROW(GaussianProcess{bad}, Error);
}

TEST(GpBatchPredict, SerialBatchMatchesPerRowExactly) {
  Matrix x;
  std::vector<double> y;
  sample_smooth(60, 7, &x, &y);
  GaussianProcess model;
  model.fit(x, y);

  Matrix xt;
  std::vector<double> yt;
  sample_smooth(33, 8, &xt, &yt);
  std::vector<double> means, variances;
  model.predict_with_variance(xt, means, variances);
  ASSERT_EQ(means.size(), xt.rows());
  for (std::size_t r = 0; r < xt.rows(); ++r) {
    const auto [mu, var] = model.predict_with_variance(xt.row(r));
    EXPECT_EQ(means[r], mu) << "row " << r;          // bit-identical
    EXPECT_EQ(variances[r], var) << "row " << r;
  }
}

TEST(GpBatchPredict, ParallelMatchesSerialAtAnyThreadCount) {
  Matrix x;
  std::vector<double> y;
  sample_smooth(80, 9, &x, &y);
  GaussianProcess model;
  model.fit(x, y);

  Matrix xt;
  std::vector<double> yt;
  sample_smooth(257, 10, &xt, &yt);  // not a multiple of any grain size
  std::vector<double> means, variances;
  model.predict_with_variance(xt, means, variances);
  for (const std::size_t threads : {1ul, 2ul, 3ul, 8ul}) {
    std::vector<double> pmeans, pvariances;
    model.predict_with_variance(xt, pmeans, pvariances, threads);
    EXPECT_EQ(pmeans, means) << threads << " threads";
    EXPECT_EQ(pvariances, variances) << threads << " threads";
  }
}

}  // namespace
}  // namespace gmd::ml
