#include "gmd/ml/dataset.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gmd/common/error.hpp"

namespace gmd::ml {
namespace {

Dataset make_dataset(std::size_t n) {
  Dataset d;
  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < n; ++i) {
    rows.push_back({static_cast<double>(i), static_cast<double>(i * i)});
    d.y.push_back(static_cast<double>(i) * 3.0);
  }
  d.X = Matrix::from_rows(rows);
  d.feature_names = {"a", "b"};
  d.target_name = "t";
  return d;
}

TEST(Dataset, ValidateCatchesMismatch) {
  Dataset d = make_dataset(5);
  EXPECT_NO_THROW(d.validate());
  d.y.pop_back();
  EXPECT_THROW(d.validate(), Error);
  d = make_dataset(3);
  d.feature_names = {"only_one"};
  EXPECT_THROW(d.validate(), Error);
}

TEST(Dataset, SubsetSelectsRows) {
  const Dataset d = make_dataset(10);
  const std::vector<std::size_t> idx{7, 1};
  const Dataset s = d.subset(idx);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.X.at(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(s.y[1], 3.0);
  EXPECT_EQ(s.feature_names, d.feature_names);
}

TEST(TrainTestSplit, SizesMatchFraction) {
  const Dataset d = make_dataset(100);
  const auto [train, test] = train_test_split(d, 0.2, 42);
  EXPECT_EQ(test.size(), 20u);
  EXPECT_EQ(train.size(), 80u);
}

TEST(TrainTestSplit, PartitionIsDisjointAndExhaustive) {
  const Dataset d = make_dataset(50);
  const auto [train, test] = train_test_split(d, 0.3, 7);
  std::multiset<double> seen;
  for (std::size_t i = 0; i < train.size(); ++i) seen.insert(train.X.at(i, 0));
  for (std::size_t i = 0; i < test.size(); ++i) seen.insert(test.X.at(i, 0));
  ASSERT_EQ(seen.size(), 50u);
  // Every original row id appears exactly once.
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_EQ(seen.count(static_cast<double>(i)), 1u) << i;
}

TEST(TrainTestSplit, DeterministicPerSeed) {
  const Dataset d = make_dataset(30);
  const auto [a_train, a_test] = train_test_split(d, 0.2, 5);
  const auto [b_train, b_test] = train_test_split(d, 0.2, 5);
  EXPECT_EQ(a_test.y, b_test.y);
  const auto [c_train, c_test] = train_test_split(d, 0.2, 6);
  EXPECT_NE(a_test.y, c_test.y);
}

TEST(TrainTestSplit, ExtremesStayNonEmpty) {
  const Dataset d = make_dataset(10);
  const auto [train_lo, test_lo] = train_test_split(d, 0.01, 1);
  EXPECT_GE(test_lo.size(), 1u);
  const auto [train_hi, test_hi] = train_test_split(d, 0.99, 1);
  EXPECT_GE(train_hi.size(), 1u);
}

TEST(TrainTestSplit, RejectsBadFraction) {
  const Dataset d = make_dataset(10);
  EXPECT_THROW(train_test_split(d, 0.0, 1), Error);
  EXPECT_THROW(train_test_split(d, 1.0, 1), Error);
}

TEST(KFold, FoldsPartitionAllRows) {
  const auto folds = kfold_indices(23, 5, 3);
  ASSERT_EQ(folds.size(), 5u);
  std::set<std::size_t> all_test;
  for (const auto& [train, test] : folds) {
    EXPECT_EQ(train.size() + test.size(), 23u);
    for (const std::size_t i : test) {
      EXPECT_TRUE(all_test.insert(i).second) << "duplicate test index " << i;
    }
    // Train and test are disjoint.
    for (const std::size_t i : test)
      EXPECT_EQ(std::count(train.begin(), train.end(), i), 0);
  }
  EXPECT_EQ(all_test.size(), 23u);
}

TEST(KFold, RejectsDegenerateInput) {
  EXPECT_THROW(kfold_indices(10, 1, 1), Error);
  EXPECT_THROW(kfold_indices(3, 5, 1), Error);
}

}  // namespace
}  // namespace gmd::ml
