#include "gmd/ml/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gmd/common/error.hpp"

namespace gmd::ml {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  m.at(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(0, 1), 7.0);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1.0, 2.0}, {3.0}}), Error);
  const Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
}

TEST(Matrix, RowSpanViewsData) {
  Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const auto r = m.row(1);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  m.row(1)[0] = 9.0;
  EXPECT_DOUBLE_EQ(m.at(1, 0), 9.0);
}

TEST(Matrix, GatherRows) {
  const Matrix m = Matrix::from_rows({{1.0}, {2.0}, {3.0}});
  const std::vector<std::size_t> idx{2, 0, 2};
  const Matrix g = m.gather_rows(idx);
  ASSERT_EQ(g.rows(), 3u);
  EXPECT_DOUBLE_EQ(g.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(g.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(g.at(2, 0), 3.0);
  const std::vector<std::size_t> bad{5};
  EXPECT_THROW(m.gather_rows(bad), Error);
}

TEST(Matrix, Transpose) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.at(2, 1), 6.0);
}

TEST(Matrix, MultiplyMatrices) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Matrix b = Matrix::from_rows({{5.0, 6.0}, {7.0, 8.0}});
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50.0);
  EXPECT_THROW(a.multiply(Matrix(3, 3)), Error);
}

TEST(Matrix, MultiplyVector) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const std::vector<double> v{1.0, -1.0};
  const auto out = a.multiply(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], -1.0);
  EXPECT_DOUBLE_EQ(out[1], -1.0);
}

TEST(Matrix, GramIsXtX) {
  const Matrix x = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  const Matrix g = x.gram();
  const Matrix expected = x.transposed().multiply(x);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      EXPECT_NEAR(g.at(i, j), expected.at(i, j), 1e-12);
}

TEST(Matrix, TransposeMultiply) {
  const Matrix x = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  const std::vector<double> v{1.0, 1.0, 1.0};
  const auto out = x.transpose_multiply(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 9.0);
  EXPECT_DOUBLE_EQ(out[1], 12.0);
}

TEST(Cholesky, FactorizesKnownSpd) {
  // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]].
  const Matrix a = Matrix::from_rows({{4.0, 2.0}, {2.0, 3.0}});
  const Matrix l = cholesky(a);
  EXPECT_NEAR(l.at(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(l.at(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(l.at(1, 1), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(l.at(0, 1), 0.0);
}

TEST(Cholesky, RejectsIndefinite) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {2.0, 1.0}});
  EXPECT_THROW(cholesky(a), Error);
  EXPECT_THROW(cholesky(Matrix(2, 3)), Error);
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  const Matrix a = Matrix::from_rows({{4.0, 2.0}, {2.0, 3.0}});
  // x = [1, -2] -> b = A x = [0, -4].
  const std::vector<double> b{0.0, -4.0};
  const auto x = cholesky_solve(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], -2.0, 1e-12);
}

TEST(Cholesky, SolveLargerSystem) {
  // SPD via B^T B + I.
  const Matrix b = Matrix::from_rows(
      {{1.0, 2.0, 0.5}, {0.0, 1.0, -1.0}, {2.0, 0.0, 1.0}, {1.0, 1.0, 1.0}});
  Matrix a = b.gram();
  for (std::size_t i = 0; i < 3; ++i) a.at(i, i) += 1.0;
  const std::vector<double> x_true{0.3, -1.2, 2.5};
  const auto rhs = a.multiply(x_true);
  const auto x = cholesky_solve(a, rhs);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

}  // namespace
}  // namespace gmd::ml
