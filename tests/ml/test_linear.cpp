#include "gmd/ml/linear.hpp"

#include <gtest/gtest.h>

#include "gmd/common/error.hpp"
#include "gmd/common/rng.hpp"
#include "gmd/ml/metrics.hpp"

namespace gmd::ml {
namespace {

TEST(LinearRegression, RecoversExactLinearFunction) {
  // y = 2 x0 - 3 x1 + 5.
  Rng rng(1);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    const double a = rng.next_double_in(-2.0, 2.0);
    const double b = rng.next_double_in(-2.0, 2.0);
    rows.push_back({a, b});
    y.push_back(2.0 * a - 3.0 * b + 5.0);
  }
  LinearRegression model;
  model.fit(Matrix::from_rows(rows), y);
  EXPECT_NEAR(model.coefficients()[0], 2.0, 1e-8);
  EXPECT_NEAR(model.coefficients()[1], -3.0, 1e-8);
  EXPECT_NEAR(model.intercept(), 5.0, 1e-8);
  EXPECT_NEAR(model.predict_one(std::vector<double>{1.0, 1.0}), 4.0, 1e-8);
}

TEST(LinearRegression, HandlesNoisyData) {
  Rng rng(2);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double a = rng.next_double_in(0.0, 1.0);
    rows.push_back({a});
    y.push_back(4.0 * a + 1.0 + 0.01 * rng.next_normal());
  }
  LinearRegression model;
  const Matrix x = Matrix::from_rows(rows);
  model.fit(x, y);
  EXPECT_NEAR(model.coefficients()[0], 4.0, 0.05);
  EXPECT_GT(r2_score(y, model.predict(x)), 0.99);
}

TEST(LinearRegression, SingularDesignStillFits) {
  // Duplicate column: X^T X is singular; jitter fallback must engage.
  const Matrix x = Matrix::from_rows(
      {{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}, {4.0, 4.0}});
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  LinearRegression model;
  model.fit(x, y);
  EXPECT_NEAR(model.predict_one(std::vector<double>{5.0, 5.0}), 10.0, 1e-4);
}

TEST(LinearRegression, RidgeShrinksCoefficients) {
  const Matrix x = Matrix::from_rows({{0.0}, {1.0}, {2.0}, {3.0}});
  const std::vector<double> y{0.0, 1.0, 2.0, 3.0};
  LinearRegression ols(0.0);
  LinearRegression ridge(10.0);
  ols.fit(x, y);
  ridge.fit(x, y);
  EXPECT_NEAR(ols.coefficients()[0], 1.0, 1e-10);
  EXPECT_LT(ridge.coefficients()[0], ols.coefficients()[0]);
  EXPECT_GT(ridge.coefficients()[0], 0.0);
}

TEST(LinearRegression, CloneIsIndependent) {
  const Matrix x = Matrix::from_rows({{0.0}, {1.0}});
  const std::vector<double> y{1.0, 3.0};
  LinearRegression model;
  model.fit(x, y);
  const auto copy = model.clone();
  EXPECT_TRUE(copy->is_fitted());
  EXPECT_DOUBLE_EQ(copy->predict_one(std::vector<double>{2.0}),
                   model.predict_one(std::vector<double>{2.0}));
}

TEST(LinearRegression, MisuseErrors) {
  LinearRegression model;
  EXPECT_THROW((void)model.predict_one(std::vector<double>{1.0}), Error);
  EXPECT_THROW(LinearRegression{-1.0}, Error);
  const Matrix x = Matrix::from_rows({{1.0}});
  EXPECT_THROW(model.fit(x, std::vector<double>{1.0, 2.0}), Error);
  model.fit(x, std::vector<double>{1.0});
  EXPECT_THROW((void)model.predict_one(std::vector<double>{1.0, 2.0}), Error);
}

}  // namespace
}  // namespace gmd::ml
