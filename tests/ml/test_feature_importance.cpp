#include <gtest/gtest.h>

#include "gmd/common/error.hpp"
#include "gmd/common/rng.hpp"
#include "gmd/ml/forest.hpp"
#include "gmd/ml/tree.hpp"

namespace gmd::ml {
namespace {

/// y depends strongly on feature 0, weakly on feature 1, not at all on
/// feature 2.
void sample_data(std::size_t n, std::uint64_t seed, Matrix* x,
                 std::vector<double>* y) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  y->clear();
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.next_double();
    const double b = rng.next_double();
    const double c = rng.next_double();
    rows.push_back({a, b, c});
    y->push_back(5.0 * a + 0.5 * b);
  }
  *x = Matrix::from_rows(rows);
}

TEST(TreeImportance, SumsToOneAndRanksCorrectly) {
  Matrix x;
  std::vector<double> y;
  sample_data(300, 1, &x, &y);
  DecisionTree tree;
  tree.fit(x, y);
  const auto importances = tree.feature_importances(3);
  ASSERT_EQ(importances.size(), 3u);
  double total = 0.0;
  for (const double v : importances) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_GT(importances[0], importances[1]);
  EXPECT_GT(importances[1], importances[2]);
  EXPECT_GT(importances[0], 0.8);
}

TEST(TreeImportance, SingleLeafIsAllZero) {
  const Matrix x = Matrix::from_rows({{1.0}, {2.0}});
  const std::vector<double> y{3.0, 3.0};  // constant target: no split
  DecisionTree tree;
  tree.fit(x, y);
  const auto importances = tree.feature_importances(1);
  EXPECT_DOUBLE_EQ(importances[0], 0.0);
}

TEST(TreeImportance, TooFewFeaturesThrows) {
  Matrix x;
  std::vector<double> y;
  sample_data(50, 2, &x, &y);
  DecisionTree tree;
  tree.fit(x, y);
  EXPECT_THROW((void)tree.feature_importances(1), Error);
}

TEST(ForestImportance, AgreesWithGroundTruthRanking) {
  Matrix x;
  std::vector<double> y;
  sample_data(300, 3, &x, &y);
  ForestParams params;
  params.num_trees = 30;
  RandomForest forest(params);
  forest.fit(x, y);
  const auto importances = forest.feature_importances(3);
  double total = 0.0;
  for (const double v : importances) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_GT(importances[0], 0.7);
  EXPECT_LT(importances[2], 0.05);
}

TEST(ForestImportance, UnfittedThrows) {
  RandomForest forest;
  EXPECT_THROW((void)forest.feature_importances(2), Error);
}

}  // namespace
}  // namespace gmd::ml
