#include "gmd/ml/model_selection.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gmd/common/error.hpp"
#include "gmd/common/rng.hpp"
#include "gmd/ml/forest.hpp"
#include "gmd/ml/linear.hpp"
#include "gmd/ml/svr.hpp"

namespace gmd::ml {
namespace {

Dataset sample_dataset(std::size_t n, std::uint64_t seed, double noise = 0.0) {
  Rng rng(seed);
  Dataset data;
  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.next_double();
    const double b = rng.next_double();
    rows.push_back({a, b});
    data.y.push_back(std::sin(3.0 * a) + b + noise * rng.next_normal());
  }
  data.X = Matrix::from_rows(rows);
  return data;
}

TEST(CrossValidate, ScoresEveryFold) {
  const Dataset data = sample_dataset(100, 1);
  const CvScores scores = cross_validate(Svr{}, data, 5, 7);
  EXPECT_EQ(scores.fold_mse.size(), 5u);
  EXPECT_EQ(scores.fold_r2.size(), 5u);
  EXPECT_GT(scores.mean_r2(), 0.9);
  EXPECT_LT(scores.mean_mse(), 0.05);
}

TEST(CrossValidate, GoodModelOutscoresBadModel) {
  const Dataset data = sample_dataset(150, 2);
  const CvScores svr = cross_validate(Svr{}, data, 5, 7);
  const CvScores linear = cross_validate(LinearRegression{}, data, 5, 7);
  EXPECT_LT(svr.mean_mse(), linear.mean_mse());
}

TEST(CrossValidate, DeterministicPerSeed) {
  const Dataset data = sample_dataset(80, 3);
  const CvScores a = cross_validate(LinearRegression{}, data, 4, 11);
  const CvScores b = cross_validate(LinearRegression{}, data, 4, 11);
  EXPECT_EQ(a.fold_mse, b.fold_mse);
}

TEST(CartesianGrid, ProducesAllCombinations) {
  const auto grid = cartesian_grid(
      {{"a", {1.0, 2.0}}, {"b", {10.0, 20.0, 30.0}}});
  EXPECT_EQ(grid.size(), 6u);
  // Every combination appears exactly once.
  int count_a1_b20 = 0;
  for (const auto& point : grid) {
    EXPECT_EQ(point.size(), 2u);
    if (point.at("a") == 1.0 && point.at("b") == 20.0) ++count_a1_b20;
  }
  EXPECT_EQ(count_a1_b20, 1);
}

TEST(CartesianGrid, RejectsEmptyAxes) {
  EXPECT_THROW(cartesian_grid({}), Error);
  EXPECT_THROW(cartesian_grid({{"a", {}}}), Error);
}

TEST(GridSearch, FindsTheBetterHyperparameters) {
  const Dataset data = sample_dataset(120, 4);
  // gamma 0.001 badly underfits this target; gamma 2 fits well.
  const auto result = grid_search_svr(data, {10.0}, {0.001, 2.0}, {0.005},
                                      /*folds=*/4, /*seed=*/5);
  ASSERT_EQ(result.candidates.size(), 2u);
  EXPECT_DOUBLE_EQ(result.best().params.at("gamma"), 2.0);
  EXPECT_LT(result.best().scores.mean_mse(),
            result.candidates.back().scores.mean_mse());
}

TEST(GridSearch, CandidatesSortedByMse) {
  const Dataset data = sample_dataset(100, 5);
  const auto result =
      grid_search_svr(data, {0.1, 10.0}, {0.01, 2.0}, {0.005, 0.1}, 3, 5);
  EXPECT_EQ(result.candidates.size(), 8u);
  for (std::size_t i = 1; i < result.candidates.size(); ++i) {
    EXPECT_LE(result.candidates[i - 1].scores.mean_mse(),
              result.candidates[i].scores.mean_mse());
  }
}

TEST(GridSearch, CustomFactory) {
  const Dataset data = sample_dataset(100, 6, 0.1);
  const ModelFactory factory = [](const ParamPoint& params) {
    ForestParams forest;
    forest.num_trees = static_cast<std::size_t>(params.at("trees"));
    return std::make_unique<RandomForest>(forest);
  };
  const auto grid = cartesian_grid({{"trees", {1.0, 40.0}}});
  const auto result = grid_search(factory, grid, data, 3, 7);
  // More trees should generalize better on noisy data.
  EXPECT_DOUBLE_EQ(result.best().params.at("trees"), 40.0);
}

TEST(GridSearch, EmptyGridThrows) {
  const Dataset data = sample_dataset(30, 7);
  const ModelFactory factory = [](const ParamPoint&) {
    return std::make_unique<LinearRegression>();
  };
  EXPECT_THROW(grid_search(factory, {}, data), Error);
}

}  // namespace
}  // namespace gmd::ml
