#include "gmd/ml/tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gmd/common/error.hpp"
#include "gmd/common/rng.hpp"
#include "gmd/ml/metrics.hpp"

namespace gmd::ml {
namespace {

TEST(DecisionTree, MemorizesDistinctSamples) {
  const Matrix x = Matrix::from_rows({{0.0}, {1.0}, {2.0}, {3.0}});
  const std::vector<double> y{10.0, 20.0, 30.0, 40.0};
  DecisionTree tree;
  tree.fit(x, y);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_DOUBLE_EQ(tree.predict_one(x.row(i)), y[i]);
  }
}

TEST(DecisionTree, StepFunctionSingleSplit) {
  const Matrix x = Matrix::from_rows({{0.0}, {0.1}, {0.9}, {1.0}});
  const std::vector<double> y{0.0, 0.0, 1.0, 1.0};
  TreeParams params;
  params.max_depth = 2;
  DecisionTree tree(params);
  tree.fit(x, y);
  EXPECT_EQ(tree.node_count(), 3u);  // root + 2 leaves
  EXPECT_DOUBLE_EQ(tree.predict_one(std::vector<double>{0.05}), 0.0);
  EXPECT_DOUBLE_EQ(tree.predict_one(std::vector<double>{0.95}), 1.0);
}

TEST(DecisionTree, MaxDepthOneIsAStump) {
  Rng rng(1);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    const double a = rng.next_double();
    rows.push_back({a});
    y.push_back(a);
  }
  TreeParams params;
  params.max_depth = 1;
  DecisionTree tree(params);
  tree.fit(Matrix::from_rows(rows), y);
  EXPECT_EQ(tree.depth(), 1u);
  EXPECT_EQ(tree.node_count(), 1u);  // a single leaf: no split allowed
}

TEST(DecisionTree, DeeperTreesFitBetter) {
  Rng rng(2);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    const double a = rng.next_double();
    rows.push_back({a});
    y.push_back(std::sin(6.0 * a));
  }
  const Matrix x = Matrix::from_rows(rows);
  TreeParams shallow;
  shallow.max_depth = 2;
  TreeParams deep;
  deep.max_depth = 8;
  DecisionTree t_shallow(shallow), t_deep(deep);
  t_shallow.fit(x, y);
  t_deep.fit(x, y);
  EXPECT_LT(mse(y, t_deep.predict(x)), mse(y, t_shallow.predict(x)));
}

TEST(DecisionTree, ConstantTargetIsSingleLeaf) {
  const Matrix x = Matrix::from_rows({{1.0}, {2.0}, {3.0}});
  const std::vector<double> y{7.0, 7.0, 7.0};
  DecisionTree tree;
  tree.fit(x, y);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict_one(std::vector<double>{99.0}), 7.0);
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  const Matrix x = Matrix::from_rows({{0.0}, {1.0}, {2.0}, {3.0}});
  const std::vector<double> y{0.0, 0.0, 10.0, 10.0};
  TreeParams params;
  params.min_samples_leaf = 2;
  DecisionTree tree(params);
  tree.fit(x, y);
  // Split at 1.5 gives two leaves of exactly two samples each.
  EXPECT_EQ(tree.node_count(), 3u);
  TreeParams strict;
  strict.min_samples_leaf = 3;
  DecisionTree stump(strict);
  stump.fit(x, y);
  EXPECT_EQ(stump.node_count(), 1u);  // no legal split (4 samples, 3+3 > 4)
}

TEST(DecisionTree, SplitsOnTheInformativeFeature) {
  // Feature 1 is pure noise; feature 0 determines y.
  Rng rng(3);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.next_double();
    rows.push_back({a, rng.next_double()});
    y.push_back(a > 0.5 ? 1.0 : 0.0);
  }
  const Matrix x = Matrix::from_rows(rows);
  DecisionTree tree;
  tree.fit(x, y);
  EXPECT_DOUBLE_EQ(tree.predict_one(std::vector<double>{0.9, 0.1}), 1.0);
  EXPECT_DOUBLE_EQ(tree.predict_one(std::vector<double>{0.1, 0.9}), 0.0);
}

TEST(DecisionTree, WeightedFitPrefersHeavySamples) {
  const Matrix x = Matrix::from_rows({{0.0}, {1.0}});
  const std::vector<double> y{0.0, 10.0};
  const std::vector<double> w{100.0, 1.0};
  TreeParams params;
  params.max_depth = 1;  // force one leaf: prediction is weighted mean
  DecisionTree tree(params);
  tree.fit_weighted(x, y, w);
  EXPECT_NEAR(tree.predict_one(std::vector<double>{0.5}), 10.0 / 101.0, 1e-12);
}

TEST(DecisionTree, MisuseErrors) {
  DecisionTree tree;
  EXPECT_THROW((void)tree.predict_one(std::vector<double>{1.0}), Error);
  TreeParams bad;
  bad.max_depth = 0;
  EXPECT_THROW(DecisionTree{bad}, Error);
  const Matrix x = Matrix::from_rows({{1.0}});
  EXPECT_THROW(tree.fit(x, std::vector<double>{1.0, 2.0}), Error);
}

}  // namespace
}  // namespace gmd::ml
