// Thread-count invariance: fits, CV scores, and grid rankings must be
// bit-identical whether they run serially or fan out on the pool, and
// every model family's batch predict must return exactly the per-row
// predict_one values.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "gmd/common/rng.hpp"
#include "gmd/ml/dataset.hpp"
#include "gmd/ml/forest.hpp"
#include "gmd/ml/gbt.hpp"
#include "gmd/ml/gp.hpp"
#include "gmd/ml/linear.hpp"
#include "gmd/ml/model_selection.hpp"
#include "gmd/ml/svr.hpp"
#include "gmd/ml/tree.hpp"

namespace gmd::ml {
namespace {

struct TestData {
  Matrix x;
  std::vector<double> y;
};

TestData make_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  TestData data;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.next_double();
    const double b = static_cast<double>(rng.next_below(6));
    const double c = static_cast<double>(rng.next_below(10)) * 0.5;
    rows.push_back({a, b, c});
    data.y.push_back(std::cos(3.0 * a) + 0.4 * b - 0.2 * c * c +
                     0.05 * rng.next_normal());
  }
  data.x = Matrix::from_rows(rows);
  return data;
}

Dataset make_dataset(std::size_t n, std::uint64_t seed) {
  const TestData data = make_data(n, seed);
  Dataset ds;
  ds.X = data.x;
  ds.y = data.y;
  ds.feature_names = {"a", "b", "c"};
  ds.target_name = "t";
  return ds;
}

template <typename Model>
std::string serialized(const Model& model) {
  std::ostringstream os;
  model.write(os);
  return os.str();
}

TEST(ThreadInvariance, ForestFitIsIdenticalAcrossThreadCounts) {
  const TestData data = make_data(160, 3);
  ForestParams params;
  params.num_trees = 24;
  params.seed = 17;
  std::string baseline;
  for (const std::size_t threads : {1u, 2u, 5u}) {
    params.num_threads = threads;
    RandomForest model(params);
    model.fit(data.x, data.y);
    const std::string text = serialized(model);
    if (baseline.empty()) {
      baseline = text;
    } else {
      EXPECT_EQ(baseline, text) << "num_threads " << threads;
    }
  }
}

TEST(ThreadInvariance, GbtSplitSearchIsIdenticalAcrossThreadCounts) {
  const TestData data = make_data(300, 9);
  GbtParams params;
  params.num_stages = 25;
  params.seed = 21;
  // Force the per-feature parallel split search to actually engage on
  // this small dataset.
  params.parallel_min_rows = 1;
  std::string baseline;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    params.num_threads = threads;
    GradientBoosting model(params);
    model.fit(data.x, data.y);
    const std::string text = serialized(model);
    if (baseline.empty()) {
      baseline = text;
    } else {
      EXPECT_EQ(baseline, text) << "num_threads " << threads;
    }
  }
}

TEST(ThreadInvariance, CrossValidationScoresAreIdentical) {
  const Dataset ds = make_dataset(120, 31);
  GbtParams gbt;
  gbt.num_stages = 20;
  const GradientBoosting prototype(gbt);

  CvOptions serial;
  serial.num_threads = 1;
  const CvScores a = cross_validate(prototype, ds, serial);
  CvOptions parallel;
  parallel.num_threads = 4;
  const CvScores b = cross_validate(prototype, ds, parallel);
  ASSERT_EQ(a.fold_mse.size(), b.fold_mse.size());
  for (std::size_t f = 0; f < a.fold_mse.size(); ++f) {
    EXPECT_EQ(a.fold_mse[f], b.fold_mse[f]);
    EXPECT_EQ(a.fold_r2[f], b.fold_r2[f]);
  }
  // And the options overload with defaults matches the legacy entry
  // point exactly.
  const CvScores legacy = cross_validate(prototype, ds, 5, 1);
  for (std::size_t f = 0; f < a.fold_mse.size(); ++f) {
    EXPECT_EQ(a.fold_mse[f], legacy.fold_mse[f]);
  }
}

TEST(ThreadInvariance, GridSearchRankingIsIdentical) {
  const Dataset ds = make_dataset(90, 37);
  const std::vector<double> cs{1.0, 10.0, 100.0};
  const std::vector<double> gammas{0.5, 2.0};
  const std::vector<double> epsilons{0.01};

  CvOptions serial;
  serial.folds = 4;
  serial.num_threads = 1;
  const GridSearchResult a =
      grid_search_svr(ds, cs, gammas, epsilons, serial);
  CvOptions parallel = serial;
  parallel.num_threads = 6;
  const GridSearchResult b =
      grid_search_svr(ds, cs, gammas, epsilons, parallel);

  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t c = 0; c < a.candidates.size(); ++c) {
    EXPECT_EQ(a.candidates[c].params, b.candidates[c].params);
    ASSERT_EQ(a.candidates[c].scores.fold_mse.size(),
              b.candidates[c].scores.fold_mse.size());
    for (std::size_t f = 0; f < a.candidates[c].scores.fold_mse.size();
         ++f) {
      EXPECT_EQ(a.candidates[c].scores.fold_mse[f],
                b.candidates[c].scores.fold_mse[f]);
    }
  }
}

TEST(BatchPredict, MatchesPredictOneForEveryFamily) {
  const TestData train = make_data(100, 41);
  const TestData query = make_data(60, 43);

  std::vector<std::unique_ptr<Regressor>> models;
  models.push_back(std::make_unique<LinearRegression>());
  models.push_back(std::make_unique<Svr>());
  models.push_back(std::make_unique<DecisionTree>());
  {
    ForestParams params;
    params.num_trees = 12;
    models.push_back(std::make_unique<RandomForest>(params));
  }
  {
    GbtParams params;
    params.num_stages = 15;
    models.push_back(std::make_unique<GradientBoosting>(params));
  }
  models.push_back(std::make_unique<GaussianProcess>());

  for (const auto& model : models) {
    model->fit(train.x, train.y);
    const std::vector<double> batch = model->predict(query.x);
    ASSERT_EQ(batch.size(), query.x.rows()) << model->name();
    for (std::size_t r = 0; r < query.x.rows(); ++r) {
      EXPECT_EQ(batch[r], model->predict_one(query.x.row(r)))
          << model->name() << " row " << r;
    }
  }
}

TEST(BatchPredict, GpBatchVarianceMatchesPerRow) {
  const TestData train = make_data(50, 47);
  const TestData query = make_data(30, 53);
  GaussianProcess gp;
  gp.fit(train.x, train.y);

  std::vector<double> means;
  std::vector<double> variances;
  gp.predict_with_variance(query.x, means, variances);
  ASSERT_EQ(means.size(), query.x.rows());
  ASSERT_EQ(variances.size(), query.x.rows());
  for (std::size_t r = 0; r < query.x.rows(); ++r) {
    const auto [mean, variance] = gp.predict_with_variance(query.x.row(r));
    EXPECT_EQ(means[r], mean) << "row " << r;
    EXPECT_EQ(variances[r], variance) << "row " << r;
  }
}

}  // namespace
}  // namespace gmd::ml
