// Golden-equivalence suite for the workspace training engine, modeled
// on tests/memsim/test_equivalence.cpp: the presorted fast path must
// produce the *same* model as the reference per-node-sort engine —
// identical structure, thresholds, leaf values, and gains, compared
// through the 17-digit text serialization.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "gmd/common/rng.hpp"
#include "gmd/ml/forest.hpp"
#include "gmd/ml/gbt.hpp"
#include "gmd/ml/metrics.hpp"
#include "gmd/ml/serialize.hpp"
#include "gmd/ml/tree.hpp"

namespace gmd::ml {
namespace {

struct TestData {
  Matrix x;
  std::vector<double> y;
};

/// Mixed-texture dataset: continuous, duplicated, constant, and
/// grid-valued features with a nonlinear response.
TestData make_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  TestData data;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.next_double();
    const double b = static_cast<double>(rng.next_below(6));
    const double c = 1.5;  // constant feature: never splittable
    const double d = static_cast<double>(rng.next_below(12)) * 0.25;
    rows.push_back({a, b, c, d});
    data.y.push_back(std::sin(4.0 * a) + 0.3 * b * b - 0.8 * d +
                     0.05 * rng.next_normal());
  }
  data.x = Matrix::from_rows(rows);
  return data;
}

template <typename Model>
std::string serialized(const Model& model) {
  std::ostringstream os;
  model.write(os);
  return os.str();
}

TEST(TreeEquivalence, ExactEngineMatchesReference) {
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    const TestData data = make_data(150, seed);
    TreeParams reference;
    reference.reference_mode = true;
    TreeParams workspace;
    DecisionTree a(reference), b(workspace);
    a.fit(data.x, data.y);
    b.fit(data.x, data.y);
    EXPECT_EQ(serialized(a), serialized(b)) << "seed " << seed;
  }
}

TEST(TreeEquivalence, WeightedFitMatchesReference) {
  const TestData data = make_data(120, 5);
  Rng rng(99);
  std::vector<double> weights;
  weights.reserve(data.y.size());
  for (std::size_t i = 0; i < data.y.size(); ++i) {
    weights.push_back(0.5 + rng.next_double());
  }
  TreeParams reference;
  reference.reference_mode = true;
  DecisionTree a(reference), b;
  a.fit_weighted(data.x, data.y, weights);
  b.fit_weighted(data.x, data.y, weights);
  EXPECT_EQ(serialized(a), serialized(b));
}

TEST(TreeEquivalence, RandomFeatureSubsetsMatchReference) {
  // max_features engages the per-node feature shuffle; both engines
  // must consume the rng identically.
  const TestData data = make_data(130, 11);
  for (const std::size_t max_features : {1u, 2u, 3u}) {
    TreeParams reference;
    reference.reference_mode = true;
    reference.max_features = max_features;
    reference.seed = 1234;
    TreeParams workspace;
    workspace.max_features = max_features;
    workspace.seed = 1234;
    DecisionTree a(reference), b(workspace);
    a.fit(data.x, data.y);
    b.fit(data.x, data.y);
    EXPECT_EQ(serialized(a), serialized(b))
        << "max_features " << max_features;
  }
}

TEST(TreeEquivalence, DepthAndLeafLimitsMatchReference) {
  const TestData data = make_data(140, 17);
  TreeParams reference;
  reference.reference_mode = true;
  reference.max_depth = 4;
  reference.min_samples_leaf = 5;
  reference.min_samples_split = 12;
  TreeParams workspace = reference;
  workspace.reference_mode = false;
  DecisionTree a(reference), b(workspace);
  a.fit(data.x, data.y);
  b.fit(data.x, data.y);
  EXPECT_EQ(serialized(a), serialized(b));
}

TEST(ForestEquivalence, BootstrapForestMatchesReference) {
  const TestData data = make_data(100, 29);
  ForestParams reference;
  reference.num_trees = 15;
  reference.seed = 7;
  reference.num_threads = 2;
  reference.reference_mode = true;
  ForestParams workspace = reference;
  workspace.reference_mode = false;
  RandomForest a(reference), b(workspace);
  a.fit(data.x, data.y);
  b.fit(data.x, data.y);
  EXPECT_EQ(serialized(a), serialized(b));
}

TEST(ForestEquivalence, NoBootstrapWithFeatureSubsetsMatchesReference) {
  const TestData data = make_data(90, 31);
  ForestParams reference;
  reference.num_trees = 10;
  reference.bootstrap = false;
  reference.max_features = 2;
  reference.seed = 3;
  reference.num_threads = 2;
  reference.reference_mode = true;
  ForestParams workspace = reference;
  workspace.reference_mode = false;
  RandomForest a(reference), b(workspace);
  a.fit(data.x, data.y);
  b.fit(data.x, data.y);
  EXPECT_EQ(serialized(a), serialized(b));
}

TEST(GbtEquivalence, FullSampleBoostingMatchesReference) {
  const TestData data = make_data(110, 37);
  GbtParams reference;
  reference.num_stages = 40;
  reference.seed = 5;
  reference.reference_mode = true;
  GbtParams workspace = reference;
  workspace.reference_mode = false;
  GradientBoosting a(reference), b(workspace);
  a.fit(data.x, data.y);
  b.fit(data.x, data.y);
  EXPECT_EQ(serialized(a), serialized(b));
}

TEST(GbtEquivalence, SubsampledBoostingMatchesReference) {
  const TestData data = make_data(100, 41);
  GbtParams reference;
  reference.num_stages = 30;
  reference.subsample = 0.7;
  reference.seed = 13;
  reference.reference_mode = true;
  GbtParams workspace = reference;
  workspace.reference_mode = false;
  GradientBoosting a(reference), b(workspace);
  a.fit(data.x, data.y);
  b.fit(data.x, data.y);
  EXPECT_EQ(serialized(a), serialized(b));
}

TEST(HistogramMode, LosslessWhenEveryFeatureFitsTheBins) {
  // All features here have few distinct values, so histogram cuts are
  // exactly the midpoint thresholds the exact search emits: the tree
  // picks the same splits and leaves.  (The recorded gains sum the
  // node's rows bucket-by-bucket, so only they may differ in the last
  // ulps — structure, thresholds, and predictions must be identical.)
  Rng rng(43);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (std::size_t i = 0; i < 200; ++i) {
    const double a = static_cast<double>(rng.next_below(8));
    const double b = static_cast<double>(rng.next_below(4)) * 10.0;
    rows.push_back({a, b});
    y.push_back(a * a - 2.0 * b + 0.1 * rng.next_normal());
  }
  const Matrix x = Matrix::from_rows(rows);

  TreeParams exact;
  TreeParams hist;
  hist.split_mode = TreeParams::SplitMode::kHistogram;
  hist.max_bins = 16;
  DecisionTree a(exact), b(hist);
  a.fit(x, y);
  b.fit(x, y);
  EXPECT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.depth(), b.depth());
  const std::vector<double> pa = a.predict(x);
  const std::vector<double> pb = b.predict(x);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i], pb[i]) << "row " << i;
  }
}

TEST(HistogramMode, ApproximatesContinuousDataWell) {
  const TestData data = make_data(400, 47);
  GbtParams hist;
  hist.num_stages = 60;
  hist.split_mode = TreeParams::SplitMode::kHistogram;
  hist.max_bins = 64;
  GradientBoosting model(hist);
  model.fit(data.x, data.y);
  EXPECT_GT(r2_score(data.y, model.predict(data.x)), 0.9);
}

TEST(HistogramMode, ForestRoundTripsThroughSerialization) {
  const TestData data = make_data(80, 53);
  ForestParams params;
  params.num_trees = 8;
  params.split_mode = TreeParams::SplitMode::kHistogram;
  params.max_bins = 32;
  params.num_threads = 2;
  RandomForest model(params);
  model.fit(data.x, data.y);

  std::stringstream ss;
  save_model(ss, model);
  const auto loaded = load_model(ss);
  const std::vector<double> before = model.predict(data.x);
  const std::vector<double> after = loaded->predict(data.x);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]);
  }
}

}  // namespace
}  // namespace gmd::ml
