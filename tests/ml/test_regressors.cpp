#include "gmd/ml/regressor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gmd/common/error.hpp"
#include "gmd/common/rng.hpp"
#include "gmd/ml/metrics.hpp"

namespace gmd::ml {
namespace {

void sample_dse_like(std::size_t n, std::uint64_t seed, Matrix* x,
                     std::vector<double>* y) {
  // Mimics the DSE dataset: a few scaled features, a smooth response
  // with one interaction.
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  y->clear();
  for (std::size_t i = 0; i < n; ++i) {
    const double cpu = rng.next_double();
    const double ctrl = rng.next_double();
    const double ch = rng.next_bool(0.5) ? 0.0 : 1.0;
    rows.push_back({cpu, ctrl, ch});
    y->push_back(0.5 * cpu * ctrl + 0.3 * ctrl - 0.2 * ch + 0.1);
  }
  *x = Matrix::from_rows(rows);
}

class RegressorFamily : public testing::TestWithParam<const char*> {};

TEST_P(RegressorFamily, FactoryCreatesWorkingModel) {
  const auto model = make_regressor(GetParam(), 7);
  ASSERT_NE(model, nullptr);
  EXPECT_FALSE(model->is_fitted());

  Matrix x;
  std::vector<double> y;
  sample_dse_like(200, 1, &x, &y);
  model->fit(x, y);
  EXPECT_TRUE(model->is_fitted());
  EXPECT_GT(r2_score(y, model->predict(x)), 0.8) << GetParam();
}

TEST_P(RegressorFamily, CloneMatchesOriginalPredictions) {
  const auto model = make_regressor(GetParam(), 7);
  Matrix x;
  std::vector<double> y;
  sample_dse_like(100, 2, &x, &y);
  model->fit(x, y);
  const auto copy = model->clone();
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(copy->predict_one(x.row(i)), model->predict_one(x.row(i)))
        << GetParam();
  }
}

TEST_P(RegressorFamily, RefitReplacesModel) {
  const auto model = make_regressor(GetParam(), 7);
  Matrix x;
  std::vector<double> y;
  sample_dse_like(100, 3, &x, &y);
  model->fit(x, y);
  // Retrain on a shifted target; predictions must follow.
  std::vector<double> shifted(y);
  for (double& v : shifted) v += 100.0;
  model->fit(x, shifted);
  EXPECT_GT(model->predict_one(x.row(0)), 50.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, RegressorFamily,
                         testing::Values("linear", "svr", "rf", "gb", "gp",
                                         "tree"),
                         [](const testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

TEST(RegressorFactory, AcceptsSvmAlias) {
  EXPECT_EQ(make_regressor("svm")->name(), "svr");
  EXPECT_EQ(make_regressor("SVR")->name(), "svr");
}

TEST(RegressorFactory, UnknownNameThrows) {
  EXPECT_THROW(make_regressor("deepnet"), Error);
}

TEST(RegressorFactory, Table1NamesMatchPaperColumns) {
  EXPECT_EQ(table1_model_names(),
            (std::vector<std::string>{"linear", "svr", "rf", "gb"}));
}

TEST(Regressors, NonlinearTargetSeparatesLinearFromKernels) {
  // y depends on sin(x): linear must underfit, SVR must not.
  Rng rng(4);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    const double a = rng.next_double();
    rows.push_back({a});
    y.push_back(std::sin(8.0 * a));
  }
  const Matrix x = Matrix::from_rows(rows);
  const auto linear = make_regressor("linear");
  const auto svr = make_regressor("svr");
  linear->fit(x, y);
  svr->fit(x, y);
  const double linear_r2 = r2_score(y, linear->predict(x));
  const double svr_r2 = r2_score(y, svr->predict(x));
  EXPECT_LT(linear_r2, 0.5);
  EXPECT_GT(svr_r2, 0.95);
}

}  // namespace
}  // namespace gmd::ml
