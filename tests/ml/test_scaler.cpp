#include "gmd/ml/scaler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "gmd/common/error.hpp"

namespace gmd::ml {
namespace {

TEST(MinMaxScaler, MapsColumnsToUnitInterval) {
  const Matrix x = Matrix::from_rows({{0.0, 100.0}, {5.0, 200.0}, {10.0, 150.0}});
  MinMaxScaler scaler;
  const Matrix t = scaler.fit_transform(x);
  EXPECT_DOUBLE_EQ(t.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t.at(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(t.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(t.at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(t.at(2, 1), 0.5);
}

TEST(MinMaxScaler, ConstantColumnMapsToZero) {
  const Matrix x = Matrix::from_rows({{5.0}, {5.0}});
  MinMaxScaler scaler;
  const Matrix t = scaler.fit_transform(x);
  EXPECT_DOUBLE_EQ(t.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 0.0);
}

TEST(MinMaxScaler, TransformUsesTrainingRange) {
  const Matrix train = Matrix::from_rows({{0.0}, {10.0}});
  MinMaxScaler scaler;
  scaler.fit(train);
  const Matrix test = Matrix::from_rows({{20.0}});
  EXPECT_DOUBLE_EQ(scaler.transform(test).at(0, 0), 2.0);  // extrapolates
}

TEST(MinMaxScaler, ScalarSeriesRoundTrip) {
  const std::vector<double> values{10.0, 20.0, 40.0};
  MinMaxScaler scaler;
  scaler.fit(std::span<const double>(values));
  const auto scaled = scaler.transform(values);
  EXPECT_DOUBLE_EQ(scaled[0], 0.0);
  EXPECT_DOUBLE_EQ(scaled[2], 1.0);
  const auto back = scaler.inverse_transform(scaled);
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_NEAR(back[i], values[i], 1e-12);
}

TEST(MinMaxScaler, ErrorsOnMisuse) {
  MinMaxScaler scaler;
  EXPECT_THROW(scaler.transform(Matrix(1, 1)), Error);
  scaler.fit(Matrix::from_rows({{1.0, 2.0}}));
  EXPECT_THROW(scaler.transform(Matrix(1, 3)), Error);
  EXPECT_THROW(scaler.fit(Matrix{}), Error);
}

TEST(MinMaxScaler, NonFiniteMatrixValueIsTypedInvalidData) {
  // A single NaN or Inf would silently poison the fitted min/max and
  // every later transform; fit must reject it with a typed code so
  // callers (the dataset builder) can quarantine instead of crash.
  for (const double poison :
       {std::nan(""), std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity()}) {
    MinMaxScaler scaler;
    try {
      scaler.fit(Matrix::from_rows({{1.0, 2.0}, {3.0, poison}}));
      FAIL() << "accepted non-finite value " << poison;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kInvalidData) << e.what();
    }
    EXPECT_FALSE(scaler.fitted()) << "a failed fit must not half-fit";
  }
}

TEST(MinMaxScaler, NonFiniteTargetValueIsTypedInvalidData) {
  MinMaxScaler scaler;
  const std::vector<double> values = {1.0, std::nan(""), 3.0};
  try {
    scaler.fit(values);
    FAIL() << "accepted a NaN target";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidData) << e.what();
  }
}

TEST(StandardScaler, ZeroMeanUnitVariance) {
  const Matrix x = Matrix::from_rows({{1.0}, {3.0}, {5.0}});
  StandardScaler scaler;
  const Matrix t = scaler.fit_transform(x);
  EXPECT_NEAR(t.at(0, 0) + t.at(1, 0) + t.at(2, 0), 0.0, 1e-12);
  EXPECT_NEAR(scaler.means()[0], 3.0, 1e-12);
  // Population stddev of {1,3,5} is sqrt(8/3).
  EXPECT_NEAR(scaler.stddevs()[0], std::sqrt(8.0 / 3.0), 1e-12);
}

TEST(StandardScaler, ConstantColumnMapsToZero) {
  const Matrix x = Matrix::from_rows({{2.0}, {2.0}, {2.0}});
  StandardScaler scaler;
  const Matrix t = scaler.fit_transform(x);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(t.at(r, 0), 0.0);
}

}  // namespace
}  // namespace gmd::ml
