#include "gmd/ml/serialize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "gmd/common/error.hpp"
#include "gmd/common/rng.hpp"
#include "gmd/ml/gp.hpp"
#include "gmd/ml/metrics.hpp"
#include "gmd/ml/svr.hpp"

namespace gmd::ml {
namespace {

void sample_data(std::size_t n, std::uint64_t seed, Matrix* x,
                 std::vector<double>* y) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  y->clear();
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.next_double();
    const double b = rng.next_double();
    rows.push_back({a, b});
    y->push_back(std::sin(3.0 * a) + b * b);
  }
  *x = Matrix::from_rows(rows);
}

class SerializableFamily : public testing::TestWithParam<const char*> {};

TEST_P(SerializableFamily, RoundTripPredictsIdentically) {
  Matrix x;
  std::vector<double> y;
  sample_data(150, 1, &x, &y);
  const auto model = make_regressor(GetParam(), 3);
  model->fit(x, y);

  std::stringstream ss;
  save_model(ss, *model);
  const auto restored = load_model(ss);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->name(), model->name());
  EXPECT_TRUE(restored->is_fitted());
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_DOUBLE_EQ(restored->predict_one(x.row(i)),
                     model->predict_one(x.row(i)))
        << GetParam() << " sample " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSerializable, SerializableFamily,
                         testing::Values("linear", "svr", "tree", "rf", "gb"),
                         [](const testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

TEST(Serialize, FileRoundTrip) {
  Matrix x;
  std::vector<double> y;
  sample_data(60, 2, &x, &y);
  const auto model = make_regressor("linear");
  model->fit(x, y);
  const std::string path = testing::TempDir() + "/gmd_model_test.txt";
  save_model_file(path, *model);
  const auto restored = load_model_file(path);
  EXPECT_DOUBLE_EQ(restored->predict_one(x.row(0)),
                   model->predict_one(x.row(0)));
}

TEST(Serialize, UnfittedModelRejected) {
  const auto model = make_regressor("linear");
  std::stringstream ss;
  EXPECT_THROW(save_model(ss, *model), Error);
}

TEST(Serialize, GaussianProcessUnsupported) {
  Matrix x;
  std::vector<double> y;
  sample_data(20, 3, &x, &y);
  GaussianProcess gp;
  gp.fit(x, y);
  std::stringstream ss;
  EXPECT_THROW(save_model(ss, gp), Error);
}

TEST(Serialize, MalformedInputRejected) {
  std::stringstream not_a_model("hello world");
  EXPECT_THROW(load_model(not_a_model), Error);
  std::stringstream bad_family("gmd-model-v1 transformer\n");
  EXPECT_THROW(load_model(bad_family), Error);
  std::stringstream truncated("gmd-model-v1 linear\nlinear 0 1.5 3\n0.1\n");
  EXPECT_THROW(load_model(truncated), Error);
}

TEST(Serialize, SvrStoresOnlySupportVectors) {
  Matrix x;
  std::vector<double> y;
  sample_data(200, 4, &x, &y);
  SvrParams params;
  params.epsilon = 0.1;  // wide tube -> few support vectors
  Svr model(params);
  model.fit(x, y);
  ASSERT_LT(model.num_support_vectors(), 150u);

  std::stringstream ss;
  model.write(ss);
  const Svr restored = Svr::read(ss);
  EXPECT_EQ(restored.num_support_vectors(), model.num_support_vectors());
  EXPECT_NEAR(restored.predict_one(x.row(5)), model.predict_one(x.row(5)),
              1e-12);
}

// Scaler bounds round-trip bit-exactly (17 significant digits), so a
// restored deployment scales features identically to the original.
TEST(Serialize, ScalerRoundTripIsExact) {
  Matrix x;
  std::vector<double> y;
  sample_data(64, 9, &x, &y);
  MinMaxScaler scaler;
  scaler.fit(x);

  std::stringstream ss;
  save_scaler(ss, scaler);
  const MinMaxScaler restored = load_scaler(ss);
  ASSERT_TRUE(restored.fitted());
  EXPECT_EQ(restored.mins(), scaler.mins());
  EXPECT_EQ(restored.maxs(), scaler.maxs());

  const Matrix a = scaler.transform(x);
  const Matrix b = restored.transform(x);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      EXPECT_EQ(a.row(r)[c], b.row(r)[c]);
    }
  }
}

TEST(Serialize, ScalerRejectsBadInput) {
  MinMaxScaler unfitted;
  std::stringstream ss;
  EXPECT_THROW(save_scaler(ss, unfitted), Error);

  std::stringstream bad("gmd-scaler-v1 zscore 2\n0 0\n1 1\n");
  EXPECT_THROW((void)load_scaler(bad), Error);
  std::stringstream truncated("gmd-scaler-v1 minmax 3\n0 0 0\n1 1\n");
  EXPECT_THROW((void)load_scaler(truncated), Error);

  EXPECT_THROW((void)MinMaxScaler::from_bounds({1.0}, {0.0}), Error);
  EXPECT_THROW((void)MinMaxScaler::from_bounds({}, {}), Error);
  EXPECT_THROW((void)MinMaxScaler::from_bounds({0.0, 1.0}, {1.0}), Error);
}

}  // namespace
}  // namespace gmd::ml
