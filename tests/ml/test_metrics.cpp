#include "gmd/ml/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "gmd/common/error.hpp"

namespace gmd::ml {
namespace {

TEST(Metrics, PerfectPrediction) {
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mse(y, y), 0.0);
  EXPECT_DOUBLE_EQ(rmse(y, y), 0.0);
  EXPECT_DOUBLE_EQ(mae(y, y), 0.0);
  EXPECT_DOUBLE_EQ(r2_score(y, y), 1.0);
}

TEST(Metrics, KnownValues) {
  const std::vector<double> truth{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> pred{1.0, 2.0, 3.0, 2.0};  // one error of 2
  EXPECT_DOUBLE_EQ(mse(truth, pred), 1.0);
  EXPECT_DOUBLE_EQ(rmse(truth, pred), 1.0);
  EXPECT_DOUBLE_EQ(mae(truth, pred), 0.5);
  // ss_res = 4; ss_tot = 5 -> r2 = 0.2.
  EXPECT_NEAR(r2_score(truth, pred), 0.2, 1e-12);
}

TEST(Metrics, MeanPredictorScoresZeroR2) {
  const std::vector<double> truth{1.0, 2.0, 3.0};
  const std::vector<double> pred{2.0, 2.0, 2.0};
  EXPECT_NEAR(r2_score(truth, pred), 0.0, 1e-12);
}

TEST(Metrics, WorseThanMeanIsNegative) {
  const std::vector<double> truth{1.0, 2.0, 3.0};
  const std::vector<double> pred{3.0, 2.0, 1.0};
  EXPECT_LT(r2_score(truth, pred), 0.0);
}

TEST(Metrics, ConstantTruthEdgeCases) {
  const std::vector<double> truth{5.0, 5.0};
  const std::vector<double> exact{5.0, 5.0};
  const std::vector<double> off{5.0, 6.0};
  EXPECT_DOUBLE_EQ(r2_score(truth, exact), 1.0);
  EXPECT_DOUBLE_EQ(r2_score(truth, off), 0.0);
}

TEST(Metrics, ShapeErrors) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_THROW(mse(a, b), Error);
  EXPECT_THROW((void)r2_score({}, {}), Error);
}

}  // namespace
}  // namespace gmd::ml
