#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "gmd/common/error.hpp"
#include "gmd/common/rng.hpp"
#include "gmd/ml/forest.hpp"
#include "gmd/ml/workspace.hpp"
#include "gmd/ml/gbt.hpp"
#include "gmd/ml/metrics.hpp"
#include "gmd/ml/tree.hpp"

namespace gmd::ml {
namespace {

void sample_friedman_like(std::size_t n, std::uint64_t seed, Matrix* x,
                          std::vector<double>* y, double noise = 0.0) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  y->clear();
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.next_double();
    const double b = rng.next_double();
    const double c = rng.next_double();
    rows.push_back({a, b, c});
    y->push_back(std::sin(3.0 * a) + 2.0 * b * b + 0.5 * c +
                 noise * rng.next_normal());
  }
  *x = Matrix::from_rows(rows);
}

TEST(RandomForest, FitsNonlinearSurface) {
  Matrix x;
  std::vector<double> y;
  sample_friedman_like(400, 1, &x, &y);
  ForestParams params;
  params.num_trees = 60;
  params.num_threads = 2;
  RandomForest model(params);
  model.fit(x, y);
  EXPECT_GT(r2_score(y, model.predict(x)), 0.95);

  Matrix xt;
  std::vector<double> yt;
  sample_friedman_like(100, 2, &xt, &yt);
  EXPECT_GT(r2_score(yt, model.predict(xt)), 0.85);
}

TEST(RandomForest, DeterministicForFixedSeed) {
  Matrix x;
  std::vector<double> y;
  sample_friedman_like(150, 3, &x, &y);
  ForestParams params;
  params.num_trees = 20;
  params.seed = 42;
  params.num_threads = 3;
  RandomForest a(params), b(params);
  a.fit(x, y);
  b.fit(x, y);
  // Parallel build must not change the result.
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.predict_one(x.row(i)), b.predict_one(x.row(i)));
  }
}

TEST(RandomForest, MoreTreesSmoothVariance) {
  Matrix x;
  std::vector<double> y;
  sample_friedman_like(200, 4, &x, &y, 0.2);
  Matrix xt;
  std::vector<double> yt;
  sample_friedman_like(100, 5, &xt, &yt, 0.0);

  ForestParams few;
  few.num_trees = 2;
  ForestParams many;
  many.num_trees = 80;
  RandomForest small(few), big(many);
  small.fit(x, y);
  big.fit(x, y);
  EXPECT_LT(mse(yt, big.predict(xt)), mse(yt, small.predict(xt)));
}

TEST(RandomForest, BootstrapOffUsesAllRows) {
  Matrix x;
  std::vector<double> y;
  sample_friedman_like(100, 6, &x, &y);
  ForestParams params;
  params.bootstrap = false;
  params.num_trees = 5;
  RandomForest model(params);
  model.fit(x, y);
  EXPECT_EQ(model.num_trees(), 5u);
  EXPECT_GT(r2_score(y, model.predict(x)), 0.9);
}

TEST(RandomForest, RejectsZeroTrees) {
  ForestParams params;
  params.num_trees = 0;
  EXPECT_THROW(RandomForest{params}, Error);
}

TEST(GradientBoosting, FitsNonlinearSurface) {
  Matrix x;
  std::vector<double> y;
  sample_friedman_like(400, 7, &x, &y);
  GradientBoosting model;
  model.fit(x, y);
  EXPECT_GT(r2_score(y, model.predict(x)), 0.98);

  Matrix xt;
  std::vector<double> yt;
  sample_friedman_like(100, 8, &xt, &yt);
  EXPECT_GT(r2_score(yt, model.predict(xt)), 0.9);
}

TEST(GradientBoosting, FirstStageStartsFromMean) {
  const Matrix x = Matrix::from_rows({{0.0}, {1.0}});
  const std::vector<double> y{2.0, 4.0};
  GbtParams params;
  params.num_stages = 1;
  params.learning_rate = 0.1;
  GradientBoosting model(params);
  model.fit(x, y);
  EXPECT_DOUBLE_EQ(model.initial_prediction(), 3.0);
}

TEST(GradientBoosting, MoreStagesReduceTrainingError) {
  Matrix x;
  std::vector<double> y;
  sample_friedman_like(300, 9, &x, &y);
  GbtParams few;
  few.num_stages = 5;
  GbtParams many;
  many.num_stages = 200;
  GradientBoosting small(few), big(many);
  small.fit(x, y);
  big.fit(x, y);
  EXPECT_LT(mse(y, big.predict(x)), mse(y, small.predict(x)) / 2.0);
}

TEST(GradientBoosting, SubsamplingStillLearns) {
  Matrix x;
  std::vector<double> y;
  sample_friedman_like(300, 10, &x, &y);
  GbtParams params;
  params.subsample = 0.5;
  GradientBoosting model(params);
  model.fit(x, y);
  EXPECT_GT(r2_score(y, model.predict(x)), 0.95);
}

TEST(GradientBoosting, DeterministicForFixedSeed) {
  Matrix x;
  std::vector<double> y;
  sample_friedman_like(150, 11, &x, &y);
  GbtParams params;
  params.subsample = 0.7;
  params.seed = 99;
  GradientBoosting a(params), b(params);
  a.fit(x, y);
  b.fit(x, y);
  EXPECT_DOUBLE_EQ(a.predict_one(x.row(0)), b.predict_one(x.row(0)));
}

TEST(GradientBoosting, RejectsBadHyperparameters) {
  GbtParams bad;
  bad.learning_rate = 0.0;
  EXPECT_THROW(GradientBoosting{bad}, Error);
  bad = GbtParams{};
  bad.subsample = 1.5;
  EXPECT_THROW(GradientBoosting{bad}, Error);
  bad = GbtParams{};
  bad.num_stages = 0;
  EXPECT_THROW(GradientBoosting{bad}, Error);
}

TEST(ForestEquivalence, FitWithWorkspaceMatchesGatheredFit) {
  Matrix pool_x;
  std::vector<double> pool_y;
  sample_friedman_like(200, 11, &pool_x, &pool_y);
  const TrainingWorkspace base = TrainingWorkspace::build(pool_x);

  // An arbitrary labeled subset, deliberately unsorted.
  const std::vector<std::size_t> sample = {7,  150, 3,  42, 99, 11, 180,
                                           63, 5,   27, 81, 122};
  std::vector<double> y;
  for (const std::size_t i : sample) y.push_back(pool_y[i]);

  ForestParams params;
  params.num_trees = 24;
  params.seed = 3;
  RandomForest via_workspace(params);
  via_workspace.fit_with_workspace(base, pool_x, sample, y);
  RandomForest via_gather(params);
  via_gather.fit(pool_x.gather_rows(sample), y);

  Matrix xt;
  std::vector<double> yt;
  sample_friedman_like(64, 12, &xt, &yt);
  EXPECT_EQ(via_workspace.predict(xt), via_gather.predict(xt));
}

TEST(ForestEquivalence, FitWithWorkspaceMisuseErrors) {
  Matrix pool_x;
  std::vector<double> pool_y;
  sample_friedman_like(40, 13, &pool_x, &pool_y);
  const TrainingWorkspace base = TrainingWorkspace::build(pool_x);
  RandomForest model{ForestParams{}};
  const std::vector<std::size_t> sample = {1, 2, 3};
  const std::vector<double> y = {0.0, 1.0};  // size mismatch
  EXPECT_THROW(model.fit_with_workspace(base, pool_x, sample, y), Error);
  const std::vector<std::size_t> out_of_range = {1, 2, 40};
  const std::vector<double> y3 = {0.0, 1.0, 2.0};
  EXPECT_THROW(model.fit_with_workspace(base, pool_x, out_of_range, y3),
               Error);
}

TEST(ForestEquivalence, SpreadMeansBitIdenticalToPredict) {
  Matrix x;
  std::vector<double> y;
  sample_friedman_like(300, 14, &x, &y, 0.2);
  ForestParams params;
  params.num_trees = 40;
  RandomForest model(params);
  model.fit(x, y);

  Matrix xt;
  std::vector<double> yt;
  sample_friedman_like(90, 15, &xt, &yt);
  std::vector<double> means, variances;
  model.predict_with_spread(xt, means, variances);
  EXPECT_EQ(means, model.predict(xt));
  for (const double v : variances) EXPECT_GE(v, 0.0);
  // A noisy surface must produce genuine across-tree disagreement.
  EXPECT_GT(*std::max_element(variances.begin(), variances.end()), 0.0);
}

}  // namespace
}  // namespace gmd::ml
