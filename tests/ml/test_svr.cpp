#include "gmd/ml/svr.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gmd/common/error.hpp"
#include "gmd/common/rng.hpp"
#include "gmd/ml/metrics.hpp"

namespace gmd::ml {
namespace {

/// Samples x in [0,1]^2 and y = f(x) for a smooth nonlinear target.
void sample_nonlinear(std::size_t n, std::uint64_t seed, Matrix* x,
                      std::vector<double>* y) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  y->clear();
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.next_double();
    const double b = rng.next_double();
    rows.push_back({a, b});
    y->push_back(std::sin(3.0 * a) * 0.5 + b * b);
  }
  *x = Matrix::from_rows(rows);
}

TEST(Svr, FitsLinearFunctionWithLinearKernel) {
  SvrParams params;
  params.kernel.type = KernelType::kLinear;
  params.epsilon = 0.001;
  Svr model(params);
  Rng rng(3);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 60; ++i) {
    const double a = rng.next_double();
    rows.push_back({a});
    y.push_back(0.8 * a + 0.1);
  }
  const Matrix x = Matrix::from_rows(rows);
  model.fit(x, y);
  EXPECT_GT(r2_score(y, model.predict(x)), 0.999);
}

TEST(Svr, FitsNonlinearFunctionWithRbf) {
  Matrix x;
  std::vector<double> y;
  sample_nonlinear(150, 4, &x, &y);
  SvrParams params;
  params.kernel.gamma = 2.0;
  Svr model(params);
  model.fit(x, y);
  EXPECT_GT(r2_score(y, model.predict(x)), 0.99);

  // Generalization on held-out samples.
  Matrix xt;
  std::vector<double> yt;
  sample_nonlinear(50, 5, &xt, &yt);
  EXPECT_GT(r2_score(yt, model.predict(xt)), 0.97);
}

TEST(Svr, EpsilonTubeSparsifiesSupportVectors) {
  Matrix x;
  std::vector<double> y;
  sample_nonlinear(100, 6, &x, &y);
  SvrParams tight;
  tight.epsilon = 0.0005;
  SvrParams loose;
  loose.epsilon = 0.1;
  Svr model_tight(tight), model_loose(loose);
  model_tight.fit(x, y);
  model_loose.fit(x, y);
  EXPECT_LT(model_loose.num_support_vectors(),
            model_tight.num_support_vectors());
}

TEST(Svr, PredictionsWithinEpsilonPlusSlack) {
  Matrix x;
  std::vector<double> y;
  sample_nonlinear(80, 7, &x, &y);
  SvrParams params;
  params.epsilon = 0.02;
  params.kernel.gamma = 4.0;
  Svr model(params);
  model.fit(x, y);
  const auto pred = model.predict(x);
  // With a generous C the training error should be near the tube width.
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_LT(std::abs(pred[i] - y[i]), 0.1) << "sample " << i;
  }
}

TEST(Svr, ConvergesBeforeMaxPassesAtCoarseTolerance) {
  Matrix x;
  std::vector<double> y;
  sample_nonlinear(60, 8, &x, &y);
  SvrParams params;
  params.tolerance = 1e-2;
  Svr model(params);
  model.fit(x, y);
  EXPECT_LT(model.passes_used(), params.max_passes);
}

TEST(Svr, DualCoefficientsRespectBox) {
  Matrix x;
  std::vector<double> y;
  sample_nonlinear(60, 9, &x, &y);
  SvrParams params;
  params.c = 1.0;
  Svr model(params);
  model.fit(x, y);
  for (const double b : model.dual_coefficients()) {
    EXPECT_GE(b, -1.0 - 1e-12);
    EXPECT_LE(b, 1.0 + 1e-12);
  }
}

TEST(Svr, PolynomialKernelWorks) {
  SvrParams params;
  params.kernel.type = KernelType::kPolynomial;
  params.kernel.degree = 2;
  Svr model(params);
  Rng rng(10);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 80; ++i) {
    const double a = rng.next_double_in(-1.0, 1.0);
    rows.push_back({a});
    y.push_back(a * a);
  }
  const Matrix x = Matrix::from_rows(rows);
  model.fit(x, y);
  EXPECT_GT(r2_score(y, model.predict(x)), 0.99);
}

TEST(Svr, MisuseErrors) {
  Svr model;
  EXPECT_THROW((void)model.predict_one(std::vector<double>{0.0}), Error);
  SvrParams bad;
  bad.c = 0.0;
  EXPECT_THROW(Svr{bad}, Error);
  bad = SvrParams{};
  bad.epsilon = -0.1;
  EXPECT_THROW(Svr{bad}, Error);
}

TEST(Svr, CloneKeepsFittedState) {
  Matrix x;
  std::vector<double> y;
  sample_nonlinear(40, 11, &x, &y);
  Svr model;
  model.fit(x, y);
  const auto copy = model.clone();
  const std::vector<double> probe{0.3, 0.7};
  EXPECT_DOUBLE_EQ(copy->predict_one(probe), model.predict_one(probe));
}

}  // namespace
}  // namespace gmd::ml
