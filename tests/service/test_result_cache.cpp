#include "gmd/service/result_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <functional>

#include "gmd/common/deadline.hpp"
#include "gmd/common/thread_pool.hpp"
#include "gmd/cpusim/workloads.hpp"
#include "gmd/graph/generators.hpp"
#include "gmd/tracestore/reader.hpp"
#include "gmd/tracestore/writer.hpp"

namespace gmd::service {
namespace {

dse::DesignPoint sample_point() {
  dse::DesignPoint point;
  point.kind = dse::MemoryKind::kNvm;
  point.cpu_freq_mhz = 3333;
  point.ctrl_freq_mhz = 666;
  point.channels = 4;
  point.trcd = 50;
  return point;
}

TEST(SimulateCacheKey, SensitiveToTracePointAndGeometry) {
  const dse::DesignPoint point = sample_point();
  dse::SimulateOptions options;
  const std::uint64_t base = simulate_cache_key(1, point, options);

  // Trace content participates.
  EXPECT_NE(simulate_cache_key(2, point, options), base);

  // Every DesignPoint field participates.
  for (const auto& mutate : std::vector<std::function<void(dse::DesignPoint&)>>{
           [](auto& p) { p.kind = dse::MemoryKind::kDram; },
           [](auto& p) { ++p.cpu_freq_mhz; },
           [](auto& p) { ++p.ctrl_freq_mhz; },
           [](auto& p) { ++p.channels; },
           [](auto& p) { ++p.trcd; },
           [](auto& p) { p.dram_fraction = 0.25; }}) {
    dse::DesignPoint changed = point;
    mutate(changed);
    EXPECT_NE(simulate_cache_key(1, changed, options), base);
  }

  // Sampled geometry forks the key; every sampling field participates.
  dse::SimulateOptions sampled = options;
  sampled.sample_fraction = 0.5;
  const std::uint64_t sampled_key = simulate_cache_key(1, point, sampled);
  EXPECT_NE(sampled_key, base);
  dse::SimulateOptions seed = sampled;
  seed.sample_seed = 9;
  EXPECT_NE(simulate_cache_key(1, point, seed), sampled_key);
  dse::SimulateOptions warmup = sampled;
  warmup.sample_warmup_chunks = 3;
  EXPECT_NE(simulate_cache_key(1, point, warmup), sampled_key);
  dse::SimulateOptions window = sampled;
  window.sampling_chunk_events = 5000;
  EXPECT_NE(simulate_cache_key(1, point, window), sampled_key);
}

TEST(SimulateCacheKey, IdentityNeutralFieldsDoNotFork) {
  const dse::DesignPoint point = sample_point();
  dse::SimulateOptions options;
  const std::uint64_t base = simulate_cache_key(1, point, options);

  // sim_workers never changes results (bit-identical replay), so it
  // must not fragment the cache.
  dse::SimulateOptions workers = options;
  workers.sim_workers = 8;
  EXPECT_EQ(simulate_cache_key(1, point, workers), base);

  // Dormant sampling geometry (exhaustive request) is identity-neutral,
  // mirroring the sweep journal.
  dse::SimulateOptions dormant = options;
  dormant.sample_seed = 123;
  dormant.sample_warmup_chunks = 7;
  dormant.sampling_chunk_events = 777;
  EXPECT_EQ(simulate_cache_key(1, point, dormant), base);

  // Warm feeds are an implementation detail, not an identity.
  dse::SimulateOptions deadline = options;
  Deadline token;
  deadline.deadline = &token;
  EXPECT_EQ(simulate_cache_key(1, point, deadline), base);
}

TEST(ResultCache, HitReturnsTheExactStoredRow) {
  ResultCache cache(4);
  auto row = std::make_shared<const dse::MetricsRow>();
  cache.put(1, row);
  const ResultCache::Row hit = cache.get(1);
  // The hit is the same object — trivially bit-identical to what the
  // fresh simulation stored.
  EXPECT_EQ(hit.get(), row.get());
  EXPECT_EQ(cache.get(2), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ResultCache, EvictionIsDeterministic) {
  // Same access sequence, same survivors — replayed three times.
  std::vector<std::uint64_t> survivors_reference;
  for (int round = 0; round < 3; ++round) {
    ResultCache cache(8, /*num_shards=*/1);
    for (std::uint64_t k = 0; k < 32; ++k) {
      cache.put(k, std::make_shared<const dse::MetricsRow>());
      if (k % 3 == 0) (void)cache.get(k / 2);
    }
    std::vector<std::uint64_t> survivors;
    for (std::uint64_t k = 0; k < 32; ++k) {
      if (cache.get(k) != nullptr) survivors.push_back(k);
    }
    EXPECT_EQ(survivors.size(), 8u);
    if (round == 0) {
      survivors_reference = survivors;
    } else {
      EXPECT_EQ(survivors, survivors_reference);
    }
  }
}

// Deterministic simulation is what makes a cache hit equivalent to
// re-simulating: the row a future hit returns must match what a fresh
// simulate_point would produce bit for bit.
TEST(ResultCache, CachedRowMatchesFreshSimulation) {
  const std::string path =
      testing::TempDir() + "/gmd_result_cache_store.gmdt";
  std::filesystem::remove(path);
  graph::UniformRandomParams params;
  params.num_vertices = 96;
  params.edge_factor = 8;
  graph::EdgeList list = graph::generate_uniform_random(params);
  graph::symmetrize(list);
  const auto g = graph::CsrGraph::from_edge_list(list);
  cpusim::VectorSink sink;
  cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
  cpusim::BfsWorkload(g, 0).run(cpu);
  tracestore::write_trace_store(path, sink.events());
  tracestore::TraceStoreReader store(path);

  const dse::DesignPoint point = sample_point();
  ResultCache cache(4);
  const std::uint64_t key =
      simulate_cache_key(store.content_checksum(), point, {});
  cache.put(key, std::make_shared<const dse::MetricsRow>(
                     dse::simulate_point(store, point)));

  const ResultCache::Row hit = cache.get(key);
  ASSERT_NE(hit, nullptr);
  const dse::MetricsRow fresh = dse::simulate_point(store, point);
  EXPECT_EQ(hit->metrics.metric_values(), fresh.metrics.metric_values());
  EXPECT_EQ(hit->metrics.row_hits, fresh.metrics.row_hits);
  EXPECT_EQ(hit->metrics.execution_seconds, fresh.metrics.execution_seconds);
  std::filesystem::remove(path);
}

// Shared rows under concurrent mixed get/put from a ThreadPool: counts
// stay balanced and every returned row is a valid shared_ptr.
TEST(ResultCache, ConcurrentAccessUnderThreadPool) {
  ResultCache cache(64, 8);
  ThreadPool pool(8);
  std::atomic<std::uint64_t> returned{0};
  for (std::size_t t = 0; t < 16; ++t) {
    pool.submit([&cache, &returned, t] {
      std::uint64_t state = 0x9E3779B97F4A7C15ULL * (t + 1);
      for (int k = 0; k < 500; ++k) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const std::uint64_t key = (state >> 33) % 128;
        if (state & 1) {
          auto row = std::make_shared<const dse::MetricsRow>();
          cache.put(key, std::move(row));
        } else if (const ResultCache::Row row = cache.get(key)) {
          returned.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  pool.wait();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, returned.load());
  EXPECT_LE(cache.size(), cache.capacity());
}

}  // namespace
}  // namespace gmd::service
