#include "gmd/service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "gmd/cpusim/workloads.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/surrogate.hpp"
#include "gmd/dse/sweep.hpp"
#include "gmd/graph/generators.hpp"
#include "gmd/memsim/metrics.hpp"
#include "gmd/tracestore/reader.hpp"
#include "gmd/tracestore/writer.hpp"

namespace gmd::service {
namespace {

/// Shared fixtures (store + deployed model on disk) built once: the
/// sweep that trains the model is the expensive part.
class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(testing::TempDir() + "/gmd_service_test");
    std::filesystem::create_directories(*dir_);
    store_path_ = new std::string(*dir_ + "/workload.gmdt");

    graph::UniformRandomParams params;
    params.num_vertices = 96;
    params.edge_factor = 8;
    graph::EdgeList list = graph::generate_uniform_random(params);
    graph::symmetrize(list);
    const auto g = graph::CsrGraph::from_edge_list(list);
    cpusim::VectorSink sink;
    cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
    cpusim::BfsWorkload(g, 0).run(cpu);
    tracestore::TraceStoreWriterOptions wopts;
    wopts.events_per_chunk = 2000;
    tracestore::write_trace_store(*store_path_, sink.events(), wopts);

    // Every 4th reduced-space point: enough rows to train on, and the
    // reference rows for bit-identity checks.
    const std::vector<dse::DesignPoint> space = dse::reduced_design_space();
    points_ = new std::vector<dse::DesignPoint>();
    for (std::size_t i = 0; i < space.size(); i += 4) {
      points_->push_back(space[i]);
    }
    tracestore::TraceStoreReader store(*store_path_);
    rows_ = new std::vector<dse::SweepRow>(dse::run_sweep(*points_, store));

    model_path_ = new std::string(*dir_ + "/bandwidth.gmdm");
    dse::SurrogateSuite::deploy(*rows_, "bandwidth_mbs", "linear")
        .save_file(*model_path_);
  }

  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete dir_;
    delete store_path_;
    delete model_path_;
    delete points_;
    delete rows_;
  }

  /// A service with the fixture store + model pre-registered.
  static std::unique_ptr<Service> make_service(ServiceOptions options = {}) {
    auto service = std::make_unique<Service>(options);
    service->traces().register_store("bfs", *store_path_);
    service->models().register_model("bw", *model_path_);
    return service;
  }

  static Json simulate_request(std::span<const dse::DesignPoint> points) {
    Json request;
    request["verb"] = "simulate";
    request["trace"] = "bfs";
    Json::Array array;
    for (const auto& point : points) {
      array.push_back(design_point_to_json(point));
    }
    request["points"] = Json(std::move(array));
    return request;
  }

  static std::string* dir_;
  static std::string* store_path_;
  static std::string* model_path_;
  static std::vector<dse::DesignPoint>* points_;
  static std::vector<dse::SweepRow>* rows_;
};

std::string* ServiceTest::dir_ = nullptr;
std::string* ServiceTest::store_path_ = nullptr;
std::string* ServiceTest::model_path_ = nullptr;
std::vector<dse::DesignPoint>* ServiceTest::points_ = nullptr;
std::vector<dse::SweepRow>* ServiceTest::rows_ = nullptr;

/// Collects async responses and lets tests block for a target count.
struct SinkCollector {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<Json> responses;

  Service::ResponseSink sink() {
    return [this](std::string line) {
      Json parsed = Json::parse(line);
      const std::lock_guard<std::mutex> lock(mutex);
      responses.push_back(std::move(parsed));
      cv.notify_all();
    };
  }
  std::vector<Json> wait_for(std::size_t count) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return responses.size() >= count; });
    return responses;
  }
};

TEST_F(ServiceTest, HealthAndStatsAnswerSynchronously) {
  auto service = make_service();
  const Json health = Json::parse(service->handle(R"({"verb":"health"})"));
  EXPECT_TRUE(health.bool_or("ok", false));
  EXPECT_EQ(health.string_or("status", ""), "ok");

  const Json stats = Json::parse(service->handle(R"({"verb":"stats"})"));
  EXPECT_TRUE(stats.bool_or("ok", false));
  EXPECT_EQ(stats.at("traces").as_number(), 1.0);
  EXPECT_EQ(stats.at("models").as_number(), 1.0);
  EXPECT_EQ(stats.at("cache").at("capacity").as_number(), 4096.0);
  EXPECT_GE(stats.at("scheduler").at("threads").as_number(), 1.0);
  EXPECT_EQ(stats.at("requests").at("received").as_number(), 2.0);
}

TEST_F(ServiceTest, RegistersTraceAndModelThroughTheProtocol) {
  Service service;
  Json register_trace;
  register_trace["verb"] = "register_trace";
  register_trace["alias"] = "bfs";
  register_trace["path"] = *store_path_;
  const Json trace_ack = Json::parse(service.handle(register_trace.dump()));
  ASSERT_TRUE(trace_ack.bool_or("ok", false)) << trace_ack.dump();
  EXPECT_EQ(trace_ack.at("checksum").as_string().size(), 16u);

  Json register_model;
  register_model["verb"] = "register_model";
  register_model["name"] = "bw";
  register_model["path"] = *model_path_;
  const Json model_ack = Json::parse(service.handle(register_model.dump()));
  ASSERT_TRUE(model_ack.bool_or("ok", false)) << model_ack.dump();
  EXPECT_EQ(model_ack.string_or("family", ""), "linear");

  // Both resources are immediately usable.
  const Json response = Json::parse(
      service.handle(simulate_request(std::span(*points_).first(1)).dump()));
  EXPECT_TRUE(response.bool_or("ok", false)) << response.dump();
}

// The heart of the cache contract: a service answer — cold or cached —
// carries exactly the numbers run_sweep produced for the same store and
// points, surviving the %.17g JSON round-trip bit for bit.
TEST_F(ServiceTest, SimulateMatchesRunSweepAndCacheHitsAreIdentical) {
  auto service = make_service();
  const auto slice = std::span(*points_).first(6);
  const Json request = simulate_request(slice);

  const Json cold = Json::parse(service->handle(request.dump()));
  ASSERT_TRUE(cold.bool_or("ok", false)) << cold.dump();
  EXPECT_EQ(cold.number_or("cache_hits", -1.0), 0.0);
  const Json warm = Json::parse(service->handle(request.dump()));
  ASSERT_TRUE(warm.bool_or("ok", false)) << warm.dump();
  EXPECT_EQ(warm.number_or("cache_hits", -1.0),
            static_cast<double>(slice.size()));

  for (const Json* response : {&cold, &warm}) {
    const bool cached = response == &warm;
    const Json::Array& rows = response->at("rows").as_array();
    ASSERT_EQ(rows.size(), slice.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i].bool_or("cached", !cached), cached);
      const auto names = memsim::MemoryMetrics::metric_names();
      const auto values = (*rows_)[i].metrics.metric_values();
      for (std::size_t m = 0; m < names.size(); ++m) {
        EXPECT_EQ(rows[i].at("metrics").at(std::string(names[m])).as_number(),
                  values[m])
            << (cached ? "cached" : "cold") << " row " << i << " metric "
            << names[m];
      }
    }
  }
}

TEST_F(ServiceTest, PredictMatchesTheDeployedModelExactly) {
  auto service = make_service();
  Json request;
  request["verb"] = "predict";
  request["model"] = "bw";
  Json::Array array;
  for (const auto& point : *points_) {
    array.push_back(design_point_to_json(point));
  }
  request["points"] = Json(std::move(array));
  const Json response = Json::parse(service->handle(request.dump()));
  ASSERT_TRUE(response.bool_or("ok", false)) << response.dump();
  EXPECT_EQ(response.string_or("family", ""), "linear");

  const auto model = service->models().find("bw");
  const std::vector<double> expected = model->predict(*points_);
  const Json::Array& values = response.at("values").as_array();
  ASSERT_EQ(values.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(values[i].as_number(), expected[i]) << i;
  }
}

TEST_F(ServiceTest, RecommendPicksTheArgBestCandidate) {
  auto service = make_service();
  Json request;
  request["verb"] = "recommend";
  request["metric"] = "bandwidth_mbs";
  request["model"] = "bw";
  Json::Array array;
  for (const auto& point : *points_) {
    array.push_back(design_point_to_json(point));
  }
  request["points"] = Json(std::move(array));
  const Json response = Json::parse(service->handle(request.dump()));
  ASSERT_TRUE(response.bool_or("ok", false)) << response.dump();
  EXPECT_EQ(response.string_or("direction", ""), "maximize");
  EXPECT_EQ(response.number_or("candidates", 0.0),
            static_cast<double>(points_->size()));

  const auto model = service->models().find("bw");
  const std::vector<double> predicted = model->predict(*points_);
  std::size_t best = 0;
  for (std::size_t i = 1; i < predicted.size(); ++i) {
    if (predicted[i] > predicted[best]) best = i;
  }
  EXPECT_EQ(response.at("value").as_number(), predicted[best]);
  EXPECT_EQ(response.at("best").at("id").as_string(), (*points_)[best].id());
}

TEST_F(ServiceTest, UnknownResourcesAnswerNotFound) {
  auto service = make_service();
  Json simulate = simulate_request(std::span(*points_).first(1));
  simulate["trace"] = "nope";
  const Json trace_miss = Json::parse(service->handle(simulate.dump()));
  EXPECT_FALSE(trace_miss.bool_or("ok", true));
  EXPECT_EQ(trace_miss.at("error").string_or("code", ""), "not-found");

  Json predict;
  predict["verb"] = "predict";
  predict["model"] = "nope";
  predict["points"] = Json(Json::Array{design_point_to_json((*points_)[0])});
  const Json model_miss = Json::parse(service->handle(predict.dump()));
  EXPECT_FALSE(model_miss.bool_or("ok", true));
  EXPECT_EQ(model_miss.at("error").string_or("code", ""), "not-found");
}

TEST_F(ServiceTest, MalformedLinesProduceExactlyOneErrorResponse) {
  auto service = make_service();
  for (const char* bad :
       {"{not json", R"({"id":9})", R"({"verb":"no_such_verb","id":9})",
        R"({"verb":"simulate","id":9,"trace":"bfs","points":[]})"}) {
    SinkCollector collector;
    service->handle_line(bad, collector.sink());
    const std::vector<Json> responses = collector.wait_for(1);
    ASSERT_EQ(responses.size(), 1u) << bad;
    EXPECT_FALSE(responses[0].bool_or("ok", true)) << bad;
    EXPECT_FALSE(
        responses[0].at("error").string_or("message", "").empty())
        << bad;
  }
}

TEST_F(ServiceTest, ExpiredDeadlineAnswersTimeoutEvenWhenCached) {
  auto service = make_service();
  Json request = simulate_request(std::span(*points_).first(1));
  const Json primed = Json::parse(service->handle(request.dump()));
  ASSERT_TRUE(primed.bool_or("ok", false));

  request["deadline_ms"] = 0.000001;
  const Json response = Json::parse(service->handle(request.dump()));
  EXPECT_FALSE(response.bool_or("ok", true));
  EXPECT_EQ(response.at("error").string_or("code", ""), "timeout");
}

TEST_F(ServiceTest, TinyQueueShedsLoadWithTypedOverloadErrors) {
  ServiceOptions options;
  options.num_threads = 1;
  options.max_queue_depth = 1;
  auto service = make_service(options);

  // First request simulates every fixture point (long-running on the
  // single worker); the burst behind it must overflow the depth-1 queue.
  constexpr std::size_t kBurst = 16;
  SinkCollector collector;
  const auto sink = collector.sink();
  service->handle_line(simulate_request(*points_).dump(), sink);
  for (std::size_t k = 0; k < kBurst; ++k) {
    // Distinct frequencies defeat the result cache.
    dse::DesignPoint point = (*points_)[0];
    point.cpu_freq_mhz = 1000 + 17 * static_cast<std::uint32_t>(k);
    service->handle_line(simulate_request({&point, 1}).dump(), sink);
  }

  const std::vector<Json> responses = collector.wait_for(kBurst + 1);
  std::size_t succeeded = 0;
  std::size_t overloaded = 0;
  for (const Json& response : responses) {
    if (response.bool_or("ok", false)) {
      ++succeeded;
    } else if (response.at("error").string_or("code", "") == "overloaded") {
      ++overloaded;
    }
  }
  EXPECT_GE(succeeded, 1u);
  EXPECT_GE(overloaded, 1u);
  EXPECT_EQ(succeeded + overloaded, kBurst + 1);

  // Shedding is recoverable: the service still answers afterwards.
  const Json health = Json::parse(service->handle(R"({"verb":"health"})"));
  EXPECT_TRUE(health.bool_or("ok", false));
}

TEST_F(ServiceTest, ConcurrentMixedLoadCompletesEveryRequest) {
  auto service = make_service();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 8;
  SinkCollector collector;
  const auto sink = collector.sink();

  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (std::size_t k = 0; k < kPerThread; ++k) {
        Json request;
        switch ((t + k) % 4) {
          case 0: {
            const std::size_t at = (t * kPerThread + k) % points_->size();
            request = simulate_request(std::span(*points_).subspan(at, 1));
            break;
          }
          case 1: {
            request["verb"] = "predict";
            request["model"] = "bw";
            request["points"] =
                Json(Json::Array{design_point_to_json((*points_)[t])});
            break;
          }
          case 2: {
            request["verb"] = "recommend";
            request["metric"] = "bandwidth_mbs";
            request["model"] = "bw";
            break;
          }
          default: request["verb"] = "health"; break;
        }
        service->handle_line(request.dump(), sink);
      }
    });
  }
  for (auto& thread : clients) thread.join();

  const std::vector<Json> responses = collector.wait_for(kThreads * kPerThread);
  ASSERT_EQ(responses.size(), kThreads * kPerThread);
  for (const Json& response : responses) {
    EXPECT_TRUE(response.bool_or("ok", false)) << response.dump();
  }
}

TEST_F(ServiceTest, DrainCompletesAcceptedWorkAndRefusesNew) {
  auto service = make_service();
  SinkCollector collector;
  const auto sink = collector.sink();
  constexpr std::size_t kAccepted = 8;
  for (std::size_t k = 0; k < kAccepted; ++k) {
    service->handle_line(
        simulate_request(std::span(*points_).subspan(k, 1)).dump(), sink);
  }
  service->drain();
  EXPECT_TRUE(service->draining());

  // Every accepted request answered before drain() returned.
  {
    const std::lock_guard<std::mutex> lock(collector.mutex);
    ASSERT_EQ(collector.responses.size(), kAccepted);
    for (const Json& response : collector.responses) {
      EXPECT_TRUE(response.bool_or("ok", false)) << response.dump();
    }
  }

  // Sync verbs still answer (reporting the drain); async verbs are
  // refused with a typed cancellation.
  const Json health = Json::parse(service->handle(R"({"verb":"health"})"));
  EXPECT_EQ(health.string_or("status", ""), "draining");
  const Json refused = Json::parse(
      service->handle(simulate_request(std::span(*points_).first(1)).dump()));
  EXPECT_FALSE(refused.bool_or("ok", true));
  EXPECT_EQ(refused.at("error").string_or("code", ""), "cancelled");
}

TEST_F(ServiceTest, SampledSimulationReportsConfidenceIntervals) {
  auto service = make_service();
  // Single-tech point so the sampled run has chunked replay to sample.
  dse::DesignPoint point = (*points_)[0];
  point.kind = dse::MemoryKind::kDram;
  Json request = simulate_request({&point, 1});
  request["sampling"]["fraction"] = 0.5;
  request["sampling"]["seed"] = 7;
  request["sampling"]["chunk_events"] = 500;
  const Json response = Json::parse(service->handle(request.dump()));
  ASSERT_TRUE(response.bool_or("ok", false)) << response.dump();
  const Json& row = response.at("rows").as_array()[0];
  ASSERT_FALSE(row.at("ci").is_null());
  EXPECT_FALSE(row.at("ci").as_array().empty());

  // Same geometry is a cache hit; different seed is not.
  const Json warm = Json::parse(service->handle(request.dump()));
  EXPECT_EQ(warm.number_or("cache_hits", -1.0), 1.0);
  request["sampling"]["seed"] = 8;
  const Json reseeded = Json::parse(service->handle(request.dump()));
  EXPECT_EQ(reseeded.number_or("cache_hits", -1.0), 0.0);
}

}  // namespace
}  // namespace gmd::service
