#include "gmd/service/json.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gmd/common/error.hpp"

namespace gmd::service {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_EQ(Json::parse("-3.25e2").as_number(), -325.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNested) {
  const Json value = Json::parse(
      R"({"verb":"simulate","points":[{"kind":"dram","channels":2}],)"
      R"("nested":{"a":[1,2,3]}})");
  EXPECT_EQ(value.at("verb").as_string(), "simulate");
  EXPECT_EQ(value.at("points").as_array().size(), 1u);
  EXPECT_EQ(value.at("points").as_array()[0].at("channels").as_number(), 2.0);
  EXPECT_EQ(value.at("nested").at("a").as_array()[2].as_number(), 3.0);
}

TEST(Json, DumpIsDeterministicAndSorted) {
  Json object;
  object["zeta"] = 1;
  object["alpha"] = true;
  object["mid"] = "x";
  EXPECT_EQ(object.dump(), R"({"alpha":true,"mid":"x","zeta":1})");
  // Same value built in another insertion order dumps identically.
  Json other;
  other["mid"] = "x";
  other["alpha"] = true;
  other["zeta"] = 1;
  EXPECT_EQ(other.dump(), object.dump());
}

TEST(Json, DoublesRoundTripExactly) {
  for (const double v : {0.1, 1.0 / 3.0, 6.02214076e23, -2.5e-308,
                         123456789.123456789, 0.3333333333333333}) {
    Json object;
    object["v"] = v;
    const Json back = Json::parse(object.dump());
    EXPECT_EQ(back.at("v").as_number(), v) << object.dump();
  }
}

TEST(Json, IntegralValuesPrintWithoutDecoration) {
  Json object;
  object["n"] = 12345;
  object["neg"] = -7;
  EXPECT_EQ(object.dump(), R"({"n":12345,"neg":-7})");
}

TEST(Json, StringEscapesRoundTrip) {
  const std::string nasty = "line\nbreak \"quoted\" back\\slash \t tab";
  Json object;
  object["s"] = nasty;
  EXPECT_EQ(Json::parse(object.dump()).at("s").as_string(), nasty);
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Json::parse("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
  EXPECT_THROW((void)Json::parse("\"\\ud83d\""), Error);
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "01x", "\"unterminated",
        "{\"a\":1} trailing", "nan", "[1 2]"}) {
    EXPECT_THROW((void)Json::parse(bad), Error) << bad;
  }
}

TEST(Json, RejectsDeepNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_THROW((void)Json::parse(deep), Error);
}

TEST(Json, TypedAccessorsThrowOnMismatch) {
  const Json value = Json::parse(R"({"n":1,"s":"x"})");
  EXPECT_THROW((void)value.at("n").as_string(), Error);
  EXPECT_THROW((void)value.at("s").as_number(), Error);
  EXPECT_THROW((void)value.string_or("n", "d"), Error);
  EXPECT_EQ(value.number_or("n", 0.0), 1.0);
  EXPECT_EQ(value.number_or("absent", 7.0), 7.0);
  EXPECT_EQ(value.string_or("absent", "d"), "d");
  EXPECT_TRUE(value.at("absent").is_null());
}

TEST(Json, NonFiniteNumbersCannotSerialize) {
  Json object;
  object["v"] = std::nan("");
  EXPECT_THROW((void)object.dump(), Error);
}

}  // namespace
}  // namespace gmd::service
