#include "gmd/service/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "gmd/common/error.hpp"

namespace gmd::service {
namespace {

// Blocks the single pump thread until released, so tests can stage the
// queue contents deterministically.
struct Gate {
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::promise<void> entered;

  std::function<void()> task() {
    return [this] {
      entered.set_value();
      released.wait();
    };
  }
  void wait_until_running() { entered.get_future().wait(); }
  void open() { release.set_value(); }
};

TEST(Scheduler, ExecutesSubmittedTasks) {
  Scheduler::Options options;
  options.num_threads = 4;
  Scheduler scheduler(options);
  std::atomic<int> ran{0};
  for (int k = 0; k < 32; ++k) {
    scheduler.submit(Priority::kInteractive, [&ran] { ++ran; });
  }
  scheduler.shutdown();
  EXPECT_EQ(ran.load(), 32);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.accepted, 32u);
  EXPECT_EQ(stats.executed, 32u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(Scheduler, InteractiveDrainsBeforeBulk) {
  Scheduler::Options options;
  options.num_threads = 1;
  Scheduler scheduler(options);
  Gate gate;
  scheduler.submit(Priority::kInteractive, gate.task());
  gate.wait_until_running();

  // Staged while the only pump is parked: bulk enqueued first, yet the
  // interactive lane must drain first.
  std::mutex mutex;
  std::vector<int> order;
  auto record = [&mutex, &order](int tag) {
    return [&mutex, &order, tag] {
      const std::lock_guard<std::mutex> lock(mutex);
      order.push_back(tag);
    };
  };
  scheduler.submit(Priority::kBulk, record(1));
  scheduler.submit(Priority::kBulk, record(2));
  scheduler.submit(Priority::kInteractive, record(100));
  scheduler.submit(Priority::kInteractive, record(101));

  gate.open();
  scheduler.shutdown();
  EXPECT_EQ(order, (std::vector<int>{100, 101, 1, 2}));
}

TEST(Scheduler, RejectsWhenQueueIsFull) {
  Scheduler::Options options;
  options.num_threads = 1;
  options.max_queue_depth = 2;
  Scheduler scheduler(options);
  Gate gate;
  scheduler.submit(Priority::kInteractive, gate.task());
  gate.wait_until_running();

  std::atomic<int> ran{0};
  scheduler.submit(Priority::kBulk, [&ran] { ++ran; });
  scheduler.submit(Priority::kInteractive, [&ran] { ++ran; });
  try {
    scheduler.submit(Priority::kBulk, [&ran] { ++ran; });
    FAIL() << "expected Error(kOverloaded)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOverloaded);
  }

  gate.open();
  scheduler.shutdown();
  // Accepted work still ran; the shed task never did.
  EXPECT_EQ(ran.load(), 2);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.accepted, 3u);  // Gate + the two queued tasks.
  EXPECT_EQ(stats.rejected, 1u);
}

TEST(Scheduler, SubmitAfterShutdownThrowsCancelled) {
  Scheduler::Options options;
  options.num_threads = 2;
  Scheduler scheduler(options);
  scheduler.shutdown();
  EXPECT_TRUE(scheduler.draining());
  try {
    scheduler.submit(Priority::kInteractive, [] {});
    FAIL() << "expected Error(kCancelled)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled);
  }
  // Idempotent.
  scheduler.shutdown();
}

TEST(Scheduler, ShutdownDrainsEveryAcceptedTask) {
  Scheduler::Options options;
  options.num_threads = 1;
  Scheduler scheduler(options);
  Gate gate;
  scheduler.submit(Priority::kInteractive, gate.task());
  gate.wait_until_running();
  std::atomic<int> ran{0};
  for (int k = 0; k < 16; ++k) {
    scheduler.submit(k % 2 ? Priority::kBulk : Priority::kInteractive,
                     [&ran] { ++ran; });
  }
  EXPECT_EQ(scheduler.queue_depth(), 16u);
  gate.open();
  scheduler.shutdown();
  EXPECT_EQ(ran.load(), 16);
}

TEST(Scheduler, ThrowingTaskDoesNotKillThePump) {
  Scheduler::Options options;
  options.num_threads = 1;
  Scheduler scheduler(options);
  std::atomic<int> ran{0};
  scheduler.submit(Priority::kInteractive,
                   [] { throw Error(ErrorCode::kUnspecified, "boom"); });
  scheduler.submit(Priority::kInteractive, [&ran] { ++ran; });
  scheduler.shutdown();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(scheduler.stats().executed, 2u);
}

}  // namespace
}  // namespace gmd::service
