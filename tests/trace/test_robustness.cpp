/// Robustness of the file-facing trace layers against the messy inputs
/// real pipelines produce: CRLF endings, missing final newlines,
/// interleaved noise, and unsorted traces.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "gmd/common/error.hpp"
#include "gmd/memsim/memory_system.hpp"
#include "gmd/trace/converter.hpp"
#include "gmd/trace/formats.hpp"

namespace gmd::trace {
namespace {

TEST(TraceRobustness, Gem5ParserAcceptsCrlfLines) {
  const MemoryEvent event{10, 0x100, 8, false};
  const std::string line = format_gem5_line(event) + " .\r";
  const auto parsed = parse_gem5_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, event);
}

TEST(TraceRobustness, NvmainParserAcceptsCrlfLines) {
  const auto parsed = parse_nvmain_line("10 R 0x100 0x0 0\r");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tick, 10u);
}

TEST(TraceRobustness, ConverterHandlesMissingTrailingNewline) {
  const std::string dir = testing::TempDir();
  const std::string in_path = dir + "/gmd_rob_in.txt";
  const std::string out_path = dir + "/gmd_rob_out.txt";
  {
    std::ofstream out(in_path);
    out << format_gem5_line({1, 0x100, 8, false}) << " .\n";
    out << format_gem5_line({2, 0x140, 8, true}) << " .";  // no newline
  }
  const ConvertStats stats = convert_gem5_to_nvmain(in_path, out_path);
  EXPECT_EQ(stats.events_out, 2u);
}

TEST(TraceRobustness, ConverterHandlesCrlfFile) {
  const std::string dir = testing::TempDir();
  const std::string in_path = dir + "/gmd_rob_crlf.txt";
  const std::string out_path = dir + "/gmd_rob_crlf_out.txt";
  {
    std::ofstream out(in_path, std::ios::binary);
    for (int i = 0; i < 50; ++i) {
      out << format_gem5_line({static_cast<std::uint64_t>(i), 0x100u + i * 64,
                               8, false})
          << " .\r\n";
    }
  }
  ConvertOptions options;
  options.chunk_bytes = 256;  // multiple chunks across CRLF boundaries
  const ConvertStats stats =
      convert_gem5_to_nvmain(in_path, out_path, options);
  EXPECT_EQ(stats.events_out, 50u);
  std::ifstream check(out_path);
  EXPECT_EQ(read_nvmain_trace(check).size(), 50u);
}

TEST(TraceRobustness, ConverterChunkBoundaryCannotSplitEvents) {
  // Exhaustive mini-sweep of chunk sizes around line lengths: the
  // output must be identical regardless of chunking.
  const std::string dir = testing::TempDir();
  const std::string in_path = dir + "/gmd_rob_chunks.txt";
  {
    std::ofstream out(in_path);
    for (int i = 0; i < 200; ++i) {
      out << format_gem5_line({static_cast<std::uint64_t>(i) * 3,
                               0x1000u + i * 64, 8, i % 2 == 0})
          << " .\n";
    }
  }
  std::string reference;
  for (const std::size_t chunk : {1u, 17u, 64u, 100u, 1000u, 1u << 20}) {
    const std::string out_path =
        dir + "/gmd_rob_chunks_out_" + std::to_string(chunk) + ".txt";
    ConvertOptions options;
    options.chunk_bytes = chunk;
    convert_gem5_to_nvmain(in_path, out_path, options);
    std::ifstream in(out_path);
    std::stringstream content;
    content << in.rdbuf();
    if (reference.empty()) {
      reference = content.str();
      EXPECT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(content.str(), reference) << "chunk " << chunk;
    }
  }
}

TEST(TraceRobustness, SkippedLineBudgetFailsWithTraceError) {
  const std::string dir = testing::TempDir();
  const std::string in_path = dir + "/gmd_rob_budget.txt";
  const std::string out_path = dir + "/gmd_rob_budget_out.txt";
  {
    std::ofstream out(in_path);
    out << format_gem5_line({1, 0x100, 8, false}) << " .\n";
    out << "garbage line one\n";
    out << "garbage line two\n";
    out << format_gem5_line({2, 0x140, 8, true}) << " .\n";
    out << "garbage line three\n";
  }
  ConvertOptions options;
  options.max_skipped_lines = 2;
  try {
    convert_gem5_to_nvmain(in_path, out_path, options);
    FAIL() << "budget of 2 with 3 malformed lines must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTrace);
    const std::string what = e.what();
    EXPECT_NE(what.find("garbage line one"), std::string::npos) << what;
    EXPECT_NE(what.find("budget 2"), std::string::npos) << what;
  }
  // The output file must not have been written.
  std::ifstream check(out_path);
  EXPECT_FALSE(check.good());
}

TEST(TraceRobustness, StrictModeRejectsAnyMalformedLine) {
  const std::string dir = testing::TempDir();
  const std::string in_path = dir + "/gmd_rob_strict.txt";
  const std::string out_path = dir + "/gmd_rob_strict_out.txt";
  {
    std::ofstream out(in_path);
    out << format_gem5_line({1, 0x100, 8, false}) << " .\n";
    out << "not a memory record\n";
  }
  ConvertOptions strict;
  strict.max_skipped_lines = 0;
  EXPECT_THROW(convert_gem5_to_nvmain(in_path, out_path, strict), Error);

  // The same input passes under the default (unlimited) budget and
  // reports the quarantined line in the stats.
  const ConvertStats stats = convert_gem5_to_nvmain(in_path, out_path);
  EXPECT_EQ(stats.events_out, 1u);
  EXPECT_EQ(stats.lines_skipped, 1u);
  ASSERT_EQ(stats.quarantined.size(), 1u);
  EXPECT_EQ(stats.quarantined[0], "not a memory record");
}

TEST(TraceRobustness, QuarantineLimitCapsReportedLines) {
  const std::string dir = testing::TempDir();
  const std::string in_path = dir + "/gmd_rob_quarantine.txt";
  const std::string out_path = dir + "/gmd_rob_quarantine_out.txt";
  {
    std::ofstream out(in_path);
    for (int i = 0; i < 10; ++i) out << "bad " << i << "\n";
  }
  ConvertOptions options;
  options.quarantine_limit = 3;
  const ConvertStats stats =
      convert_gem5_to_nvmain(in_path, out_path, options);
  EXPECT_EQ(stats.lines_skipped, 10u);
  ASSERT_EQ(stats.quarantined.size(), 3u);
  EXPECT_EQ(stats.quarantined[0], "bad 0");
  EXPECT_EQ(stats.quarantined[2], "bad 2");
}

TEST(TraceRobustness, UnsortedTraceRejectedWithClearError) {
  // The memory system requires tick-ordered input (as NVMain's trace
  // reader does); feeding a shuffled trace must fail loudly, not
  // corrupt statistics.
  memsim::MemorySystem system(memsim::make_dram_config(1, 400, 2000));
  system.enqueue_event({100, 0x100, 64, false});
  EXPECT_THROW(system.enqueue_event({50, 0x140, 64, false}), Error);
}

TEST(TraceRobustness, EqualTicksAreAccepted) {
  memsim::MemorySystem system(memsim::make_dram_config(1, 400, 2000));
  system.enqueue_event({100, 0x100, 64, false});
  system.enqueue_event({100, 0x140, 64, true});
  const auto m = system.finish();
  EXPECT_EQ(m.total_reads + m.total_writes, 2u);
}

}  // namespace
}  // namespace gmd::trace
