#include "gmd/trace/converter.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "gmd/common/error.hpp"
#include "gmd/trace/formats.hpp"

namespace gmd::trace {
namespace {

class ConverterTest : public testing::Test {
 protected:
  std::string path(const std::string& name) const {
    return testing::TempDir() + "/gmd_conv_" + name;
  }

  /// Writes a synthetic gem5 trace with `lines` memory lines and one
  /// garbage line every `garbage_every` lines.
  void write_input(const std::string& file, std::size_t lines,
                   std::size_t garbage_every = 0) {
    std::ofstream out(file);
    for (std::size_t i = 0; i < lines; ++i) {
      if (garbage_every && i % garbage_every == 0) {
        out << "warn: ignoring syscall mprotect(...)\n";
      }
      const MemoryEvent event{i * 8, 0x1000 + i * 64,
                              8, i % 3 == 0};
      out << format_gem5_line(event) << " .\n";
    }
  }
};

TEST_F(ConverterTest, ConvertsAllMemoryLines) {
  const auto in = path("in1.txt");
  const auto out = path("out1.txt");
  write_input(in, 1000);
  const ConvertStats stats = convert_gem5_to_nvmain(in, out);
  EXPECT_EQ(stats.events_out, 1000u);
  EXPECT_EQ(stats.lines_skipped, 0u);
  EXPECT_EQ(stats.lines_in, 1000u);

  std::ifstream check(out);
  const auto events = read_nvmain_trace(check);
  ASSERT_EQ(events.size(), 1000u);
  EXPECT_EQ(events[0].address, 0x1000u);
  EXPECT_EQ(events[999].tick, 999u * 8);
}

TEST_F(ConverterTest, SkipsGarbageLines) {
  const auto in = path("in2.txt");
  const auto out = path("out2.txt");
  write_input(in, 100, /*garbage_every=*/10);
  const ConvertStats stats = convert_gem5_to_nvmain(in, out);
  EXPECT_EQ(stats.events_out, 100u);
  EXPECT_EQ(stats.lines_skipped, 10u);
}

TEST_F(ConverterTest, OutputOrderPreservedAcrossChunks) {
  const auto in = path("in3.txt");
  const auto out = path("out3.txt");
  write_input(in, 5000);
  ConvertOptions options;
  options.chunk_bytes = 1024;  // force many chunks
  options.num_threads = 4;
  const ConvertStats stats = convert_gem5_to_nvmain(in, out, options);
  EXPECT_GT(stats.chunks, 10u);

  std::ifstream check(out);
  const auto events = read_nvmain_trace(check);
  ASSERT_EQ(events.size(), 5000u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].tick, events[i - 1].tick) << "at " << i;
  }
}

TEST_F(ConverterTest, ChunkedMatchesSingleChunk) {
  const auto in = path("in4.txt");
  write_input(in, 2000, /*garbage_every=*/7);
  const auto out_single = path("out4a.txt");
  const auto out_chunked = path("out4b.txt");
  ConvertOptions single;
  single.chunk_bytes = 1u << 30;
  ConvertOptions chunked;
  chunked.chunk_bytes = 512;
  chunked.num_threads = 3;
  convert_gem5_to_nvmain(in, out_single, single);
  convert_gem5_to_nvmain(in, out_chunked, chunked);

  std::ifstream a(out_single), b(out_chunked);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
}

TEST_F(ConverterTest, EmptyInputProducesEmptyOutput) {
  const auto in = path("in5.txt");
  const auto out = path("out5.txt");
  std::ofstream(in).close();
  const ConvertStats stats = convert_gem5_to_nvmain(in, out);
  EXPECT_EQ(stats.events_out, 0u);
  EXPECT_EQ(stats.chunks, 0u);
}

TEST_F(ConverterTest, MissingInputThrows) {
  EXPECT_THROW(
      convert_gem5_to_nvmain("/nonexistent/trace.txt", path("out6.txt")),
      Error);
}

TEST_F(ConverterTest, BadChunkSizeThrows) {
  ConvertOptions options;
  options.chunk_bytes = 0;
  EXPECT_THROW(convert_gem5_to_nvmain(path("x"), path("y"), options), Error);
}

TEST_F(ConverterTest, SummarizeSkippedWording) {
  ConvertStats stats;
  stats.lines_in = 100;
  stats.lines_skipped = 3;
  ConvertOptions unlimited;
  EXPECT_EQ(summarize_skipped(stats, unlimited),
            "3 of 100 lines failed to parse (budget unlimited)");
  ConvertOptions bounded;
  bounded.max_skipped_lines = 2;
  EXPECT_EQ(summarize_skipped(stats, bounded),
            "3 of 100 lines failed to parse (budget 2)");
}

TEST_F(ConverterTest, BudgetErrorUsesSummaryWording) {
  // Satellite requirement: the budget-exceeded error and the one-line
  // stats summary must use identical wording.
  const auto in = path("in_budget.txt");
  write_input(in, 100, /*garbage_every=*/10);
  ConvertOptions options;
  options.max_skipped_lines = 2;
  try {
    convert_gem5_to_nvmain(in, path("out_budget.txt"), options);
    FAIL() << "expected budget error";
  } catch (const Error& e) {
    ConvertStats expected;
    expected.lines_in = 110;
    expected.lines_skipped = 10;
    EXPECT_NE(std::string(e.what()).find(summarize_skipped(expected, options)),
              std::string::npos)
        << e.what();
  }
  // The GMDT converter enforces the same budget with the same message.
  try {
    convert_gem5_to_gmdt(in, path("out_budget.gmdt"), options);
    FAIL() << "expected budget error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTrace);
    EXPECT_NE(std::string(e.what()).find("10 of 110 lines failed to parse"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(ConverterTest, GmdtRoundTripMatchesTextConversion) {
  const auto in = path("in_gmdt.txt");
  write_input(in, 3000, /*garbage_every=*/13);
  const auto text_out = path("out_gmdt.txt");
  const auto store_out = path("out_store.gmdt");
  ConvertOptions options;
  options.chunk_bytes = 2048;  // many parse chunks
  options.gmdt_chunk_events = 256;  // many store chunks
  const ConvertStats text_stats = convert_gem5_to_nvmain(in, text_out, options);
  const ConvertStats store_stats = convert_gem5_to_gmdt(in, store_out, options);
  EXPECT_EQ(text_stats.events_out, store_stats.events_out);
  EXPECT_EQ(text_stats.lines_in, store_stats.lines_in);
  EXPECT_EQ(text_stats.lines_skipped, store_stats.lines_skipped);

  // unpack(pack(gem5)) must equal the direct gem5 -> NVMain conversion,
  // byte for byte.
  const auto unpacked = path("out_unpacked.txt");
  convert_gmdt_to_nvmain(store_out, unpacked, options);
  std::ifstream a(text_out), b(unpacked);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_FALSE(sa.str().empty());
}

}  // namespace
}  // namespace gmd::trace
