#include "gmd/trace/formats.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "gmd/common/error.hpp"

namespace gmd::trace {
namespace {

TEST(Gem5Format, FormatThenParseRoundTrips) {
  const MemoryEvent event{12345, 0x10002040, 8, false};
  const std::string line = format_gem5_line(event) + " .";
  const auto parsed = parse_gem5_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, event);
}

TEST(Gem5Format, WriteEventRoundTrips) {
  const MemoryEvent event{999, 0xdeadbeef, 64, true};
  const auto parsed = parse_gem5_line(format_gem5_line(event) + " .");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->is_write);
  EXPECT_EQ(parsed->address, 0xdeadbeefu);
}

TEST(Gem5Format, RejectsNonMemoryLines) {
  EXPECT_FALSE(parse_gem5_line("info: Entering event queue @ 0."));
  EXPECT_FALSE(parse_gem5_line(""));
  EXPECT_FALSE(
      parse_gem5_line("500: system.cpu: A0 T0 : @main : something else ."));
  EXPECT_FALSE(parse_gem5_line("x: system.physmem: Read of size 8 at address 0x10 ."));
  EXPECT_FALSE(parse_gem5_line("1: system.physmem: Flush of size 8 at address 0x10 ."));
  EXPECT_FALSE(parse_gem5_line("1: system.physmem: Read of size 0 at address 0x10 ."));
}

TEST(Gem5Format, WriterProducesParseableLines) {
  std::ostringstream os;
  Gem5TraceWriter writer(os);
  writer.on_event({1, 0x100, 8, false});
  writer.on_event({2, 0x200, 4, true});
  EXPECT_EQ(writer.lines_written(), 2u);

  std::istringstream is(os.str());
  std::uint64_t skipped = 77;
  const auto events = read_gem5_trace(is, &skipped);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(events[1].address, 0x200u);
  EXPECT_TRUE(events[1].is_write);
}

TEST(Gem5Format, ReaderSkipsGarbageAndCounts) {
  std::istringstream is(
      "command line: gem5.opt\n"
      "1000: system.physmem: Read of size 8 at address 0x10 .\n"
      "some warning text\n"
      "2000: system.physmem: Write of size 4 at address 0x20 .\n");
  std::uint64_t skipped = 0;
  const auto events = read_gem5_trace(is, &skipped);
  EXPECT_EQ(events.size(), 2u);
  EXPECT_EQ(skipped, 2u);
}

TEST(NvmainFormat, FormatMatchesSpec) {
  const MemoryEvent event{42, 0x1000, 64, true};
  EXPECT_EQ(format_nvmain_line(event), "42 W 0x1000 0x0 0");
  const MemoryEvent read{7, 0x40, 64, false};
  EXPECT_EQ(format_nvmain_line(read), "7 R 0x40 0x0 0");
}

TEST(NvmainFormat, ParseAcceptsFourOrFiveFields) {
  auto with_tid = parse_nvmain_line("10 R 0x100 0xdead 3");
  ASSERT_TRUE(with_tid.has_value());
  EXPECT_EQ(with_tid->tick, 10u);
  EXPECT_EQ(with_tid->size, kNvmainWordBytes);

  auto without_tid = parse_nvmain_line("11 W 0x140 0x0");
  ASSERT_TRUE(without_tid.has_value());
  EXPECT_TRUE(without_tid->is_write);
}

TEST(NvmainFormat, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_nvmain_line("10 X 0x100 0x0 0"));
  EXPECT_FALSE(parse_nvmain_line("ten R 0x100 0x0 0"));
  EXPECT_FALSE(parse_nvmain_line("10 R"));
  EXPECT_FALSE(parse_nvmain_line("10 R zz 0x0 0"));
}

TEST(NvmainFormat, ReaderRejectsMalformedLines) {
  std::istringstream good("1 R 0x10 0x0 0\n2 W 0x20 0x0 0\n");
  EXPECT_EQ(read_nvmain_trace(good).size(), 2u);
  std::istringstream bad("1 R 0x10 0x0 0\ngarbage here now\n");
  EXPECT_THROW(read_nvmain_trace(bad), Error);
}

TEST(NvmainFormat, WriterReaderRoundTrip) {
  std::ostringstream os;
  NvmainTraceWriter writer(os);
  writer.on_event({5, 0x80, 64, false});
  writer.on_event({9, 0xC0, 64, true});
  std::istringstream is(os.str());
  const auto events = read_nvmain_trace(is);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].tick, 5u);
  EXPECT_TRUE(events[1].is_write);
}

TEST(BinaryFormat, RoundTripsEvents) {
  std::vector<MemoryEvent> events;
  for (int i = 0; i < 100; ++i) {
    events.push_back({static_cast<std::uint64_t>(i * 10),
                      0x1000u + static_cast<std::uint64_t>(i) * 64,
                      static_cast<std::uint32_t>(4 << (i % 3)), i % 2 == 0});
  }
  std::stringstream ss;
  write_binary_trace(ss, events);
  const auto back = read_binary_trace(ss);
  EXPECT_EQ(back, events);
}

TEST(BinaryFormat, EmptyTraceRoundTrips) {
  std::stringstream ss;
  write_binary_trace(ss, {});
  EXPECT_TRUE(read_binary_trace(ss).empty());
}

TEST(BinaryFormat, BadMagicRejected) {
  std::stringstream ss("NOTATRACE_______");
  EXPECT_THROW(read_binary_trace(ss), Error);
}

TEST(BinaryFormat, TruncationDetected) {
  std::vector<MemoryEvent> events{{1, 2, 4, false}, {2, 3, 4, true}};
  std::stringstream ss;
  write_binary_trace(ss, events);
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() - 5));
  EXPECT_THROW(read_binary_trace(truncated), Error);
}

TEST(BinaryFormat, AbsurdHeaderCountIsTypedIoErrorNotBadAlloc) {
  // Magic + a count claiming ~10^18 events with no payload behind it:
  // must fail with Error(kIo) before trying to reserve that much.
  std::stringstream ss;
  ss.write("GMDTRC01", 8);
  const std::uint64_t absurd = 1ull << 60;
  ss.write(reinterpret_cast<const char*>(&absurd), sizeof(absurd));
  try {
    read_binary_trace(ss);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
    EXPECT_NE(std::string(e.what()).find("payload bytes follow"),
              std::string::npos)
        << e.what();
  }
}

TEST(BinaryFormat, BadMagicIsTraceError) {
  std::stringstream ss("NOTATRACE_______");
  try {
    read_binary_trace(ss);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTrace);
  }
}

TEST(NvmainSemantics, ToNvmainEventMatchesTextRoundTrip) {
  const MemoryEvent event{77, 0x1234567, 8, true};
  const MemoryEvent direct = to_nvmain_event(event);
  const auto reparsed = parse_nvmain_line(format_nvmain_line(event));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(direct.tick, reparsed->tick);
  EXPECT_EQ(direct.address, reparsed->address);
  EXPECT_EQ(direct.size, reparsed->size);
  EXPECT_EQ(direct.is_write, reparsed->is_write);
}

}  // namespace
}  // namespace gmd::trace
