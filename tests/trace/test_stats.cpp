#include "gmd/trace/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gmd::trace {
namespace {

TEST(TraceStats, EmptyTrace) {
  const TraceStats stats = compute_stats({});
  EXPECT_EQ(stats.events, 0u);
  EXPECT_EQ(stats.footprint_bytes(), 0u);
  EXPECT_EQ(stats.read_fraction(), 0.0);
}

TEST(TraceStats, CountsReadsAndWrites) {
  const std::vector<cpusim::MemoryEvent> events{
      {10, 0x100, 8, false}, {20, 0x200, 8, true}, {30, 0x300, 4, false}};
  const TraceStats stats = compute_stats(events);
  EXPECT_EQ(stats.events, 3u);
  EXPECT_EQ(stats.reads, 2u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.bytes_read, 12u);
  EXPECT_EQ(stats.bytes_written, 8u);
  EXPECT_NEAR(stats.read_fraction(), 2.0 / 3.0, 1e-12);
}

TEST(TraceStats, AddressAndTickRanges) {
  const std::vector<cpusim::MemoryEvent> events{
      {50, 0x1000, 8, false}, {10, 0x400, 64, true}, {90, 0x2000, 4, false}};
  const TraceStats stats = compute_stats(events);
  EXPECT_EQ(stats.min_address, 0x400u);
  EXPECT_EQ(stats.max_address, 0x2003u);  // 0x2000 + 4 - 1
  EXPECT_EQ(stats.first_tick, 10u);
  EXPECT_EQ(stats.last_tick, 90u);
  EXPECT_EQ(stats.footprint_bytes(), 0x2003u - 0x400u + 1);
}

TEST(TraceStats, UniqueLinesDeduplicates) {
  const std::vector<cpusim::MemoryEvent> events{
      {1, 0x00, 8, false},  // line 0
      {2, 0x38, 8, false},  // line 0 again
      {3, 0x40, 8, false},  // line 1
      {4, 0x80, 8, true}};  // line 2
  const TraceStats stats = compute_stats(events);
  EXPECT_EQ(stats.unique_lines, 3u);
}

TEST(TraceStats, DescribeMentionsKeyNumbers) {
  const std::vector<cpusim::MemoryEvent> events{{1, 0x40, 8, false}};
  const std::string text = describe(compute_stats(events));
  EXPECT_NE(text.find("events"), std::string::npos);
  EXPECT_NE(text.find("1 reads"), std::string::npos);
}

}  // namespace
}  // namespace gmd::trace
