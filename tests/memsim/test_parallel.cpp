/// Channel-parallel replay: golden equivalence against the serial fast
/// path (the parallel path must make the *same* floating-point
/// computations, so EXPECT_EQ on doubles), partition-accessor
/// invariants, deadline behaviour inside worker loops, and the
/// automatic serial fallback for hybrid configurations.

#include <gtest/gtest.h>

#include <tuple>

#include "gmd/common/deadline.hpp"
#include "gmd/common/error.hpp"
#include "gmd/memsim/hybrid.hpp"
#include "gmd/memsim/memory_system.hpp"

namespace gmd::memsim {
namespace {

using cpusim::MemoryEvent;

std::vector<MemoryEvent> mixed_trace(std::size_t n = 2000) {
  // Same phase mix as the serial equivalence suite: streaming, strided,
  // hot-cluster, and page-strided accesses with occasional wide (split)
  // events.
  std::vector<MemoryEvent> trace;
  trace.reserve(n);
  std::uint64_t tick = 0;
  for (std::size_t i = 0; i < n; ++i) {
    tick += 3 + (i % 7) * 5;
    std::uint64_t address;
    switch (i % 4) {
      case 0:
        address = 0x100000 + i * 64;
        break;
      case 1:
        address = 0x400000 + (i % 41) * 8192;
        break;
      case 2:
        address = 0x800000 + (i % 13) * 64;
        break;
      default:
        address = 0x200000 + (i % 29) * 4096;
        break;
    }
    const std::uint32_t size = i % 5 == 0 ? 128 : 64;
    trace.push_back({tick, address, size, i % 3 == 1});
  }
  return trace;
}

void expect_identical(const MemoryMetrics& a, const MemoryMetrics& b) {
  EXPECT_EQ(a.metric_values(), b.metric_values());
  EXPECT_EQ(a.total_reads, b.total_reads);
  EXPECT_EQ(a.total_writes, b.total_writes);
  EXPECT_EQ(a.row_hits, b.row_hits);
  EXPECT_EQ(a.row_misses, b.row_misses);
  EXPECT_EQ(a.execution_seconds, b.execution_seconds);
  EXPECT_EQ(a.dynamic_energy_j, b.dynamic_energy_j);
  EXPECT_EQ(a.background_energy_j, b.background_energy_j);
  EXPECT_EQ(a.max_line_writes, b.max_line_writes);
  EXPECT_EQ(a.unique_lines_written, b.unique_lines_written);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
}

// Partition accessor ---------------------------------------------------

TEST(ChannelPartition, CountsSumToTotalAndPreserveOrder) {
  const MemoryConfig config = make_dram_config(4, 666, 3000);
  const auto trace = mixed_trace();
  const auto predecoded = PredecodedTrace::build(config, trace);

  const auto counts = predecoded.channel_event_counts(config.channels);
  ASSERT_EQ(counts.size(), config.channels);
  std::size_t total = 0;
  for (const std::size_t c : counts) total += c;
  EXPECT_EQ(total, predecoded.size());

  const auto& slices = predecoded.partition_by_channel(config.channels);
  ASSERT_EQ(slices.size(), config.channels);
  // Each slice is that channel's subsequence of the serial stream, in
  // original order.
  std::vector<std::size_t> cursor(config.channels, 0);
  for (std::size_t i = 0; i < predecoded.size(); ++i) {
    const std::uint32_t c = predecoded.channel[i];
    const std::size_t j = cursor[c]++;
    ASSERT_LT(j, slices[c].size());
    EXPECT_EQ(slices[c].request[j].arrival, predecoded.request[i].arrival);
    EXPECT_EQ(slices[c].request[j].row, predecoded.request[i].row);
    EXPECT_EQ(slices[c].line[j], predecoded.line[i]);
  }
  for (std::uint32_t c = 0; c < config.channels; ++c) {
    EXPECT_EQ(cursor[c], counts[c]);
    EXPECT_EQ(slices[c].size(), counts[c]);
  }
}

TEST(ChannelPartition, RepeatedCallsReturnSameObject) {
  const MemoryConfig config = make_dram_config(2, 666, 3000);
  const auto predecoded = PredecodedTrace::build(config, mixed_trace(200));
  const auto& first = predecoded.partition_by_channel(config.channels);
  const auto& second = predecoded.partition_by_channel(config.channels);
  EXPECT_EQ(&first, &second);
  EXPECT_THROW(predecoded.partition_by_channel(config.channels + 1),
               gmd::Error);
}

// Golden equivalence ---------------------------------------------------

// Axes: (is_nvm, scheduling, page_policy, workers).
using ParallelTuple =
    std::tuple<bool, SchedulingPolicy, PagePolicy, std::uint32_t>;

class ParallelVsSerial : public testing::TestWithParam<ParallelTuple> {};

TEST_P(ParallelVsSerial, IdenticalMetrics) {
  const auto [is_nvm, scheduling, page, workers] = GetParam();
  MemoryConfig config = is_nvm ? make_nvm_config(4, 666, 3000, 40)
                               : make_dram_config(4, 666, 3000);
  config.scheduling = scheduling;
  config.page_policy = page;
  const auto trace = mixed_trace();
  const auto predecoded = PredecodedTrace::build(config, trace);
  const MemoryMetrics serial = MemorySystem::simulate(config, predecoded);
  config.sim.num_workers = workers;
  expect_identical(MemorySystem::simulate(config, predecoded), serial);
  // The raw-span overload predecodes internally and must agree too.
  expect_identical(MemorySystem::simulate(config, trace), serial);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyMatrix, ParallelVsSerial,
    testing::Combine(testing::Bool(),
                     testing::Values(SchedulingPolicy::kFcfs,
                                     SchedulingPolicy::kFrFcfs),
                     testing::Values(PagePolicy::kOpen, PagePolicy::kClosed),
                     testing::Values(2u, 4u, 8u)),  // 8 > channels: capped
    [](const testing::TestParamInfo<ParallelTuple>& info) {
      std::string name = std::get<0>(info.param) ? "Nvm" : "Dram";
      name += std::get<1>(info.param) == SchedulingPolicy::kFcfs ? "Fcfs"
                                                                 : "FrFcfs";
      name += std::get<2>(info.param) == PagePolicy::kOpen ? "Open"
                                                           : "Closed";
      name += "W" + std::to_string(std::get<3>(info.param));
      return name;
    });

TEST(ParallelVsSerialExtra, RefreshAndRefMode) {
  MemoryConfig config = make_dram_config(4, 666, 3000);
  config.timing.tRFC = 160;
  config.timing.tREFI = 2000;
  const auto trace = mixed_trace();
  const auto predecoded = PredecodedTrace::build(config, trace);
  const MemoryMetrics serial = MemorySystem::simulate(config, predecoded);
  config.sim.num_workers = 4;
  expect_identical(MemorySystem::simulate(config, predecoded), serial);
  // reference_mode forces the serial reference scheduler even with
  // workers requested — the seed loop stays serial.
  config.sim.reference_mode = true;
  expect_identical(MemorySystem::simulate(config, predecoded), serial);
}

TEST(ParallelVsSerialExtra, SingleChannelStaysSerial) {
  MemoryConfig config = make_dram_config(1, 400, 2000);
  const auto trace = mixed_trace(500);
  const auto predecoded = PredecodedTrace::build(config, trace);
  const MemoryMetrics serial = MemorySystem::simulate(config, predecoded);
  config.sim.num_workers = 4;  // capped at 1 channel -> serial
  expect_identical(MemorySystem::simulate(config, predecoded), serial);
}

TEST(HybridParallelFallback, WorkersIgnoredIdenticalResults) {
  HybridConfig config = make_hybrid_config(4, 666, 3000, 40);
  const auto trace = mixed_trace();
  const MemoryMetrics serial = HybridMemory::simulate(config, trace);
  // Hybrid migration state is cross-channel, so the hybrid paths stay
  // serial no matter what the sub-configs request.
  config.dram.sim.num_workers = 4;
  config.nvm.sim.num_workers = 4;
  expect_identical(HybridMemory::simulate(config, trace), serial);
  const auto [dram_side, nvm_side] = predecode_hybrid(config, trace);
  expect_identical(HybridMemory::simulate(config, dram_side, nvm_side),
                   serial);
}

// Deadlines in worker loops -------------------------------------------

TEST(ParallelDeadline, CancellationFiresPromptly) {
  MemoryConfig config = make_dram_config(4, 666, 3000);
  const auto trace = mixed_trace(4000);
  const auto predecoded = PredecodedTrace::build(config, trace);
  Deadline deadline;  // budget-less: only cancel() fires
  deadline.cancel();
  config.sim.deadline = &deadline;
  config.sim.num_workers = 4;
  try {
    MemorySystem::simulate(config, predecoded);
    FAIL() << "cancelled simulation must not complete";
  } catch (const gmd::Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kCancelled);
  }
}

TEST(ParallelDeadline, ExpiredBudgetFires) {
  MemoryConfig config = make_dram_config(4, 666, 3000);
  // Deep queue so the serial path would only poll at drain; the worker
  // loop's own polls must still catch the expiry mid-replay.
  config.queue_depth = 48;
  const auto trace = mixed_trace(20000);
  const auto predecoded = PredecodedTrace::build(config, trace);
  Deadline deadline(std::chrono::nanoseconds(0));  // already expired
  config.sim.deadline = &deadline;
  config.sim.num_workers = 2;
  try {
    MemorySystem::simulate(config, predecoded);
    FAIL() << "expired simulation must not complete";
  } catch (const gmd::Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kTimeout);
  }
}

TEST(ParallelDeadline, UncancelledTokenDoesNotPerturbResults) {
  MemoryConfig config = make_dram_config(4, 666, 3000);
  const auto trace = mixed_trace();
  const auto predecoded = PredecodedTrace::build(config, trace);
  const MemoryMetrics serial = MemorySystem::simulate(config, predecoded);
  Deadline deadline;
  config.sim.deadline = &deadline;
  config.sim.num_workers = 4;
  expect_identical(MemorySystem::simulate(config, predecoded), serial);
}

}  // namespace
}  // namespace gmd::memsim
