#include "gmd/memsim/channel.hpp"

#include <gtest/gtest.h>

#include "gmd/common/error.hpp"

namespace gmd::memsim {
namespace {

MemoryConfig base_config() {
  MemoryConfig config;
  config.channels = 1;
  config.ranks = 1;
  config.banks = 4;
  config.scheduling = SchedulingPolicy::kFcfs;
  config.page_policy = PagePolicy::kOpen;
  config.timing.tRFC = 0;  // disable refresh for exact-latency tests
  config.timing.tREFI = 0;
  return config;
}

Request make_request(std::uint64_t arrival, std::uint32_t bank,
                     std::uint32_t row, bool is_write = false,
                     std::uint32_t column = 0) {
  Request r;
  r.arrival = arrival;
  r.bank = bank;
  r.row = row;
  r.column = column;
  r.is_write = is_write;
  return r;
}

TEST(Channel, SingleReadLatencyIsActPlusCasPlusBurst) {
  const MemoryConfig config = base_config();
  Channel channel(config);
  channel.enqueue(make_request(100, 0, 5));
  channel.drain();
  const ChannelStats& s = channel.stats();
  EXPECT_EQ(s.reads, 1u);
  const auto& t = config.timing;
  // Closed bank: ACT at 100, CAS at 100+tRCD, data 100+tRCD+tCAS..+tBURST.
  EXPECT_DOUBLE_EQ(s.avg_service_latency(),
                   static_cast<double>(t.tRCD + t.tCAS + t.tBURST));
  EXPECT_DOUBLE_EQ(s.avg_total_latency(), s.avg_service_latency());
  EXPECT_EQ(s.last_completion, 100 + t.tRCD + t.tCAS + t.tBURST);
}

TEST(Channel, RowHitSkipsActivate) {
  const MemoryConfig config = base_config();
  Channel channel(config);
  channel.enqueue(make_request(0, 0, 5));
  channel.enqueue(make_request(1000, 0, 5, false, 3));  // same row, later
  channel.drain();
  const ChannelStats& s = channel.stats();
  EXPECT_EQ(s.row_hits, 1u);
  EXPECT_EQ(s.row_misses, 1u);
  EXPECT_EQ(s.activations, 1u);
  // The second request (row hit) took only tCAS + tBURST.
  const auto& t = config.timing;
  const double first = t.tRCD + t.tCAS + t.tBURST;
  const double second = t.tCAS + t.tBURST;
  EXPECT_DOUBLE_EQ(s.avg_service_latency(), (first + second) / 2.0);
}

TEST(Channel, RowConflictAddsPrechargeAndActivate) {
  const MemoryConfig config = base_config();
  Channel channel(config);
  channel.enqueue(make_request(0, 0, 5));
  channel.enqueue(make_request(1000, 0, 9));  // different row, same bank
  channel.drain();
  const ChannelStats& s = channel.stats();
  EXPECT_EQ(s.row_misses, 2u);
  EXPECT_EQ(s.precharges, 1u);
  EXPECT_EQ(s.activations, 2u);
  const auto& t = config.timing;
  const double first = t.tRCD + t.tCAS + t.tBURST;
  const double second = t.tRP + t.tRCD + t.tCAS + t.tBURST;
  EXPECT_DOUBLE_EQ(s.avg_service_latency(), (first + second) / 2.0);
}

TEST(Channel, TRasDelaysEarlyPrecharge) {
  MemoryConfig config = base_config();
  config.timing.tRAS = 100;  // exaggerate the restore window
  Channel channel(config);
  channel.enqueue(make_request(0, 0, 1));
  channel.enqueue(make_request(1, 0, 2));  // conflict right away
  channel.drain();
  const auto& t = config.timing;
  // Second request: PRE cannot start before ACT(0) + tRAS.
  // data_end = tRAS + tRP + tRCD + tCAS + tBURST.
  EXPECT_EQ(channel.stats().last_completion,
            t.tRAS + t.tRP + t.tRCD + t.tCAS + t.tBURST);
}

TEST(Channel, NvmZeroTRasAllowsImmediatePrecharge) {
  MemoryConfig config = base_config();
  config.timing.tRAS = 0;  // NVM
  Channel channel(config);
  channel.enqueue(make_request(0, 0, 1));
  channel.enqueue(make_request(1, 0, 2));
  channel.drain();
  const auto& t = config.timing;
  const std::uint64_t first_done = t.tRCD + t.tCAS + t.tBURST;
  // PRE waits only for the first data burst, not a restore window.
  EXPECT_EQ(channel.stats().last_completion,
            first_done + t.tRP + t.tRCD + t.tCAS + t.tBURST);
}

TEST(Channel, WriteRecoveryDelaysPrecharge) {
  MemoryConfig config = base_config();
  config.timing.tRAS = 0;
  config.timing.tWR = 50;
  Channel channel(config);
  channel.enqueue(make_request(0, 0, 1, /*is_write=*/true));
  channel.enqueue(make_request(1, 0, 2));
  channel.drain();
  const auto& t = config.timing;
  const std::uint64_t write_done = t.tRCD + t.tCAS + t.tBURST;
  EXPECT_EQ(channel.stats().last_completion,
            write_done + t.tWR + t.tRP + t.tRCD + t.tCAS + t.tBURST);
}

TEST(Channel, BankParallelismOverlapsRequests) {
  const MemoryConfig config = base_config();
  Channel same_bank(config);
  same_bank.enqueue(make_request(0, 0, 1));
  same_bank.enqueue(make_request(0, 0, 2));
  same_bank.drain();

  Channel two_banks(config);
  two_banks.enqueue(make_request(0, 0, 1));
  two_banks.enqueue(make_request(0, 1, 1));
  two_banks.drain();

  EXPECT_LT(two_banks.stats().last_completion,
            same_bank.stats().last_completion);
}

TEST(Channel, DataBusSerializesBursts) {
  const MemoryConfig config = base_config();
  Channel channel(config);
  // Four simultaneous row hits... on four different banks: bursts must
  // still serialize on the shared data bus (tBURST apart at best).
  for (std::uint32_t b = 0; b < 4; ++b)
    channel.enqueue(make_request(0, b, 0));
  channel.drain();
  const auto& t = config.timing;
  const std::uint64_t first_data = t.tRCD + t.tCAS + t.tBURST;
  EXPECT_GE(channel.stats().last_completion,
            first_data + 3 * t.tBURST);
}

TEST(Channel, QueuingDelayAppearsInTotalLatencyOnly) {
  MemoryConfig config = base_config();
  Channel channel(config);
  // A burst of simultaneous arrivals to one bank, different rows:
  // each waits on the previous (conflict), inflating total latency.
  for (std::uint32_t i = 0; i < 8; ++i)
    channel.enqueue(make_request(0, 0, i));
  channel.drain();
  const ChannelStats& s = channel.stats();
  EXPECT_GT(s.avg_total_latency(), s.avg_service_latency());
}

TEST(Channel, FrFcfsPrefersRowHits) {
  MemoryConfig fcfs_config = base_config();
  fcfs_config.scheduling = SchedulingPolicy::kFcfs;
  MemoryConfig frfcfs_config = base_config();
  frfcfs_config.scheduling = SchedulingPolicy::kFrFcfs;

  const auto feed = [](Channel& channel) {
    // Alternating rows 1,2,1,2... on one bank: FCFS conflicts every
    // time; FR-FCFS batches the row-1s then the row-2s.
    for (std::uint32_t i = 0; i < 16; ++i)
      channel.enqueue(make_request(0, 0, 1 + (i % 2)));
    channel.drain();
  };
  Channel fcfs(fcfs_config), frfcfs(frfcfs_config);
  feed(fcfs);
  feed(frfcfs);
  EXPECT_GT(frfcfs.stats().row_hits, fcfs.stats().row_hits);
  EXPECT_LT(frfcfs.stats().last_completion, fcfs.stats().last_completion);
}

TEST(Channel, ClosedPagePolicyNeverRowHits) {
  MemoryConfig config = base_config();
  config.page_policy = PagePolicy::kClosed;
  Channel channel(config);
  for (std::uint32_t i = 0; i < 4; ++i)
    channel.enqueue(make_request(i * 100, 0, 7));  // same row every time
  channel.drain();
  EXPECT_EQ(channel.stats().row_hits, 0u);
  EXPECT_EQ(channel.stats().activations, 4u);
}

TEST(Channel, RefreshStallsRequestsInWindow) {
  MemoryConfig config = base_config();
  config.timing.tREFI = 1000;
  config.timing.tRFC = 100;
  Channel channel(config);
  // Arrival inside the second refresh window [1000, 1100).
  channel.enqueue(make_request(1005, 0, 1));
  channel.drain();
  const auto& t = config.timing;
  EXPECT_EQ(channel.stats().last_completion,
            1100 + t.tRCD + t.tCAS + t.tBURST);
}

TEST(Channel, QueueDepthBoundsPending) {
  MemoryConfig config = base_config();
  config.queue_depth = 4;
  Channel channel(config);
  // Enqueueing beyond depth forces service; this must not throw and
  // stats must eventually cover all requests.
  for (std::uint32_t i = 0; i < 100; ++i)
    channel.enqueue(make_request(i, i % 4, i % 8));
  channel.drain();
  EXPECT_EQ(channel.stats().reads, 100u);
}

TEST(Channel, RejectsOutOfOrderArrivals) {
  Channel channel(base_config());
  channel.enqueue(make_request(100, 0, 1));
  EXPECT_THROW(channel.enqueue(make_request(50, 0, 1)), Error);
}

TEST(Channel, RejectsBadBank) {
  Channel channel(base_config());
  EXPECT_THROW(channel.enqueue(make_request(0, 99, 1)), Error);
}

TEST(Channel, BankBytesAccumulate) {
  const MemoryConfig config = base_config();
  Channel channel(config);
  channel.enqueue(make_request(0, 2, 1));
  channel.enqueue(make_request(10, 2, 1));
  channel.drain();
  EXPECT_EQ(channel.stats().bank_bytes[2], 2 * config.access_bytes());
  EXPECT_EQ(channel.stats().bank_bytes[0], 0u);
}

}  // namespace
}  // namespace gmd::memsim
