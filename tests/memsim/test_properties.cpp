/// Property-style invariant checks swept across the configuration
/// space: whatever the device/geometry/policy, a correct memory
/// simulator must conserve requests, respect minimum latencies, and
/// keep its accounting self-consistent.

#include <gtest/gtest.h>

#include <tuple>

#include "gmd/memsim/memory_system.hpp"

namespace gmd::memsim {
namespace {

using cpusim::MemoryEvent;

std::vector<MemoryEvent> mixed_trace(std::size_t n = 2000) {
  // Deterministic mix of streaming, strided, and clustered accesses.
  std::vector<MemoryEvent> trace;
  trace.reserve(n);
  std::uint64_t tick = 0;
  for (std::size_t i = 0; i < n; ++i) {
    tick += 7 + (i % 5) * 3;
    std::uint64_t address;
    switch (i % 3) {
      case 0:
        address = 0x100000 + i * 64;  // stream
        break;
      case 1:
        address = 0x400000 + (i % 37) * 8192;  // strided rows
        break;
      default:
        address = 0x800000 + (i % 11) * 64;  // hot cluster
        break;
    }
    trace.push_back({tick, address, 64, i % 4 == 1});
  }
  return trace;
}

// Axes: (is_nvm, channels, clock_mhz, scheduling, page_policy).
using ConfigTuple = std::tuple<bool, std::uint32_t, std::uint32_t,
                               SchedulingPolicy, PagePolicy>;

class MemorySystemProperty : public testing::TestWithParam<ConfigTuple> {
 protected:
  MemoryConfig make_config() const {
    const auto [is_nvm, channels, clock, scheduling, page] = GetParam();
    MemoryConfig config = is_nvm
                              ? make_nvm_config(channels, clock, 3000, 40)
                              : make_dram_config(channels, clock, 3000);
    config.scheduling = scheduling;
    config.page_policy = page;
    return config;
  }
};

TEST_P(MemorySystemProperty, RequestConservation) {
  const auto trace = mixed_trace();
  const MemoryMetrics m = MemorySystem::simulate(make_config(), trace);
  // Every 64B event maps to exactly one word-sized request.
  EXPECT_EQ(m.total_reads + m.total_writes, trace.size());
  EXPECT_EQ(m.row_hits + m.row_misses, trace.size());
}

TEST_P(MemorySystemProperty, LatencyBounds) {
  const MemoryConfig config = make_config();
  const MemoryMetrics m = MemorySystem::simulate(config, mixed_trace());
  const auto& t = config.timing;
  // No request completes faster than CAS + burst.
  EXPECT_GE(m.avg_latency_cycles, static_cast<double>(t.tCAS + t.tBURST));
  // Queuing can only add to latency.
  EXPECT_GE(m.avg_total_latency_cycles, m.avg_latency_cycles - 1e-9);
}

TEST_P(MemorySystemProperty, EnergyAndPowerPositive) {
  const MemoryMetrics m = MemorySystem::simulate(make_config(), mixed_trace());
  EXPECT_GT(m.dynamic_energy_j, 0.0);
  EXPECT_GT(m.background_energy_j, 0.0);
  EXPECT_GT(m.avg_power_per_channel_w, 0.0);
  EXPECT_GT(m.execution_seconds, 0.0);
  EXPECT_GT(m.avg_bandwidth_per_bank_mbs, 0.0);
}

TEST_P(MemorySystemProperty, PerChannelCountsAverageExactly) {
  const MemoryConfig config = make_config();
  const MemoryMetrics m = MemorySystem::simulate(config, mixed_trace());
  EXPECT_DOUBLE_EQ(
      m.avg_reads_per_channel,
      static_cast<double>(m.total_reads) / config.channels);
  EXPECT_DOUBLE_EQ(
      m.avg_writes_per_channel,
      static_cast<double>(m.total_writes) / config.channels);
}

TEST_P(MemorySystemProperty, Deterministic) {
  const MemoryConfig config = make_config();
  const auto trace = mixed_trace(500);
  const MemoryMetrics a = MemorySystem::simulate(config, trace);
  const MemoryMetrics b = MemorySystem::simulate(config, trace);
  EXPECT_EQ(a.metric_values(), b.metric_values());
  EXPECT_EQ(a.row_hits, b.row_hits);
}

TEST_P(MemorySystemProperty, EnduranceNeverExceedsWrites) {
  const MemoryMetrics m = MemorySystem::simulate(make_config(), mixed_trace());
  EXPECT_LE(m.max_line_writes, m.total_writes);
  EXPECT_GT(m.unique_lines_written, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, MemorySystemProperty,
    testing::Combine(testing::Bool(),                  // DRAM / NVM
                     testing::Values(1u, 2u, 4u),      // channels
                     testing::Values(400u, 1600u),     // controller clock
                     testing::Values(SchedulingPolicy::kFcfs,
                                     SchedulingPolicy::kFrFcfs),
                     testing::Values(PagePolicy::kOpen,
                                     PagePolicy::kClosed)),
    [](const testing::TestParamInfo<ConfigTuple>& info) {
      std::string name = std::get<0>(info.param) ? "nvm" : "dram";
      name += std::to_string(std::get<1>(info.param)) + "ch" +
              std::to_string(std::get<2>(info.param)) + "mhz";
      name += std::get<3>(info.param) == SchedulingPolicy::kFcfs ? "Fcfs"
                                                                 : "FrFcfs";
      name += std::get<4>(info.param) == PagePolicy::kOpen ? "Open"
                                                           : "Closed";
      return name;
    });

TEST(MemorySystemMonotonicity, LatencyNonDecreasingInTrcd) {
  // Under FCFS the command schedule is order-fixed, so service latency
  // must be monotone in tRCD.
  const auto trace = mixed_trace(1000);
  double previous = 0.0;
  for (const std::uint32_t trcd : {10u, 20u, 40u, 80u, 160u}) {
    MemoryConfig config = make_nvm_config(2, 666, 3000, trcd);
    config.scheduling = SchedulingPolicy::kFcfs;
    const MemoryMetrics m = MemorySystem::simulate(config, trace);
    EXPECT_GE(m.avg_latency_cycles, previous) << "tRCD " << trcd;
    previous = m.avg_latency_cycles;
  }
}

TEST(MemorySystemMonotonicity, MoreChannelsNeverSlower) {
  const auto trace = mixed_trace(2000);
  double previous_exec = 1e300;
  for (const std::uint32_t channels : {1u, 2u, 4u, 8u}) {
    const MemoryMetrics m = MemorySystem::simulate(
        make_dram_config(channels, 400, 6500), trace);
    EXPECT_LE(m.execution_seconds, previous_exec * 1.02)
        << channels << " channels";
    previous_exec = m.execution_seconds;
  }
}

}  // namespace
}  // namespace gmd::memsim
