#include "gmd/memsim/config_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "gmd/common/error.hpp"

namespace gmd::memsim {
namespace {

TEST(ConfigIo, RoundTripsDramPreset) {
  const MemoryConfig original = make_dram_config(4, 1250, 5000);
  std::stringstream ss;
  write_config(ss, original);
  const MemoryConfig back = read_config(ss);
  EXPECT_EQ(back.name, original.name);
  EXPECT_EQ(back.device, original.device);
  EXPECT_EQ(back.channels, original.channels);
  EXPECT_EQ(back.clock_mhz, original.clock_mhz);
  EXPECT_EQ(back.cpu_freq_mhz, original.cpu_freq_mhz);
  EXPECT_EQ(back.timing.tRCD, original.timing.tRCD);
  EXPECT_EQ(back.timing.tRAS, original.timing.tRAS);
  EXPECT_EQ(back.timing.tRRD, original.timing.tRRD);
  EXPECT_EQ(back.timing.tFAW, original.timing.tFAW);
  EXPECT_EQ(back.timing.tREFI, original.timing.tREFI);
  EXPECT_EQ(back.scheduling, original.scheduling);
  EXPECT_EQ(back.page_policy, original.page_policy);
  EXPECT_EQ(back.address_mapping, original.address_mapping);
  EXPECT_DOUBLE_EQ(back.energy.static_mw, original.energy.static_mw);
  EXPECT_DOUBLE_EQ(back.energy.background_mw_per_mhz,
                   original.energy.background_mw_per_mhz);
}

TEST(ConfigIo, RoundTripsNvmPreset) {
  const MemoryConfig original = make_nvm_config(2, 666, 3000, 67);
  std::stringstream ss;
  write_config(ss, original);
  const MemoryConfig back = read_config(ss);
  EXPECT_EQ(back.device, DeviceType::kNvm);
  EXPECT_EQ(back.timing.tRCD, 67u);
  EXPECT_EQ(back.timing.tRAS, 0u);
  EXPECT_EQ(back.timing.tREFI, 0u);
  EXPECT_DOUBLE_EQ(back.energy.write_nj, original.energy.write_nj);
}

TEST(ConfigIo, ParsesHandWrittenFile) {
  std::istringstream in(
      "; my NVM experiment\n"
      "DeviceType PCM\n"
      "CHANNELS 4\n"
      "CLK 1600\n"
      "CPUFreq 6500\n"
      "tRCD 320 ; paper's largest value\n"
      "tRAS 0\n"
      "tRFC 0\n"
      "tREFI 0\n"
      "MEM_CTL fcfs\n"
      "PagePolicy ClosePage\n"
      "\n");
  const MemoryConfig config = read_config(in);
  EXPECT_EQ(config.device, DeviceType::kNvm);  // PCM alias
  EXPECT_EQ(config.channels, 4u);
  EXPECT_EQ(config.timing.tRCD, 320u);
  EXPECT_EQ(config.scheduling, SchedulingPolicy::kFcfs);
  EXPECT_EQ(config.page_policy, PagePolicy::kClosed);
  // Unspecified keys keep defaults.
  EXPECT_EQ(config.banks, MemoryConfig{}.banks);
}

TEST(ConfigIo, UnknownKeyThrows) {
  std::istringstream in("FOO 42\n");
  EXPECT_THROW(read_config(in), Error);
}

TEST(ConfigIo, MalformedLineThrows) {
  std::istringstream in("CHANNELS\n");
  EXPECT_THROW(read_config(in), Error);
  std::istringstream bad_value("CHANNELS many\n");
  EXPECT_THROW(read_config(bad_value), Error);
  std::istringstream bad_device("DeviceType SRAM\n");
  EXPECT_THROW(read_config(bad_device), Error);
}

TEST(ConfigIo, ResultIsValidated) {
  std::istringstream in("CHANNELS 0\n");
  EXPECT_THROW(read_config(in), Error);
  // Refresh fields must come as a pair.
  std::istringstream half_refresh("tRFC 100\ntREFI 0\n");
  EXPECT_THROW(read_config(half_refresh), Error);
}

TEST(ConfigIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/gmd_config_test.cfg";
  const MemoryConfig original = make_dram_config(2, 400, 2000);
  save_config(path, original);
  const MemoryConfig back = load_config(path);
  EXPECT_EQ(back.channels, original.channels);
  EXPECT_THROW(load_config("/nonexistent/x.cfg"), Error);
}

}  // namespace
}  // namespace gmd::memsim
