#include "gmd/memsim/address.hpp"

#include <gtest/gtest.h>

#include <set>

#include "gmd/common/error.hpp"

namespace gmd::memsim {
namespace {

MemoryConfig test_config() {
  MemoryConfig config;
  config.channels = 2;
  config.ranks = 1;
  config.banks = 4;
  config.rows = 128;
  config.row_bytes = 1024;
  config.bus_bytes = 8;
  config.timing.tBURST = 4;  // access = 64B
  return config;
}

TEST(AddressDecoder, ZeroDecodesToOrigin) {
  const AddressDecoder decoder(test_config());
  const DecodedAddress a = decoder.decode(0);
  EXPECT_EQ(a, (DecodedAddress{0, 0, 0, 0, 0}));
}

TEST(AddressDecoder, ConsecutiveWordsInterleaveChannels) {
  const AddressDecoder decoder(test_config());
  EXPECT_EQ(decoder.decode(0).channel, 0u);
  EXPECT_EQ(decoder.decode(64).channel, 1u);
  EXPECT_EQ(decoder.decode(128).channel, 0u);
  // Same column advances only after the channel wraps.
  EXPECT_EQ(decoder.decode(128).column, 1u);
}

TEST(AddressDecoder, OffsetWithinWordIgnored) {
  const AddressDecoder decoder(test_config());
  EXPECT_EQ(decoder.decode(0), decoder.decode(63));
  EXPECT_NE(decoder.decode(63), decoder.decode(64));
}

TEST(AddressDecoder, BankAdvancesAfterRowOfColumns) {
  const AddressDecoder decoder(test_config());
  // columns_per_row = 1024/64 = 16; channel stride consumed first.
  // Address of (channel 0, column 15) = 15 * 2 * 64 = 1920.
  EXPECT_EQ(decoder.decode(1920).bank, 0u);
  EXPECT_EQ(decoder.decode(1920).column, 15u);
  // Next channel-0 word: bank 1, column 0.
  EXPECT_EQ(decoder.decode(2048).bank, 1u);
  EXPECT_EQ(decoder.decode(2048).column, 0u);
}

TEST(AddressDecoder, RowWrapsModuloRows) {
  const MemoryConfig config = test_config();
  const AddressDecoder decoder(config);
  // One full row sweep: channels * banks * columns_per_row words.
  const std::uint64_t row_stride = 2ULL * 4 * 16 * 64;
  EXPECT_EQ(decoder.decode(row_stride).row, 1u);
  EXPECT_EQ(decoder.decode(row_stride * 128).row, 0u);  // wraps at 128 rows
}

TEST(AddressDecoder, FlatBankCoversAllBanks) {
  const AddressDecoder decoder(test_config());
  EXPECT_EQ(decoder.total_banks(), 8u);
  std::set<std::uint32_t> seen;
  for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 64) {
    const auto decoded = decoder.decode(addr);
    const auto flat = decoder.flat_bank(decoded);
    EXPECT_LT(flat, decoder.total_banks());
    seen.insert(flat);
  }
  EXPECT_EQ(seen.size(), 8u);  // sequential sweep touches every bank
}

TEST(AddressDecoder, FieldsStayInRange) {
  const MemoryConfig config = test_config();
  const AddressDecoder decoder(config);
  for (std::uint64_t addr = 0; addr < (1ULL << 24); addr += 4093) {
    const auto a = decoder.decode(addr);
    EXPECT_LT(a.channel, config.channels);
    EXPECT_LT(a.rank, config.ranks);
    EXPECT_LT(a.bank, config.banks);
    EXPECT_LT(a.row, config.rows);
    EXPECT_LT(a.column, config.row_bytes / config.access_bytes());
  }
}

TEST(AddressDecoder, RejectsRowSmallerThanAccess) {
  MemoryConfig config = test_config();
  config.row_bytes = 32;  // smaller than 64B access
  EXPECT_THROW(AddressDecoder{config}, Error);
}

}  // namespace
}  // namespace gmd::memsim
