#include "gmd/memsim/config.hpp"

#include <gtest/gtest.h>

#include "gmd/common/error.hpp"

namespace gmd::memsim {
namespace {

TEST(MemoryConfig, DefaultsValidate) {
  MemoryConfig config;
  EXPECT_NO_THROW(config.validate());
}

TEST(MemoryConfig, AccessBytesIsDdrBurst) {
  MemoryConfig config;
  config.bus_bytes = 8;
  config.timing.tBURST = 4;
  EXPECT_EQ(config.access_bytes(), 64u);  // 8B * 4 cycles * 2 (DDR)
}

TEST(MemoryConfig, CapacityArithmetic) {
  MemoryConfig config;
  config.channels = 2;
  config.ranks = 1;
  config.banks = 8;
  config.rows = 1024;
  config.row_bytes = 2048;
  EXPECT_EQ(config.bytes_per_bank(), 1024u * 2048u);
  EXPECT_EQ(config.capacity_bytes(), 2u * 8u * 1024u * 2048u);
}

TEST(MemoryConfig, RejectsInvalidGeometry) {
  MemoryConfig config;
  config.channels = 0;
  EXPECT_THROW(config.validate(), Error);
  config = MemoryConfig{};
  config.row_bytes = 1000;  // not a power of two
  EXPECT_THROW(config.validate(), Error);
  config = MemoryConfig{};
  config.timing.tRFC = 100;  // refresh fields must come as a pair
  EXPECT_THROW(config.validate(), Error);
  config = MemoryConfig{};
  config.timing.tRFC = 200;
  config.timing.tREFI = 100;  // interval shorter than refresh itself
  EXPECT_THROW(config.validate(), Error);
}

TEST(DramPreset, MatchesPaperTimings) {
  const MemoryConfig config = make_dram_config(2, 400, 2000);
  EXPECT_EQ(config.device, DeviceType::kDram);
  EXPECT_EQ(config.timing.tRCD, 9u);
  EXPECT_EQ(config.timing.tRAS, 24u);
  EXPECT_EQ(config.channels, 2u);
  EXPECT_EQ(config.clock_mhz, 400u);
  EXPECT_EQ(config.cpu_freq_mhz, 2000u);
  EXPECT_GT(config.timing.tREFI, 0u);  // DRAM refreshes
  EXPECT_NO_THROW(config.validate());
}

TEST(DramPreset, RefreshScalesWithClock) {
  const MemoryConfig slow = make_dram_config(2, 400, 2000);
  const MemoryConfig fast = make_dram_config(2, 1600, 2000);
  // Same wall-clock refresh interval means 4x the cycles at 4x clock.
  EXPECT_EQ(fast.timing.tREFI, slow.timing.tREFI * 4);
}

TEST(NvmPreset, MatchesPaperProperties) {
  const MemoryConfig config = make_nvm_config(4, 666, 3000, 50);
  EXPECT_EQ(config.device, DeviceType::kNvm);
  EXPECT_EQ(config.timing.tRAS, 0u);   // no data restoration
  EXPECT_EQ(config.timing.tRCD, 50u);  // swept parameter
  EXPECT_EQ(config.timing.tREFI, 0u);  // no refresh
  EXPECT_GT(config.timing.tWR, make_dram_config(4, 666, 3000).timing.tWR)
      << "NVM writes must be slower than DRAM writes";
  EXPECT_NO_THROW(config.validate());
}

TEST(NvmPreset, BackgroundPowerScalesWithClock) {
  const MemoryConfig nvm = make_nvm_config(2, 400, 2000, 20);
  const MemoryConfig dram = make_dram_config(2, 400, 2000);
  EXPECT_GT(nvm.energy.background_mw_per_mhz,
            dram.energy.background_mw_per_mhz);
  EXPECT_LT(nvm.energy.static_mw, dram.energy.static_mw);
}

TEST(PaperAxes, TrcdSetsMatchPaper) {
  EXPECT_EQ(nvm_trcd_set(400),
            (std::vector<std::uint32_t>{20, 30, 40, 50, 60, 80}));
  EXPECT_EQ(nvm_trcd_set(666),
            (std::vector<std::uint32_t>{33, 50, 67, 83, 100, 133}));
  EXPECT_EQ(nvm_trcd_set(1250),
            (std::vector<std::uint32_t>{62, 94, 125, 156, 187, 250}));
  EXPECT_EQ(nvm_trcd_set(1600),
            (std::vector<std::uint32_t>{80, 120, 160, 200, 240, 320}));
  EXPECT_THROW(nvm_trcd_set(123), Error);
}

TEST(PaperAxes, SweepDimensions) {
  EXPECT_EQ(paper_cpu_frequencies_mhz(),
            (std::vector<std::uint32_t>{2000, 3000, 5000, 6500}));
  EXPECT_EQ(paper_controller_frequencies_mhz(),
            (std::vector<std::uint32_t>{400, 666, 1250, 1600}));
  EXPECT_EQ(paper_channel_counts(), (std::vector<std::uint32_t>{2, 4}));
}

TEST(DeviceType, Names) {
  EXPECT_EQ(to_string(DeviceType::kDram), "DRAM");
  EXPECT_EQ(to_string(DeviceType::kNvm), "NVM");
}

}  // namespace
}  // namespace gmd::memsim
