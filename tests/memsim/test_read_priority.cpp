#include <gtest/gtest.h>

#include "gmd/memsim/channel.hpp"
#include "gmd/memsim/memory_system.hpp"

namespace gmd::memsim {
namespace {

using cpusim::MemoryEvent;

/// Mixed trace: bursts of slow writes interleaved with reads.
std::vector<MemoryEvent> mixed_trace(std::size_t n = 1500) {
  std::vector<MemoryEvent> trace;
  std::uint64_t tick = 0;
  for (std::size_t i = 0; i < n; ++i) {
    tick += 8;
    // Every third access is a write burst member to distinct rows.
    const bool write = i % 3 == 0;
    const std::uint64_t address =
        write ? 0x400000 + (i % 29) * 16384 : 0x100000 + i * 64;
    trace.push_back({tick, address, 64, write});
  }
  return trace;
}

MemoryConfig nvm_with(bool prioritize) {
  MemoryConfig config = make_nvm_config(2, 666, 3000, 67);
  config.prioritize_reads = prioritize;
  return config;
}

/// Request-weighted average total latency on a single channel.  The
/// stats do not split latency by request type, but reads outnumber
/// writes 2:1 in the mixed trace, so the aggregate moves with them.
double mixed_latency(const MemoryConfig& config,
                     const std::vector<MemoryEvent>& trace) {
  MemoryConfig single = config;
  single.channels = 1;
  MemorySystem system(single);
  for (const auto& event : trace) system.enqueue_event(event);
  return system.finish().avg_total_latency_cycles;
}

TEST(ReadPriority, ImprovesLatencyOnReadHeavyMix) {
  const auto trace = mixed_trace();
  const double without = mixed_latency(nvm_with(false), trace);
  const double with = mixed_latency(nvm_with(true), trace);
  // Reads are 2/3 of requests; letting them jump slow NVM writes must
  // reduce the request-weighted total latency.
  EXPECT_LT(with, without);
}

TEST(ReadPriority, AllRequestsStillComplete) {
  const auto trace = mixed_trace(600);
  const auto m = MemorySystem::simulate(nvm_with(true), trace);
  EXPECT_EQ(m.total_reads + m.total_writes, trace.size());
  EXPECT_EQ(m.total_writes, 200u);
}

TEST(ReadPriority, WritesDrainAtWatermark) {
  // All-write trace: with prioritization on, writes must still be
  // served (no reads to prefer, and the watermark forces drains).
  std::vector<MemoryEvent> writes;
  for (std::size_t i = 0; i < 300; ++i) {
    writes.push_back({i * 5, 0x100000 + i * 64, 64, true});
  }
  MemoryConfig config = nvm_with(true);
  config.write_drain_watermark = 4;
  const auto m = MemorySystem::simulate(config, writes);
  EXPECT_EQ(m.total_writes, 300u);
}

TEST(ReadPriority, OffByDefaultMatchesLegacyBehavior) {
  const MemoryConfig config = make_dram_config(2, 666, 3000);
  EXPECT_FALSE(config.prioritize_reads);
  const auto trace = mixed_trace(400);
  const auto a = MemorySystem::simulate(config, trace);
  MemoryConfig copy = config;
  const auto b = MemorySystem::simulate(copy, trace);
  EXPECT_EQ(a.metric_values(), b.metric_values());
}

}  // namespace
}  // namespace gmd::memsim
