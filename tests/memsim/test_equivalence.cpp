/// Golden-equivalence suite: the bitmask-window fast scheduler must be
/// bit-identical to the original scan-and-erase reference scheduler
/// (MemSimOptions::reference_mode) on every policy combination, and the
/// shared predecoded-trace replay must be bit-identical to the raw
/// event path.  Any divergence here means the fast path changed
/// simulated behaviour, not just speed.

#include <gtest/gtest.h>

#include <tuple>

#include "gmd/memsim/hybrid.hpp"
#include "gmd/memsim/memory_system.hpp"

namespace gmd::memsim {
namespace {

using cpusim::MemoryEvent;

std::vector<MemoryEvent> mixed_trace(std::size_t n = 2000) {
  // Streaming, strided, and hot-cluster phases with both narrow and
  // wide (split) accesses — exercises row hits, conflicts, write
  // drains, and the transaction splitter.
  std::vector<MemoryEvent> trace;
  trace.reserve(n);
  std::uint64_t tick = 0;
  for (std::size_t i = 0; i < n; ++i) {
    tick += 3 + (i % 7) * 5;
    std::uint64_t address;
    switch (i % 4) {
      case 0:
        address = 0x100000 + i * 64;  // stream
        break;
      case 1:
        address = 0x400000 + (i % 41) * 8192;  // strided rows
        break;
      case 2:
        address = 0x800000 + (i % 13) * 64;  // hot cluster
        break;
      default:
        address = 0x200000 + (i % 29) * 4096;  // page-strided
        break;
    }
    const std::uint32_t size = i % 5 == 0 ? 128 : 64;  // some split in two
    trace.push_back({tick, address, size, i % 3 == 1});
  }
  return trace;
}

/// Full-surface comparison: every scalar metric, every counter, and the
/// whole epoch series.  EXPECT_EQ on doubles is deliberate — the fast
/// path must make the *same* floating-point computations, not merely
/// close ones.
void expect_identical(const MemoryMetrics& a, const MemoryMetrics& b) {
  EXPECT_EQ(a.metric_values(), b.metric_values());
  EXPECT_EQ(a.total_reads, b.total_reads);
  EXPECT_EQ(a.total_writes, b.total_writes);
  EXPECT_EQ(a.row_hits, b.row_hits);
  EXPECT_EQ(a.row_misses, b.row_misses);
  EXPECT_EQ(a.execution_seconds, b.execution_seconds);
  EXPECT_EQ(a.dynamic_energy_j, b.dynamic_energy_j);
  EXPECT_EQ(a.background_energy_j, b.background_energy_j);
  EXPECT_EQ(a.max_line_writes, b.max_line_writes);
  EXPECT_EQ(a.unique_lines_written, b.unique_lines_written);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_EQ(a.epochs[e].reads, b.epochs[e].reads) << "epoch " << e;
    EXPECT_EQ(a.epochs[e].writes, b.epochs[e].writes) << "epoch " << e;
    EXPECT_EQ(a.epochs[e].avg_total_latency_cycles,
              b.epochs[e].avg_total_latency_cycles)
        << "epoch " << e;
    EXPECT_EQ(a.epochs[e].bandwidth_mbs, b.epochs[e].bandwidth_mbs)
        << "epoch " << e;
  }
}

MemoryMetrics run_reference(MemoryConfig config,
                            std::span<const MemoryEvent> trace) {
  config.sim.reference_mode = true;
  return MemorySystem::simulate(config, trace);
}

// Axes: (is_nvm, scheduling, page_policy, prioritize_reads, queue_depth).
using EquivTuple = std::tuple<bool, SchedulingPolicy, PagePolicy, bool,
                              std::uint32_t>;

class FastVsReference : public testing::TestWithParam<EquivTuple> {
 protected:
  MemoryConfig make_config() const {
    const auto [is_nvm, scheduling, page, prio, depth] = GetParam();
    MemoryConfig config = is_nvm ? make_nvm_config(2, 666, 3000, 40)
                                 : make_dram_config(2, 666, 3000);
    config.scheduling = scheduling;
    config.page_policy = page;
    config.prioritize_reads = prio;
    config.queue_depth = depth;
    return config;
  }
};

TEST_P(FastVsReference, IdenticalMetrics) {
  const MemoryConfig config = make_config();
  const auto trace = mixed_trace();
  expect_identical(MemorySystem::simulate(config, trace),
                   run_reference(config, trace));
}

TEST_P(FastVsReference, IdenticalMetricsPredecoded) {
  const MemoryConfig config = make_config();
  const auto trace = mixed_trace();
  const auto predecoded = PredecodedTrace::build(config, trace);
  expect_identical(MemorySystem::simulate(config, predecoded),
                   run_reference(config, trace));
}

INSTANTIATE_TEST_SUITE_P(
    PolicyMatrix, FastVsReference,
    testing::Combine(testing::Bool(),  // DRAM / NVM
                     testing::Values(SchedulingPolicy::kFcfs,
                                     SchedulingPolicy::kFrFcfs),
                     testing::Values(PagePolicy::kOpen, PagePolicy::kClosed),
                     testing::Bool(),            // prioritize_reads
                     testing::Values(4u, 32u)),  // tight vs default queue
    [](const testing::TestParamInfo<EquivTuple>& info) {
      std::string name = std::get<0>(info.param) ? "Nvm" : "Dram";
      name += std::get<1>(info.param) == SchedulingPolicy::kFcfs ? "Fcfs"
                                                                 : "FrFcfs";
      name += std::get<2>(info.param) == PagePolicy::kOpen ? "Open"
                                                           : "Closed";
      name += std::get<3>(info.param) ? "ReadPrio" : "";
      name += "Q" + std::to_string(std::get<4>(info.param));
      return name;
    });

TEST(FastVsReferenceExtra, RefreshEnabled) {
  // The presets ship with refresh off; force a short tREFI so the
  // cached-refresh-window fast path sees many windows.
  MemoryConfig config = make_dram_config(2, 666, 3000);
  config.timing.tRFC = 160;
  config.timing.tREFI = 2000;
  const auto trace = mixed_trace();
  expect_identical(MemorySystem::simulate(config, trace),
                   run_reference(config, trace));
}

TEST(FastVsReferenceExtra, EpochSeries) {
  MemoryConfig config = make_dram_config(2, 666, 3000);
  config.epoch_cycles = 5000;
  const auto trace = mixed_trace();
  const MemoryMetrics fast = MemorySystem::simulate(config, trace);
  ASSERT_GT(fast.epochs.size(), 1u);
  expect_identical(fast, run_reference(config, trace));
}

TEST(FastVsReferenceExtra, WriteDrainWatermark) {
  // Read priority with a low watermark forces many drain transitions,
  // the case where the fast path's arrival-horizon cache must retreat.
  MemoryConfig config = make_nvm_config(2, 666, 3000, 40);
  config.prioritize_reads = true;
  config.write_drain_watermark = 4;
  const auto trace = mixed_trace();
  expect_identical(MemorySystem::simulate(config, trace),
                   run_reference(config, trace));
}

TEST(FastVsReferenceExtra, SingleEntryQueue) {
  // queue_depth 1 degenerates to serial service; back-pressure on
  // every enqueue.
  MemoryConfig config = make_dram_config(1, 400, 2000);
  config.queue_depth = 1;
  const auto trace = mixed_trace(500);
  expect_identical(MemorySystem::simulate(config, trace),
                   run_reference(config, trace));
}

TEST(FastVsReferenceExtra, DeepQueueFallsBackToReference) {
  // Depths beyond the 64-slot window run the reference scheduler even
  // without the flag; results must still match the flagged run.
  MemoryConfig config = make_dram_config(2, 666, 3000);
  config.queue_depth = 64;
  const auto trace = mixed_trace();
  expect_identical(MemorySystem::simulate(config, trace),
                   run_reference(config, trace));
}

TEST(FastVsReferenceExtra, AlternateAddressMapping) {
  // Bank-finer-than-channel interleave spreads a stream across banks,
  // changing which bank masks stay populated.
  MemoryConfig config = make_dram_config(2, 666, 3000);
  config.address_mapping = "R:RK:CH:BK:C";
  const auto trace = mixed_trace();
  expect_identical(MemorySystem::simulate(config, trace),
                   run_reference(config, trace));
}

TEST(HybridEquivalence, FastVsReference) {
  HybridConfig config = make_hybrid_config(4, 666, 3000, 40);
  const auto trace = mixed_trace();
  const MemoryMetrics fast = HybridMemory::simulate(config, trace);
  HybridConfig ref = config;
  ref.dram.sim.reference_mode = true;
  ref.nvm.sim.reference_mode = true;
  expect_identical(fast, HybridMemory::simulate(ref, trace));
}

TEST(HybridEquivalence, PredecodedVsEventPath) {
  const HybridConfig config = make_hybrid_config(4, 666, 3000, 40);
  const auto trace = mixed_trace();
  const auto [dram_side, nvm_side] = predecode_hybrid(config, trace);
  expect_identical(HybridMemory::simulate(config, dram_side, nvm_side),
                   HybridMemory::simulate(config, trace));
}

TEST(HybridEquivalence, UnevenSplitPredecoded) {
  HybridConfig config = make_hybrid_config(4, 666, 3000, 40, 0.25);
  const auto trace = mixed_trace();
  const auto [dram_side, nvm_side] = predecode_hybrid(config, trace);
  expect_identical(HybridMemory::simulate(config, dram_side, nvm_side),
                   HybridMemory::simulate(config, trace));
}

}  // namespace
}  // namespace gmd::memsim
