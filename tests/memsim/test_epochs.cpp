#include <gtest/gtest.h>

#include <sstream>

#include "gmd/memsim/config_io.hpp"
#include "gmd/memsim/memory_system.hpp"

namespace gmd::memsim {
namespace {

using cpusim::MemoryEvent;

std::vector<MemoryEvent> two_phase_trace() {
  // Dense phase followed by a long gap and a sparse phase.
  std::vector<MemoryEvent> trace;
  for (std::size_t i = 0; i < 400; ++i) {
    trace.push_back({i * 10, 0x100000 + i * 64, 64, i % 5 == 0});
  }
  for (std::size_t i = 0; i < 40; ++i) {
    trace.push_back({200000 + i * 400, 0x300000 + i * 64, 64, false});
  }
  return trace;
}

MemoryConfig epoch_config() {
  MemoryConfig config = make_dram_config(2, 400, 2000);
  config.epoch_cycles = 5000;
  return config;
}

TEST(Epochs, DisabledByDefault) {
  const auto m =
      MemorySystem::simulate(make_dram_config(2, 400, 2000), two_phase_trace());
  EXPECT_TRUE(m.epochs.empty());
}

TEST(Epochs, SamplesConserveRequestCounts) {
  const auto m = MemorySystem::simulate(epoch_config(), two_phase_trace());
  ASSERT_FALSE(m.epochs.empty());
  std::uint64_t reads = 0, writes = 0;
  for (const auto& sample : m.epochs) {
    reads += sample.reads;
    writes += sample.writes;
  }
  EXPECT_EQ(reads, m.total_reads);
  EXPECT_EQ(writes, m.total_writes);
}

TEST(Epochs, IndicesAreSequential) {
  const auto m = MemorySystem::simulate(epoch_config(), two_phase_trace());
  for (std::size_t i = 0; i < m.epochs.size(); ++i) {
    EXPECT_EQ(m.epochs[i].epoch, i);
  }
}

TEST(Epochs, CaptureThePhaseStructure) {
  const auto m = MemorySystem::simulate(epoch_config(), two_phase_trace());
  // The dense first phase lands in early epochs; the gap produces
  // idle epochs (zero requests) before the sparse tail.
  ASSERT_GE(m.epochs.size(), 3u);
  EXPECT_GT(m.epochs.front().reads + m.epochs.front().writes, 0u);
  bool saw_idle = false;
  for (const auto& sample : m.epochs) {
    if (sample.reads + sample.writes == 0) saw_idle = true;
  }
  EXPECT_TRUE(saw_idle);
  // Busy epochs carry bandwidth; idle ones none.
  for (const auto& sample : m.epochs) {
    if (sample.reads + sample.writes == 0) {
      EXPECT_EQ(sample.bandwidth_mbs, 0.0);
    } else {
      EXPECT_GT(sample.bandwidth_mbs, 0.0);
    }
  }
}

TEST(Epochs, ConfigRoundTripsEpochCycles) {
  MemoryConfig config = epoch_config();
  std::stringstream ss;
  write_config(ss, config);
  const MemoryConfig back = read_config(ss);
  EXPECT_EQ(back.epoch_cycles, 5000u);
}

}  // namespace
}  // namespace gmd::memsim
