#include <gtest/gtest.h>

#include "gmd/memsim/channel.hpp"

namespace gmd::memsim {
namespace {

MemoryConfig config_without_refresh() {
  MemoryConfig config;
  config.channels = 1;
  config.ranks = 1;
  config.banks = 8;
  config.scheduling = SchedulingPolicy::kFcfs;
  config.timing.tRFC = 0;
  config.timing.tREFI = 0;
  return config;
}

Request to_bank(std::uint32_t bank, std::uint64_t arrival = 0) {
  Request r;
  r.arrival = arrival;
  r.bank = bank;
  r.row = 1;
  return r;
}

TEST(RankTiming, TrrdSpacesBackToBackActivates) {
  MemoryConfig config = config_without_refresh();
  config.timing.tRRD = 100;  // exaggerate
  config.timing.tFAW = 0;
  Channel channel(config);
  channel.enqueue(to_bank(0));
  channel.enqueue(to_bank(1));  // different bank, same rank
  channel.drain();
  const auto& t = config.timing;
  // Second ACT at >= 100; completes at 100 + tRCD + tCAS + tBURST.
  EXPECT_EQ(channel.stats().last_completion,
            100 + t.tRCD + t.tCAS + t.tBURST);
}

TEST(RankTiming, TfawLimitsActivateBursts) {
  MemoryConfig config = config_without_refresh();
  config.timing.tRRD = 1;
  config.timing.tFAW = 500;  // exaggerate
  Channel channel(config);
  for (std::uint32_t b = 0; b < 5; ++b) channel.enqueue(to_bank(b));
  channel.drain();
  const auto& t = config.timing;
  // ACTs 1-4 at ~0,1,2,3 (wait, command engine spacing applies, but
  // tRRD=1 dominates); the 5th ACT must wait until first ACT + tFAW.
  EXPECT_GE(channel.stats().last_completion,
            500 + t.tRCD + t.tCAS + t.tBURST);
}

TEST(RankTiming, TfawZeroDisablesWindow) {
  MemoryConfig config = config_without_refresh();
  config.timing.tRRD = 1;
  config.timing.tFAW = 0;
  Channel channel(config);
  for (std::uint32_t b = 0; b < 5; ++b) channel.enqueue(to_bank(b));
  channel.drain();
  // Without tFAW the five requests pipeline on the data bus.
  const auto& t = config.timing;
  EXPECT_LT(channel.stats().last_completion,
            100 + t.tRCD + t.tCAS + 5 * t.tBURST + 5 * t.tCCD);
}

TEST(RankTiming, SeparateRanksDoNotShareWindow) {
  MemoryConfig config = config_without_refresh();
  config.ranks = 2;
  config.timing.tRRD = 200;
  config.timing.tFAW = 0;
  Channel channel(config);
  Request a = to_bank(0);
  Request b = to_bank(0);
  b.rank = 1;  // other rank: no tRRD coupling
  channel.enqueue(a);
  channel.enqueue(b);
  channel.drain();
  const auto& t = config.timing;
  // Both ACTs issue promptly; completion bounded by bus pipelining,
  // far below the 200-cycle tRRD stall.
  EXPECT_LT(channel.stats().last_completion,
            t.tRCD + t.tCAS + 3 * t.tBURST + t.tCCD + 10);
}

TEST(RankTiming, RowHitsUnaffectedByActivatePacing) {
  MemoryConfig config = config_without_refresh();
  config.timing.tRRD = 300;
  Channel channel(config);
  channel.enqueue(to_bank(0, 0));
  Request hit = to_bank(0, 1000);  // same row -> no ACT needed
  channel.enqueue(hit);
  channel.drain();
  const auto& t = config.timing;
  EXPECT_EQ(channel.stats().last_completion, 1000 + t.tCAS + t.tBURST);
}

}  // namespace
}  // namespace gmd::memsim
