#include "gmd/memsim/hybrid.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "gmd/common/error.hpp"

namespace gmd::memsim {
namespace {

using cpusim::MemoryEvent;

std::vector<MemoryEvent> stream_trace(std::size_t n) {
  std::vector<MemoryEvent> trace;
  for (std::size_t i = 0; i < n; ++i) {
    trace.push_back({i * 20, 0x100000 + i * 64, 64, i % 4 == 3});
  }
  return trace;
}

TEST(HybridConfig, PresetSplitsChannelsEvenly) {
  const HybridConfig config = make_hybrid_config(4, 666, 3000, 50);
  EXPECT_EQ(config.dram.channels, 2u);
  EXPECT_EQ(config.nvm.channels, 2u);
  EXPECT_EQ(config.total_channels(), 4u);
  EXPECT_NO_THROW(config.validate());
}

TEST(HybridConfig, RejectsOddChannelsAndBadFraction) {
  EXPECT_THROW(make_hybrid_config(3, 400, 2000, 20), Error);
  HybridConfig config = make_hybrid_config(2, 400, 2000, 20);
  config.dram_fraction = 0.0;
  EXPECT_THROW(config.validate(), Error);
  config.dram_fraction = 1.0;
  EXPECT_THROW(config.validate(), Error);
}

TEST(HybridConfig, RejectsSwappedTechnologies) {
  HybridConfig config = make_hybrid_config(2, 400, 2000, 20);
  std::swap(config.dram, config.nvm);
  EXPECT_THROW(config.validate(), Error);
}

TEST(HybridMemory, RoutingIsDeterministicAndPageGranular) {
  const HybridConfig config = make_hybrid_config(2, 400, 2000, 20);
  const HybridMemory memory(config);
  for (std::uint64_t page = 0; page < 64; ++page) {
    const std::uint64_t base = page * config.page_bytes;
    const bool first = memory.routes_to_dram(base);
    // All addresses in one page route the same way.
    EXPECT_EQ(memory.routes_to_dram(base + 64), first);
    EXPECT_EQ(memory.routes_to_dram(base + config.page_bytes - 1), first);
  }
}

TEST(HybridMemory, FractionControlsDramShare) {
  HybridConfig low = make_hybrid_config(2, 400, 2000, 20);
  low.dram_fraction = 0.2;
  HybridConfig high = make_hybrid_config(2, 400, 2000, 20);
  high.dram_fraction = 0.8;
  const HybridMemory low_mem(low);
  const HybridMemory high_mem(high);
  int low_hits = 0, high_hits = 0;
  for (std::uint64_t page = 0; page < 2000; ++page) {
    const std::uint64_t addr = page * 4096;
    low_hits += low_mem.routes_to_dram(addr) ? 1 : 0;
    high_hits += high_mem.routes_to_dram(addr) ? 1 : 0;
  }
  EXPECT_NEAR(low_hits / 2000.0, 0.2, 0.05);
  EXPECT_NEAR(high_hits / 2000.0, 0.8, 0.05);
}

TEST(HybridMemory, AllRequestsAccounted) {
  const HybridConfig config = make_hybrid_config(2, 400, 2000, 20);
  const auto trace = stream_trace(1000);
  const MemoryMetrics m = HybridMemory::simulate(config, trace);
  EXPECT_EQ(m.total_reads + m.total_writes, 1000u);
  EXPECT_EQ(m.channels, 2u);
}

TEST(HybridMemory, PowerBetweenPureDramAndPureNvm) {
  const auto trace = stream_trace(4000);
  const MemoryMetrics dram =
      MemorySystem::simulate(make_dram_config(2, 400, 2000), trace);
  const MemoryMetrics nvm =
      MemorySystem::simulate(make_nvm_config(2, 400, 2000, 20), trace);
  const MemoryMetrics hybrid =
      HybridMemory::simulate(make_hybrid_config(2, 400, 2000, 20), trace);
  EXPECT_LT(hybrid.avg_power_per_channel_w, dram.avg_power_per_channel_w);
  EXPECT_GT(hybrid.avg_power_per_channel_w, nvm.avg_power_per_channel_w);
}

TEST(HybridMemory, LatencyIsRequestWeighted) {
  const auto trace = stream_trace(2000);
  const MemoryMetrics m =
      HybridMemory::simulate(make_hybrid_config(2, 666, 3000, 67), trace);
  EXPECT_GT(m.avg_latency_cycles, 0.0);
  EXPECT_GE(m.avg_total_latency_cycles, m.avg_latency_cycles);
}

TEST(HybridMemory, EnduranceMergesBothSides) {
  const HybridConfig config = make_hybrid_config(2, 400, 2000, 20);
  HybridMemory memory(config);
  // Write the same line repeatedly plus one distinct line.
  for (int i = 0; i < 7; ++i)
    memory.enqueue_event({static_cast<std::uint64_t>(i * 100), 0x2000, 8, true});
  memory.enqueue_event({1000, 0x900000, 8, true});
  const MemoryMetrics m = memory.finish();
  EXPECT_EQ(m.max_line_writes, 7u);
  EXPECT_EQ(m.unique_lines_written, 2u);
}

TEST(HybridMemory, DeterministicAcrossRuns) {
  const auto trace = stream_trace(500);
  const HybridConfig config = make_hybrid_config(4, 1250, 5000, 125);
  const MemoryMetrics a = HybridMemory::simulate(config, trace);
  const MemoryMetrics b = HybridMemory::simulate(config, trace);
  EXPECT_EQ(a.metric_values(), b.metric_values());
}

}  // namespace
}  // namespace gmd::memsim
