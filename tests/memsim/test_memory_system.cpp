#include "gmd/memsim/memory_system.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "gmd/common/error.hpp"

namespace gmd::memsim {
namespace {

using cpusim::MemoryEvent;

MemoryConfig small_config() {
  MemoryConfig config = make_dram_config(2, 400, 2000);
  config.rows = 512;  // keep the address map small for tests
  return config;
}

/// A synthetic streaming trace: `n` 64-byte accesses, stride apart,
/// every fourth one a write, spaced `gap` CPU ticks.
std::vector<MemoryEvent> stream_trace(std::size_t n, std::uint64_t stride = 64,
                                      std::uint64_t gap = 20) {
  std::vector<MemoryEvent> trace;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    trace.push_back({i * gap, 0x100000 + i * stride, 64, i % 4 == 3});
  }
  return trace;
}

TEST(MemorySystem, TickScalingFollowsClockRatio) {
  MemoryConfig config = small_config();
  config.cpu_freq_mhz = 2000;
  config.clock_mhz = 400;
  const MemorySystem system(config);
  EXPECT_EQ(system.tick_to_memory_cycle(0), 0u);
  EXPECT_EQ(system.tick_to_memory_cycle(2000), 400u);
  EXPECT_EQ(system.tick_to_memory_cycle(5), 1u);
}

TEST(MemorySystem, CountsReadsAndWrites) {
  const auto trace = stream_trace(100);
  const MemoryMetrics m = MemorySystem::simulate(small_config(), trace);
  EXPECT_EQ(m.total_reads, 75u);
  EXPECT_EQ(m.total_writes, 25u);
  EXPECT_DOUBLE_EQ(m.avg_reads_per_channel, 37.5);
  EXPECT_DOUBLE_EQ(m.avg_writes_per_channel, 12.5);
}

TEST(MemorySystem, ReadsPerChannelHalveWithDoubleChannels) {
  const auto trace = stream_trace(400);
  const MemoryMetrics two =
      MemorySystem::simulate(make_dram_config(2, 400, 2000), trace);
  const MemoryMetrics four =
      MemorySystem::simulate(make_dram_config(4, 400, 2000), trace);
  EXPECT_DOUBLE_EQ(two.avg_reads_per_channel,
                   2.0 * four.avg_reads_per_channel);
  EXPECT_DOUBLE_EQ(two.avg_writes_per_channel,
                   2.0 * four.avg_writes_per_channel);
}

TEST(MemorySystem, BandwidthPerBankHalvesWithDoubleChannels) {
  const auto trace = stream_trace(4000, 64, 10);
  const MemoryMetrics two =
      MemorySystem::simulate(make_dram_config(2, 1250, 5000), trace);
  const MemoryMetrics four =
      MemorySystem::simulate(make_dram_config(4, 1250, 5000), trace);
  // Same bytes over ~the same time, spread over twice the banks.
  EXPECT_NEAR(four.avg_bandwidth_per_bank_mbs,
              two.avg_bandwidth_per_bank_mbs / 2.0,
              two.avg_bandwidth_per_bank_mbs * 0.1);
}

TEST(MemorySystem, BandwidthGrowsWithCpuFrequency) {
  // Sparse arrivals (one access per 200 CPU ticks) keep the memory
  // system under capacity, so wall time — and hence bandwidth — tracks
  // the CPU clock rather than the service rate.
  const auto trace = stream_trace(4000, 64, 200);
  const MemoryMetrics slow =
      MemorySystem::simulate(make_dram_config(2, 1250, 2000), trace);
  const MemoryMetrics fast =
      MemorySystem::simulate(make_dram_config(2, 1250, 6500), trace);
  EXPECT_GT(fast.avg_bandwidth_per_bank_mbs,
            slow.avg_bandwidth_per_bank_mbs * 2.0);
}

TEST(MemorySystem, WideAccessSplitsIntoWords) {
  MemoryConfig config = small_config();
  MemorySystem system(config);
  system.enqueue_event({0, 0x1000, 256, false});  // 4 words
  const MemoryMetrics m = system.finish();
  EXPECT_EQ(m.total_reads, 4u);
}

TEST(MemorySystem, UnalignedAccessTouchesBothWords) {
  MemoryConfig config = small_config();
  MemorySystem system(config);
  system.enqueue_event({0, 0x103C, 8, false});  // straddles 0x1000/0x1040
  const MemoryMetrics m = system.finish();
  EXPECT_EQ(m.total_reads, 2u);
}

TEST(MemorySystem, NvmWritesSlowerThanDram) {
  // Write-heavy trace to one bank: NVM's write recovery must show up in
  // total latency.
  std::vector<MemoryEvent> trace;
  for (std::size_t i = 0; i < 200; ++i) {
    trace.push_back({i * 4, 0x1000 + (i % 4) * 128 * 512, 64, true});
  }
  const MemoryMetrics dram =
      MemorySystem::simulate(make_dram_config(2, 400, 2000), trace);
  const MemoryMetrics nvm = MemorySystem::simulate(
      make_nvm_config(2, 400, 2000, /*tRCD=*/20), trace);
  EXPECT_GT(nvm.avg_total_latency_cycles, 2.0 * dram.avg_total_latency_cycles);
}

TEST(MemorySystem, DramPowerExceedsNvmAtLowClock) {
  const auto trace = stream_trace(2000);
  const MemoryMetrics dram =
      MemorySystem::simulate(make_dram_config(2, 400, 2000), trace);
  const MemoryMetrics nvm =
      MemorySystem::simulate(make_nvm_config(2, 400, 2000, 20), trace);
  EXPECT_GT(dram.avg_power_per_channel_w, nvm.avg_power_per_channel_w);
}

TEST(MemorySystem, NvmPowerGrowsWithControllerClock) {
  const auto trace = stream_trace(2000);
  const MemoryMetrics slow =
      MemorySystem::simulate(make_nvm_config(2, 400, 2000, 20), trace);
  const MemoryMetrics fast =
      MemorySystem::simulate(make_nvm_config(2, 1600, 2000, 80), trace);
  EXPECT_GT(fast.avg_power_per_channel_w,
            1.5 * slow.avg_power_per_channel_w);
}

TEST(MemorySystem, EnduranceTracksHottestLine) {
  MemorySystem system(small_config());
  for (int i = 0; i < 10; ++i) system.enqueue_event({static_cast<std::uint64_t>(i * 100), 0x4000, 8, true});
  system.enqueue_event({2000, 0x8000, 8, true});
  const MemoryMetrics m = system.finish();
  EXPECT_EQ(m.max_line_writes, 10u);
  EXPECT_EQ(m.unique_lines_written, 2u);
}

TEST(MemorySystem, RowHitRateHighForSequentialTrace) {
  const auto trace = stream_trace(2000, 64, 50);
  const MemoryMetrics m =
      MemorySystem::simulate(make_dram_config(2, 400, 2000), trace);
  EXPECT_GT(m.row_hit_rate(), 0.8);
}

TEST(MemorySystem, EmptyTraceYieldsZeroMetrics) {
  const MemoryMetrics m = MemorySystem::simulate(
      small_config(), std::span<const cpusim::MemoryEvent>{});
  EXPECT_EQ(m.total_reads, 0u);
  EXPECT_EQ(m.execution_seconds, 0.0);
  EXPECT_EQ(m.avg_power_per_channel_w, 0.0);
  EXPECT_EQ(m.avg_bandwidth_per_bank_mbs, 0.0);
}

TEST(MemorySystem, FinishTwiceThrows) {
  MemorySystem system(small_config());
  (void)system.finish();
  EXPECT_THROW((void)system.finish(), Error);
}

TEST(MemorySystem, EnqueueAfterFinishThrows) {
  MemorySystem system(small_config());
  (void)system.finish();
  EXPECT_THROW(system.enqueue_event({0, 0, 8, false}), Error);
}

TEST(MemorySystem, MetricValuesMatchNames) {
  const auto trace = stream_trace(100);
  const MemoryMetrics m = MemorySystem::simulate(small_config(), trace);
  EXPECT_EQ(MemoryMetrics::metric_names().size(), m.metric_values().size());
  EXPECT_DOUBLE_EQ(m.metric_values()[0], m.avg_power_per_channel_w);
  EXPECT_DOUBLE_EQ(m.metric_values()[4], m.avg_reads_per_channel);
}

TEST(MemorySystem, DescribeMentionsChannels) {
  const MemoryMetrics m =
      MemorySystem::simulate(small_config(), stream_trace(10));
  EXPECT_NE(m.describe().find("channels"), std::string::npos);
}

TEST(MemorySystem, DeterministicAcrossRuns) {
  const auto trace = stream_trace(500);
  const MemoryMetrics a = MemorySystem::simulate(small_config(), trace);
  const MemoryMetrics b = MemorySystem::simulate(small_config(), trace);
  EXPECT_EQ(a.metric_values(), b.metric_values());
}

}  // namespace
}  // namespace gmd::memsim
