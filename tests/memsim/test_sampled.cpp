/// Chunk-sampled simulation: exhaustive anchor (a sample covering every
/// chunk reproduces the exact full-trace metrics), determinism,
/// deadline handling, and the statistical contract — across many seeds,
/// the reported confidence intervals must contain the exhaustive metric
/// at (at least) the configured rate.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "gmd/common/deadline.hpp"
#include "gmd/common/error.hpp"
#include "gmd/memsim/memory_system.hpp"
#include "gmd/memsim/sampled.hpp"

namespace gmd::memsim {
namespace {

using cpusim::MemoryEvent;

/// Irregular trace with slow phase drift, so chunks differ (sampling has
/// real variance to estimate) without any single chunk being wildly
/// unrepresentative.
std::vector<MemoryEvent> phased_trace(std::size_t n) {
  std::vector<MemoryEvent> trace;
  trace.reserve(n);
  std::uint64_t tick = 0;
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t r = state >> 33;
    tick += 2 + (r % 9);
    const std::size_t phase = (i / 512) % 3;
    std::uint64_t address;
    if (phase == 0) {
      address = 0x100000 + i * 64;  // streaming
    } else if (phase == 1) {
      address = 0x400000 + (r % 97) * 8192;  // scattered rows
    } else {
      address = 0x800000 + (r % 29) * 64;  // hot cluster
    }
    trace.push_back({tick, address, 64, r % 4 == 0});
  }
  return trace;
}

TEST(SpanChunkedTrace, ChunksTileTheSpan) {
  const auto events = phased_trace(1050);
  SpanChunkedTrace chunked(events, 100);
  EXPECT_EQ(chunked.num_chunks(), 11u);
  std::size_t total = 0;
  for (std::size_t k = 0; k < chunked.num_chunks(); ++k) {
    const auto span = chunked.chunk(k);
    EXPECT_EQ(span.front().tick, events[total].tick);
    total += span.size();
  }
  EXPECT_EQ(total, events.size());
  EXPECT_EQ(chunked.chunk(10).size(), 50u);
  EXPECT_THROW(chunked.chunk(11), gmd::Error);
}

TEST(SampledSim, FullFractionIsExactExhaustiveRun) {
  const MemoryConfig config = make_dram_config(2, 666, 3000);
  const auto events = phased_trace(4000);
  SpanChunkedTrace chunked(events, 500);
  SampledSimOptions options;
  options.fraction = 1.0;
  const SampledMetrics sampled = simulate_sampled(config, chunked, options);
  const MemoryMetrics exact = MemorySystem::simulate(config, events);
  EXPECT_TRUE(sampled.exhaustive);
  EXPECT_EQ(sampled.chunks_sampled, sampled.chunks_total);
  EXPECT_EQ(sampled.estimate.metric_values(), exact.metric_values());
  EXPECT_EQ(sampled.estimate.total_reads, exact.total_reads);
  EXPECT_EQ(sampled.estimate.execution_seconds, exact.execution_seconds);
  const auto values = exact.metric_values();
  for (std::size_t i = 0; i < sampled.ci.size(); ++i) {
    EXPECT_EQ(sampled.ci[i].lo, values[i]);
    EXPECT_EQ(sampled.ci[i].hi, values[i]);
  }
}

TEST(SampledSim, SmallTraceFallsBackToExhaustive) {
  // min_sampled_chunks >= num_chunks forces the exact path.
  const MemoryConfig config = make_dram_config(2, 666, 3000);
  const auto events = phased_trace(900);
  SpanChunkedTrace chunked(events, 300);
  SampledSimOptions options;
  options.fraction = 0.1;
  const SampledMetrics sampled = simulate_sampled(config, chunked, options);
  EXPECT_TRUE(sampled.exhaustive);
}

TEST(SampledSim, DeterministicForFixedSeed) {
  const MemoryConfig config = make_nvm_config(2, 666, 3000, 40);
  const auto events = phased_trace(20000);
  SpanChunkedTrace chunked(events, 250);
  SampledSimOptions options;
  options.seed = 7;
  const SampledMetrics a = simulate_sampled(config, chunked, options);
  const SampledMetrics b = simulate_sampled(config, chunked, options);
  EXPECT_EQ(a.estimate.metric_values(), b.estimate.metric_values());
  EXPECT_EQ(a.chunks_sampled, b.chunks_sampled);
  EXPECT_EQ(a.events_measured, b.events_measured);
  for (std::size_t i = 0; i < a.ci.size(); ++i) {
    EXPECT_EQ(a.ci[i].lo, b.ci[i].lo);
    EXPECT_EQ(a.ci[i].hi, b.ci[i].hi);
  }
  options.seed = 8;
  const SampledMetrics c = simulate_sampled(config, chunked, options);
  EXPECT_FALSE(c.exhaustive);
  EXPECT_NE(a.events_measured, 0u);
  // A different seed picks a different subset (overwhelmingly likely),
  // so at least one estimate should move.
  EXPECT_NE(a.estimate.metric_values(), c.estimate.metric_values());
}

TEST(SampledSim, EstimatesLandNearTruth) {
  const MemoryConfig config = make_dram_config(2, 666, 3000);
  const auto events = phased_trace(40000);
  const MemoryMetrics exact = MemorySystem::simulate(config, events);
  SpanChunkedTrace chunked(events, 400);
  SampledSimOptions options;
  options.fraction = 0.2;
  const SampledMetrics sampled = simulate_sampled(config, chunked, options);
  EXPECT_FALSE(sampled.exhaustive);
  EXPECT_LT(sampled.events_measured, events.size());
  const auto truth = exact.metric_values();
  const auto estimate = sampled.estimate.metric_values();
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(estimate[i], truth[i], 0.25 * truth[i] + 1e-12)
        << MemoryMetrics::metric_names()[i];
  }
}

TEST(SampledSim, CancelledDeadlineAborts) {
  MemoryConfig config = make_dram_config(2, 666, 3000);
  Deadline deadline;
  deadline.cancel();
  config.sim.deadline = &deadline;
  const auto events = phased_trace(20000);
  SpanChunkedTrace chunked(events, 250);
  try {
    simulate_sampled(config, chunked, SampledSimOptions{});
    FAIL() << "cancelled sampled run must not complete";
  } catch (const gmd::Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kCancelled);
  }
}

TEST(SampledSim, RejectsBadOptions) {
  SampledSimOptions options;
  options.fraction = 0.0;
  EXPECT_THROW(options.validate(), gmd::Error);
  options.fraction = 0.1;
  options.confidence = 1.0;
  EXPECT_THROW(options.validate(), gmd::Error);
}

// Statistical contract -------------------------------------------------

/// Coverage of the reported intervals across many seeds: for each
/// (config, seed) pair count, per metric, whether the exhaustive value
/// lies inside the CI.  `confidence` is a joint guarantee (Bonferroni
/// across the six metrics), so both every per-metric rate and the
/// all-six-at-once rate must reach the configured 95%.  The steady-state
/// windows (no drain at window edges) are what keep the estimators
/// unbiased enough for this to hold — see begin_measurement().
TEST(SampledSimStatistics, IntervalsCoverExhaustiveMetrics) {
  const std::size_t kSeeds = 60;
  const std::vector<MemoryConfig> configs = {
      make_dram_config(2, 666, 3000),
      make_nvm_config(2, 666, 3000, 40),
      make_nvm_config(4, 1250, 5000, 120),
  };
  const auto events = phased_trace(48000);
  SampledSimOptions options;
  options.fraction = 0.1;

  const std::size_t num_metrics = MemoryMetrics::metric_names().size();
  std::vector<std::size_t> covered(num_metrics, 0);
  std::size_t pairs_all_covered = 0;

  for (const MemoryConfig& config : configs) {
    const MemoryMetrics exact = MemorySystem::simulate(config, events);
    const auto truth = exact.metric_values();
    SpanChunkedTrace chunked(events, 400);  // 120 chunks -> n = 12
    for (std::size_t seed = 0; seed < kSeeds; ++seed) {
      options.seed = seed + 1;
      const SampledMetrics sampled =
          simulate_sampled(config, chunked, options);
      ASSERT_FALSE(sampled.exhaustive);
      bool all = true;
      for (std::size_t i = 0; i < num_metrics; ++i) {
        const bool inside =
            truth[i] >= sampled.ci[i].lo && truth[i] <= sampled.ci[i].hi;
        if (inside) {
          ++covered[i];
        } else {
          all = false;
        }
      }
      if (all) ++pairs_all_covered;
    }
  }

  const double trials = static_cast<double>(kSeeds * configs.size());
  for (std::size_t i = 0; i < num_metrics; ++i) {
    const double rate = static_cast<double>(covered[i]) / trials;
    EXPECT_GE(rate, 0.95) << MemoryMetrics::metric_names()[i]
                          << " coverage " << rate;
  }
  // Joint coverage (every metric of a pair inside its CI) is the
  // acceptance criterion's phrasing.
  EXPECT_GE(static_cast<double>(pairs_all_covered) / trials, 0.95);
}

}  // namespace
}  // namespace gmd::memsim
