#include <gtest/gtest.h>

#include <set>

#include "gmd/common/error.hpp"
#include "gmd/memsim/address.hpp"

namespace gmd::memsim {
namespace {

MemoryConfig base() {
  MemoryConfig config;
  config.channels = 2;
  config.ranks = 2;
  config.banks = 4;
  config.rows = 64;
  config.row_bytes = 1024;
  config.bus_bytes = 8;
  config.timing.tBURST = 4;  // 64B access
  return config;
}

TEST(AddressMapping, DefaultSchemeNormalizes) {
  const AddressDecoder decoder(base());
  EXPECT_EQ(decoder.scheme(), "R:RK:BK:C:CH");
}

TEST(AddressMapping, BankInterleavedScheme) {
  MemoryConfig config = base();
  config.address_mapping = "R:RK:CH:C:BK";  // banks at the LSB
  const AddressDecoder decoder(config);
  EXPECT_EQ(decoder.scheme(), "R:RK:CH:C:BK");
  // Consecutive words walk banks first.
  EXPECT_EQ(decoder.decode(0).bank, 0u);
  EXPECT_EQ(decoder.decode(64).bank, 1u);
  EXPECT_EQ(decoder.decode(3 * 64).bank, 3u);
  EXPECT_EQ(decoder.decode(4 * 64).bank, 0u);
  EXPECT_EQ(decoder.decode(4 * 64).column, 1u);
  EXPECT_EQ(decoder.decode(0).channel, decoder.decode(64).channel);
}

TEST(AddressMapping, CaseAndWhitespaceInsensitive) {
  MemoryConfig config = base();
  config.address_mapping = " r : rk : bk : c : ch ";
  const AddressDecoder decoder(config);
  EXPECT_EQ(decoder.scheme(), "R:RK:BK:C:CH");
}

TEST(AddressMapping, AllSchemesCoverAllResources) {
  for (const char* scheme :
       {"R:RK:BK:C:CH", "R:RK:CH:C:BK", "R:C:BK:RK:CH", "CH:BK:RK:C:R"}) {
    MemoryConfig config = base();
    config.address_mapping = scheme;
    const AddressDecoder decoder(config);
    std::set<std::uint32_t> channels, ranks, banks;
    for (std::uint64_t addr = 0; addr < (1u << 22); addr += 64) {
      const auto a = decoder.decode(addr);
      channels.insert(a.channel);
      ranks.insert(a.rank);
      banks.insert(a.bank);
      EXPECT_LT(a.row, 64u);
      EXPECT_LT(a.column, 16u);
    }
    EXPECT_EQ(channels.size(), 2u) << scheme;
    EXPECT_EQ(ranks.size(), 2u) << scheme;
    EXPECT_EQ(banks.size(), 4u) << scheme;
  }
}

TEST(AddressMapping, DecodeIsBijectiveWithinCapacity) {
  MemoryConfig config = base();
  config.address_mapping = "R:BK:C:RK:CH";
  const AddressDecoder decoder(config);
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                      std::uint32_t, std::uint32_t>>
      seen;
  // One full sweep of the capacity must produce all-distinct tuples.
  const std::uint64_t capacity = config.capacity_bytes();
  for (std::uint64_t addr = 0; addr < capacity; addr += 64) {
    const auto a = decoder.decode(addr);
    EXPECT_TRUE(
        seen.insert({a.channel, a.rank, a.bank, a.row, a.column}).second)
        << "alias at 0x" << std::hex << addr;
  }
}

TEST(AddressMapping, RejectsMalformedSchemes) {
  MemoryConfig config = base();
  config.address_mapping = "R:RK:BK:C";  // missing a field
  EXPECT_THROW(AddressDecoder{config}, Error);
  config.address_mapping = "R:R:BK:C:CH";  // duplicate
  EXPECT_THROW(AddressDecoder{config}, Error);
  config.address_mapping = "R:RK:BK:C:XX";  // unknown token
  EXPECT_THROW(AddressDecoder{config}, Error);
}

}  // namespace
}  // namespace gmd::memsim
