#include <gtest/gtest.h>

#include "gmd/memsim/hybrid.hpp"

namespace gmd::memsim {
namespace {

using cpusim::MemoryEvent;

HybridConfig migrating_config(std::uint32_t threshold) {
  HybridConfig config = make_hybrid_config(2, 666, 3000, 67);
  config.migration_threshold = threshold;
  return config;
}

/// Finds a page that statically routes to NVM.
std::uint64_t nvm_page(const HybridMemory& memory,
                       const HybridConfig& config) {
  for (std::uint64_t page = 0; page < 4096; ++page) {
    if (!memory.routes_to_dram(page * config.page_bytes)) return page;
  }
  ADD_FAILURE() << "no NVM-resident page found";
  return 0;
}

TEST(Migration, DisabledByDefault) {
  const HybridConfig config = make_hybrid_config(2, 666, 3000, 67);
  HybridMemory memory(config);
  const std::uint64_t page = nvm_page(memory, config);
  for (int i = 0; i < 100; ++i) {
    memory.enqueue_event(
        {static_cast<std::uint64_t>(i) * 50, page * config.page_bytes, 64,
         false});
  }
  EXPECT_EQ(memory.pages_migrated(), 0u);
  (void)memory.finish();
}

TEST(Migration, HotPagePromotedAtThreshold) {
  const HybridConfig config = migrating_config(8);
  HybridMemory memory(config);
  const std::uint64_t page = nvm_page(memory, config);
  const std::uint64_t base = page * config.page_bytes;
  for (int i = 0; i < 7; ++i) {
    memory.enqueue_event({static_cast<std::uint64_t>(i) * 50, base, 64,
                          false});
    EXPECT_FALSE(memory.routes_to_dram(base)) << "promoted too early at " << i;
  }
  memory.enqueue_event({400, base, 64, false});  // 8th access: promote
  EXPECT_EQ(memory.pages_migrated(), 1u);
  EXPECT_TRUE(memory.routes_to_dram(base));
  // Other addresses in the same page are promoted with it.
  EXPECT_TRUE(memory.routes_to_dram(base + config.page_bytes - 1));
  (void)memory.finish();
}

TEST(Migration, CopyTrafficIsAccounted) {
  const HybridConfig config = migrating_config(2);
  HybridMemory without_migration(make_hybrid_config(2, 666, 3000, 67));
  HybridMemory with_migration(config);
  const std::uint64_t page = nvm_page(with_migration, config);
  const std::uint64_t base = page * config.page_bytes;
  for (int i = 0; i < 4; ++i) {
    const MemoryEvent event{static_cast<std::uint64_t>(i) * 50, base, 64,
                            false};
    without_migration.enqueue_event(event);
    with_migration.enqueue_event(event);
  }
  const MemoryMetrics plain = without_migration.finish();
  const MemoryMetrics migrated = with_migration.finish();
  // The page copy adds page_bytes/word reads and as many writes.
  const std::uint64_t words =
      config.page_bytes / config.nvm.access_bytes();
  EXPECT_EQ(migrated.total_reads, plain.total_reads + words);
  EXPECT_EQ(migrated.total_writes, plain.total_writes + words);
}

TEST(Migration, RepeatedAccessDoesNotRemigrate) {
  const HybridConfig config = migrating_config(3);
  HybridMemory memory(config);
  const std::uint64_t base = nvm_page(memory, config) * config.page_bytes;
  for (int i = 0; i < 50; ++i) {
    memory.enqueue_event({static_cast<std::uint64_t>(i) * 50, base, 64,
                          i % 2 == 0});
  }
  EXPECT_EQ(memory.pages_migrated(), 1u);
  (void)memory.finish();
}

TEST(Migration, ColdPagesStayInNvm) {
  const HybridConfig config = migrating_config(10);
  HybridMemory memory(config);
  // Touch many distinct NVM pages once each: nothing gets hot.
  std::uint64_t tick = 0;
  int nvm_pages_touched = 0;
  for (std::uint64_t page = 0; page < 256 && nvm_pages_touched < 20;
       ++page) {
    const std::uint64_t base = page * config.page_bytes;
    if (memory.routes_to_dram(base)) continue;
    memory.enqueue_event({tick += 50, base, 64, false});
    ++nvm_pages_touched;
  }
  EXPECT_EQ(memory.pages_migrated(), 0u);
  (void)memory.finish();
}

TEST(Migration, ReducesNvmPressureOnHotWorkloads) {
  // A workload hammering a few pages: with migration, most traffic ends
  // up in DRAM, cutting total latency versus the static split.
  const auto run = [](std::uint32_t threshold) {
    HybridConfig config = migrating_config(threshold);
    HybridMemory memory(config);
    std::uint64_t tick = 0;
    // Find 4 NVM pages and hammer them.
    std::vector<std::uint64_t> bases;
    for (std::uint64_t page = 0; bases.size() < 4; ++page) {
      if (!memory.routes_to_dram(page * config.page_bytes)) {
        bases.push_back(page * config.page_bytes);
      }
    }
    for (int round = 0; round < 500; ++round) {
      for (const std::uint64_t base : bases) {
        memory.enqueue_event({tick += 15, base + (round % 64) * 64, 64,
                              round % 3 == 0});
      }
    }
    return memory.finish();
  };
  const MemoryMetrics static_split = run(0);
  const MemoryMetrics migrating = run(16);
  EXPECT_LT(migrating.avg_total_latency_cycles,
            static_split.avg_total_latency_cycles);
}

}  // namespace
}  // namespace gmd::memsim
