/// Golden-equivalence tests: a sweep fed from a GMDT store must produce
/// rows bit-identical to the same sweep fed from the NVMain text path —
/// the container changes the storage, never the physics.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gmd/dse/config_space.hpp"
#include "gmd/dse/sweep.hpp"
#include "gmd/dse/workflow.hpp"
#include "gmd/trace/converter.hpp"
#include "gmd/trace/formats.hpp"
#include "gmd/tracestore/reader.hpp"

namespace gmd::dse {
namespace {

using cpusim::MemoryEvent;

std::uint64_t bits(double value) { return std::bit_cast<std::uint64_t>(value); }

void expect_metrics_bit_identical(const memsim::MemoryMetrics& a,
                                  const memsim::MemoryMetrics& b) {
  EXPECT_EQ(bits(a.avg_power_per_channel_w), bits(b.avg_power_per_channel_w));
  EXPECT_EQ(bits(a.avg_bandwidth_per_bank_mbs),
            bits(b.avg_bandwidth_per_bank_mbs));
  EXPECT_EQ(bits(a.avg_latency_cycles), bits(b.avg_latency_cycles));
  EXPECT_EQ(bits(a.avg_total_latency_cycles),
            bits(b.avg_total_latency_cycles));
  EXPECT_EQ(bits(a.avg_reads_per_channel), bits(b.avg_reads_per_channel));
  EXPECT_EQ(bits(a.avg_writes_per_channel), bits(b.avg_writes_per_channel));
  EXPECT_EQ(bits(a.execution_seconds), bits(b.execution_seconds));
  EXPECT_EQ(bits(a.dynamic_energy_j), bits(b.dynamic_energy_j));
  EXPECT_EQ(bits(a.background_energy_j), bits(b.background_energy_j));
  EXPECT_EQ(a.total_reads, b.total_reads);
  EXPECT_EQ(a.total_writes, b.total_writes);
  EXPECT_EQ(a.row_hits, b.row_hits);
  EXPECT_EQ(a.row_misses, b.row_misses);
  EXPECT_EQ(a.max_line_writes, b.max_line_writes);
  EXPECT_EQ(a.unique_lines_written, b.unique_lines_written);
}

class GmdtSweepEquivalence : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/gmd_equiv";
    std::filesystem::create_directories(dir_);

    // A real workload trace (unaligned addresses, mixed sizes), written
    // through the gem5 text path exactly as the pipeline does.
    WorkflowConfig config;
    config.graph_vertices = 192;
    const auto raw_events = generate_workload_trace(config);
    ASSERT_FALSE(raw_events.empty());
    gem5_path_ = dir_ + "/trace.gem5.txt";
    std::ofstream out(gem5_path_);
    trace::Gem5TraceWriter writer(out);
    for (const auto& event : raw_events) writer.on_event(event);
  }

  std::string dir_;
  std::string gem5_path_;
};

TEST_F(GmdtSweepEquivalence, ConvertersProduceIdenticalEventStreams) {
  const std::string nvmain_path = dir_ + "/trace.nvmain.txt";
  const std::string store_path = dir_ + "/trace.gmdt";
  const auto text_stats = trace::convert_gem5_to_nvmain(gem5_path_, nvmain_path);
  const auto store_stats = trace::convert_gem5_to_gmdt(gem5_path_, store_path);
  EXPECT_EQ(text_stats.events_out, store_stats.events_out);
  EXPECT_EQ(text_stats.lines_skipped, store_stats.lines_skipped);

  std::ifstream in(nvmain_path);
  const auto text_events = trace::read_nvmain_trace(in);
  const auto store_events = tracestore::TraceStoreReader(store_path).read_all();
  ASSERT_EQ(text_events.size(), store_events.size());
  for (std::size_t i = 0; i < text_events.size(); ++i) {
    ASSERT_EQ(text_events[i].tick, store_events[i].tick) << i;
    ASSERT_EQ(text_events[i].address, store_events[i].address) << i;
    ASSERT_EQ(text_events[i].size, store_events[i].size) << i;
    ASSERT_EQ(text_events[i].is_write, store_events[i].is_write) << i;
  }
}

TEST_F(GmdtSweepEquivalence, StoreFedSweepIsBitIdenticalToTextFed) {
  const std::string nvmain_path = dir_ + "/sweep.nvmain.txt";
  const std::string store_path = dir_ + "/sweep.gmdt";
  trace::convert_gem5_to_nvmain(gem5_path_, nvmain_path);
  trace::ConvertOptions options;
  options.gmdt_chunk_events = 1 << 12;  // force multiple chunks
  trace::convert_gem5_to_gmdt(gem5_path_, store_path, options);

  // One point per technology, including a hybrid (which exercises the
  // raw-materialization path of the store feed).
  std::vector<DesignPoint> points(3);
  points[0].kind = MemoryKind::kDram;
  points[0].trcd = 9;
  points[1].kind = MemoryKind::kNvm;
  points[1].trcd = 50;
  points[2].kind = MemoryKind::kHybrid;
  points[2].trcd = 50;

  std::ifstream in(nvmain_path);
  const auto text_events = trace::read_nvmain_trace(in);
  const auto text_rows = run_sweep(points, text_events);

  const tracestore::TraceStoreReader store(store_path);
  ASSERT_GT(store.num_chunks(), 1u);
  const auto store_rows = run_sweep(points, store);

  ASSERT_EQ(text_rows.size(), store_rows.size());
  for (std::size_t i = 0; i < text_rows.size(); ++i) {
    ASSERT_TRUE(store_rows[i].ok()) << store_rows[i].error;
    expect_metrics_bit_identical(text_rows[i].metrics, store_rows[i].metrics);
  }
}

TEST_F(GmdtSweepEquivalence, StoreFedSweepMatchesWithSharingDisabled) {
  const std::string store_path = dir_ + "/nosharing.gmdt";
  trace::convert_gem5_to_gmdt(gem5_path_, store_path);
  const tracestore::TraceStoreReader store(store_path);
  const auto events = store.read_all();

  std::vector<DesignPoint> points(1);
  points[0].kind = MemoryKind::kNvm;
  points[0].trcd = 50;

  SweepOptions no_sharing;
  no_sharing.share_predecoded_traces = false;
  const auto baseline = run_sweep(points, events, no_sharing);
  const auto store_rows = run_sweep(points, store, no_sharing);
  ASSERT_EQ(store_rows.size(), 1u);
  ASSERT_TRUE(store_rows[0].ok()) << store_rows[0].error;
  expect_metrics_bit_identical(baseline[0].metrics, store_rows[0].metrics);
}

TEST_F(GmdtSweepEquivalence, WorkflowGmdtFormatMatchesTextFormat) {
  WorkflowConfig text_config;
  text_config.graph_vertices = 128;
  text_config.design_points = reduced_design_space();
  text_config.trace_dir = dir_ + "/wf_text";
  std::filesystem::create_directories(text_config.trace_dir);
  text_config.trace_format = "text";

  WorkflowConfig gmdt_config = text_config;
  gmdt_config.trace_dir = dir_ + "/wf_gmdt";
  std::filesystem::create_directories(gmdt_config.trace_dir);
  gmdt_config.trace_format = "gmdt";

  const WorkflowResult text_result = run_workflow(text_config);
  const WorkflowResult gmdt_result = run_workflow(gmdt_config);
  ASSERT_EQ(text_result.sweep.size(), gmdt_result.sweep.size());
  for (std::size_t i = 0; i < text_result.sweep.size(); ++i) {
    expect_metrics_bit_identical(text_result.sweep[i].metrics,
                                 gmdt_result.sweep[i].metrics);
  }
}

}  // namespace
}  // namespace gmd::dse
