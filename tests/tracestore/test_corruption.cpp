#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gmd/common/error.hpp"
#include "gmd/common/hash.hpp"
#include "gmd/tracestore/format.hpp"
#include "gmd/tracestore/reader.hpp"
#include "gmd/tracestore/writer.hpp"

namespace gmd::tracestore {
namespace {

using cpusim::MemoryEvent;

class GmdtCorruption : public testing::Test {
 protected:
  std::string path(const std::string& name) const {
    return testing::TempDir() + "/gmd_corrupt_" + name;
  }

  /// Writes a healthy multi-chunk store and returns its path.
  std::string write_healthy(const std::string& name) {
    std::vector<MemoryEvent> events;
    for (std::uint64_t i = 0; i < 1000; ++i) {
      events.push_back(MemoryEvent{i * 4, 0x1000 + i * 64, 64, i % 2 == 0});
    }
    const std::string file = path(name);
    TraceStoreWriterOptions options;
    options.events_per_chunk = 100;
    write_trace_store(file, events, options);
    return file;
  }

  std::string read_file(const std::string& file) {
    std::ifstream in(file, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  void write_file(const std::string& file, const std::string& content) {
    std::ofstream out(file, std::ios::binary);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
  }

  /// Expects opening (or fully reading) `file` to throw Error(kTrace)
  /// whose message contains `fragment`.
  void expect_rejected(const std::string& file, const std::string& fragment) {
    try {
      TraceStoreReader reader(file);
      reader.read_all();
      FAIL() << "expected Error mentioning '" << fragment << "'";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kTrace) << e.what();
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << "message was: " << e.what();
    }
  }
};

TEST_F(GmdtCorruption, RejectsBadMagic) {
  const auto file = write_healthy("magic.gmdt");
  std::string bytes = read_file(file);
  bytes[0] = 'X';
  write_file(file, bytes);
  expect_rejected(file, "bad magic");
}

TEST_F(GmdtCorruption, RejectsUnsupportedVersion) {
  const auto file = write_healthy("version.gmdt");
  std::string bytes = read_file(file);
  bytes[8] = 99;  // version field
  // Recompute the header checksum so only the version is wrong.
  std::string patched_checksum;
  put_u64(patched_checksum, fnv1a_bytes(bytes.data(), 48));
  bytes.replace(48, 8, patched_checksum);
  write_file(file, bytes);
  expect_rejected(file, "unsupported GMDT version");
}

TEST_F(GmdtCorruption, RejectsHeaderChecksumFlip) {
  const auto file = write_healthy("hdrsum.gmdt");
  std::string bytes = read_file(file);
  bytes[20] ^= 0x01;  // inside event_count; checksum now stale
  write_file(file, bytes);
  expect_rejected(file, "header checksum mismatch");
}

TEST_F(GmdtCorruption, RejectsDirectoryChecksumFlip) {
  const auto file = write_healthy("dirsum.gmdt");
  std::string bytes = read_file(file);
  const std::uint64_t dir_offset = get_u64(
      reinterpret_cast<const unsigned char*>(bytes.data()) + 40);
  bytes[static_cast<std::size_t>(dir_offset) + 16] ^= 0x01;  // entry 0 count
  write_file(file, bytes);
  expect_rejected(file, "directory checksum mismatch");
}

TEST_F(GmdtCorruption, FlippedPayloadByteNamesTheChunk) {
  const auto file = write_healthy("payload.gmdt");
  std::string bytes = read_file(file);
  // Chunk 3's payload: find its offset in the directory.
  const auto* base = reinterpret_cast<const unsigned char*>(bytes.data());
  const std::uint64_t dir_offset = get_u64(base + 40);
  const std::uint64_t chunk3_offset =
      get_u64(base + dir_offset + 3 * kDirEntryBytes);
  bytes[static_cast<std::size_t>(chunk3_offset) + 5] ^= 0x10;
  write_file(file, bytes);
  expect_rejected(file, "chunk 3 checksum mismatch (corrupted payload)");
}

TEST_F(GmdtCorruption, RejectsTruncationAtEveryBoundary) {
  const auto file = write_healthy("trunc.gmdt");
  const std::string bytes = read_file(file);
  // Mid-header, mid-payload, and mid-directory truncations.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{8}, kHeaderBytes - 1, kHeaderBytes + 10,
        bytes.size() / 2, bytes.size() - 1}) {
    const auto truncated = path("trunc_cut.gmdt");
    write_file(truncated, bytes.substr(0, keep));
    try {
      TraceStoreReader reader(truncated);
      reader.read_all();
      FAIL() << "accepted a store truncated to " << keep << " bytes";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kTrace) << keep << ": " << e.what();
    }
  }
}

TEST_F(GmdtCorruption, UnclosedWriterNeverPublishesTheTarget) {
  const auto file = path("unclosed.gmdt");
  // TempDir() persists across runs; a published file from a previous
  // invocation must not masquerade as a mid-write publish.
  std::filesystem::remove(file);
  {
    TraceStoreWriter writer(file);
    writer.on_event(MemoryEvent{1, 64, 8, false});
    // Mid-write (a crash here): only `<path>.tmp` exists — the target
    // is published whole by close()'s rename or not at all.
    EXPECT_FALSE(std::filesystem::exists(file));
    ASSERT_TRUE(std::filesystem::exists(writer.temp_path()));
    // Even if a reader were pointed at a snapshot of the in-progress
    // temp file, it is rejectable: at best a placeholder header with a
    // failing checksum, at worst short (defense in depth).
    std::ifstream in(writer.temp_path(), std::ios::binary);
    const std::string partial{std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>()};
    write_file(path("crashed.gmdt"), partial);
    writer.close();
  }
  EXPECT_THROW(TraceStoreReader(path("crashed.gmdt")), Error);
  // The properly closed file is fine, and its temp is gone.
  EXPECT_EQ(TraceStoreReader(file).num_events(), 1u);
  EXPECT_FALSE(std::filesystem::exists(file + ".tmp"));
}

TEST_F(GmdtCorruption, RejectsAbsurdChunkCountBeforeAllocating) {
  const auto file = write_healthy("absurd.gmdt");
  std::string bytes = read_file(file);
  // chunk_count = 2^56: would overflow dir_bytes and exhaust memory if
  // the reader resized first.
  bytes[31] = 1;  // big-endian-most byte of the LE chunk_count field
  std::string patched_checksum;
  put_u64(patched_checksum, fnv1a_bytes(bytes.data(), 48));
  bytes.replace(48, 8, patched_checksum);
  write_file(file, bytes);
  expect_rejected(file, "more than the file could hold");
}

}  // namespace
}  // namespace gmd::tracestore
