#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "gmd/common/rng.hpp"
#include "gmd/common/thread_pool.hpp"
#include "gmd/tracestore/reader.hpp"
#include "gmd/tracestore/writer.hpp"

namespace gmd::tracestore {
namespace {

using cpusim::MemoryEvent;

bool operator_eq(const MemoryEvent& a, const MemoryEvent& b) {
  return a.tick == b.tick && a.address == b.address && a.size == b.size &&
         a.is_write == b.is_write;
}

void expect_events_equal(const std::vector<MemoryEvent>& got,
                         const std::vector<MemoryEvent>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(operator_eq(got[i], want[i]))
        << "event " << i << ": {" << got[i].tick << ", " << got[i].address
        << ", " << got[i].size << ", " << got[i].is_write << "} vs {"
        << want[i].tick << ", " << want[i].address << ", " << want[i].size
        << ", " << want[i].is_write << "}";
  }
}

class GmdtRoundTrip : public testing::Test {
 protected:
  std::string path(const std::string& name) const {
    return testing::TempDir() + "/gmd_store_" + name;
  }

  std::string write_store(const std::string& name,
                          const std::vector<MemoryEvent>& events,
                          std::size_t events_per_chunk = 0) {
    const std::string file = path(name);
    TraceStoreWriterOptions options;
    if (events_per_chunk > 0) options.events_per_chunk = events_per_chunk;
    write_trace_store(file, events, options);
    return file;
  }

  std::vector<MemoryEvent> random_events(std::size_t count,
                                         std::uint64_t seed = 7) {
    Rng rng(seed);
    std::vector<MemoryEvent> events;
    events.reserve(count);
    std::uint64_t tick = 0;
    for (std::size_t i = 0; i < count; ++i) {
      tick += rng.next_below(512);
      events.push_back(MemoryEvent{
          tick, 0x10000000ull + rng.next_below(1u << 22) * 64,
          static_cast<std::uint32_t>(8u << rng.next_below(4)),
          rng.next_below(3) == 0});
    }
    return events;
  }
};

TEST_F(GmdtRoundTrip, EmptyTrace) {
  const auto file = write_store("empty.gmdt", {});
  TraceStoreReader reader(file);
  EXPECT_EQ(reader.num_events(), 0u);
  EXPECT_EQ(reader.num_chunks(), 0u);
  EXPECT_TRUE(reader.read_all().empty());
  reader.verify();
}

TEST_F(GmdtRoundTrip, SingleEvent) {
  const std::vector<MemoryEvent> events = {{123456789ull, 0xDEADBEEFull, 64,
                                            true}};
  TraceStoreReader reader(write_store("single.gmdt", events));
  EXPECT_EQ(reader.num_chunks(), 1u);
  expect_events_equal(reader.read_all(), events);
}

TEST_F(GmdtRoundTrip, RandomTraceIsLossless) {
  const auto events = random_events(10000);
  TraceStoreReader reader(write_store("random.gmdt", events));
  EXPECT_EQ(reader.num_events(), events.size());
  expect_events_equal(reader.read_all(), events);
}

TEST_F(GmdtRoundTrip, NonMonotonicTicks) {
  // Negative tick deltas must survive: merged multi-core traces are not
  // globally sorted.
  std::vector<MemoryEvent> events;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    events.push_back(MemoryEvent{(i * 7919) % 1000, i * 64, 8, i % 2 == 0});
  }
  TraceStoreReader reader(write_store("nonmono.gmdt", events, 128));
  expect_events_equal(reader.read_all(), events);
}

TEST_F(GmdtRoundTrip, ExtremeAddressAndTickSwings) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  const std::vector<MemoryEvent> events = {
      {0, 0, 1, false},         {max, max, 4096, true},
      {0, 0, 8, false},         {max, 1, 64, true},
      {1, max, 64, false},      {max / 2, max / 2 + 1, 32, true},
  };
  TraceStoreReader reader(write_store("extreme.gmdt", events, 2));
  expect_events_equal(reader.read_all(), events);
}

TEST_F(GmdtRoundTrip, MultiChunkGeometryAndRandomAccess) {
  const auto events = random_events(1000);
  TraceStoreReader reader(write_store("chunks.gmdt", events, 64));
  // 1000 events at 64 per chunk: 15 full chunks + a short tail.
  ASSERT_EQ(reader.num_chunks(), 16u);
  EXPECT_EQ(reader.header().events_per_chunk, 64u);
  EXPECT_EQ(reader.chunk_info(15).event_count, 1000u % 64);

  // Random access decodes exactly the chunk's slice of the stream.
  const auto chunk7 = reader.decode_chunk(7);
  ASSERT_EQ(chunk7.size(), 64u);
  for (std::size_t i = 0; i < chunk7.size(); ++i) {
    EXPECT_TRUE(operator_eq(chunk7[i], events[7 * 64 + i])) << i;
  }
}

TEST_F(GmdtRoundTrip, ChunkInfoTickRangesCoverChunkEvents) {
  const auto events = random_events(500, /*seed=*/11);
  TraceStoreReader reader(write_store("ranges.gmdt", events, 50));
  for (std::size_t c = 0; c < reader.num_chunks(); ++c) {
    const ChunkEntry& entry = reader.chunk_info(c);
    const auto chunk = reader.decode_chunk(c);
    ASSERT_FALSE(chunk.empty());
    std::uint64_t lo = chunk[0].tick;
    std::uint64_t hi = chunk[0].tick;
    for (const MemoryEvent& event : chunk) {
      lo = std::min(lo, event.tick);
      hi = std::max(hi, event.tick);
    }
    EXPECT_EQ(entry.min_tick, lo) << "chunk " << c;
    EXPECT_EQ(entry.max_tick, hi) << "chunk " << c;
  }
}

TEST_F(GmdtRoundTrip, FirstChunkAtOrAfterSeeksByTick) {
  std::vector<MemoryEvent> events;
  for (std::uint64_t i = 0; i < 400; ++i) {
    events.push_back(MemoryEvent{i * 10, i * 64, 8, false});
  }
  TraceStoreReader reader(write_store("seek.gmdt", events, 100));
  ASSERT_EQ(reader.num_chunks(), 4u);
  EXPECT_EQ(reader.first_chunk_at_or_after(0), 0u);
  EXPECT_EQ(reader.first_chunk_at_or_after(990), 0u);   // chunk 0 ends at 990
  EXPECT_EQ(reader.first_chunk_at_or_after(991), 1u);
  EXPECT_EQ(reader.first_chunk_at_or_after(995), 1u);
  EXPECT_EQ(reader.first_chunk_at_or_after(3990), 3u);
  EXPECT_EQ(reader.first_chunk_at_or_after(3991), 4u);  // past every chunk
}

TEST_F(GmdtRoundTrip, ChunkIteratorMatchesReadAll) {
  const auto events = random_events(3000, /*seed=*/13);
  TraceStoreReader reader(write_store("iter.gmdt", events, 256));
  std::vector<MemoryEvent> streamed;
  ChunkIterator it(reader);
  std::size_t chunks_seen = 0;
  while (it.next()) {
    EXPECT_EQ(it.index(), chunks_seen);
    streamed.insert(streamed.end(), it.events().begin(), it.events().end());
    ++chunks_seen;
  }
  EXPECT_EQ(chunks_seen, reader.num_chunks());
  expect_events_equal(streamed, events);
}

TEST_F(GmdtRoundTrip, ParallelReadAllMatchesSequential) {
  const auto events = random_events(20000, /*seed=*/17);
  TraceStoreReader reader(write_store("parallel.gmdt", events, 512));
  ThreadPool pool(4);
  expect_events_equal(reader.read_all(pool), reader.read_all());
  expect_events_equal(reader.read_all(pool), events);
}

TEST_F(GmdtRoundTrip, StreamingSinkMatchesBulkWrite) {
  const auto events = random_events(5000, /*seed=*/19);
  const std::string bulk = write_store("bulk.gmdt", events, 300);

  const std::string streamed = path("streamed.gmdt");
  {
    TraceStoreWriterOptions options;
    options.events_per_chunk = 300;
    TraceStoreWriter writer(streamed, options);
    for (const MemoryEvent& event : events) writer.on_event(event);
    EXPECT_FALSE(writer.closed());
    writer.close();
    EXPECT_TRUE(writer.closed());
    EXPECT_EQ(writer.events_written(), events.size());
  }
  TraceStoreReader a(bulk);
  TraceStoreReader b(streamed);
  EXPECT_EQ(a.content_checksum(), b.content_checksum());
  expect_events_equal(b.read_all(), events);
}

TEST_F(GmdtRoundTrip, ContentChecksumTracksContent) {
  auto events = random_events(100, /*seed=*/23);
  TraceStoreReader a(write_store("sum_a.gmdt", events, 32));
  TraceStoreReader same(write_store("sum_same.gmdt", events, 32));
  EXPECT_EQ(a.content_checksum(), same.content_checksum());

  events[50].address ^= 0x40;
  TraceStoreReader changed(write_store("sum_b.gmdt", events, 32));
  EXPECT_NE(a.content_checksum(), changed.content_checksum());
}

}  // namespace
}  // namespace gmd::tracestore
