#include "gmd/tracestore/mapped_file.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <utility>

#include "gmd/common/error.hpp"

namespace gmd::tracestore {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/gmd_map_" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
}

TEST(MappedFile, ExposesFileBytes) {
  const auto path = temp_path("basic.bin");
  write_file(path, "hello mapping");
  MappedFile file(path);
  ASSERT_TRUE(file.is_open());
  ASSERT_EQ(file.size(), 13u);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(file.data()),
                        file.size()),
            "hello mapping");
  EXPECT_EQ(file.path(), path);
}

TEST(MappedFile, EmptyFileIsValidAndZeroLength) {
  const auto path = temp_path("empty.bin");
  write_file(path, "");
  MappedFile file(path);
  EXPECT_TRUE(file.is_open());
  EXPECT_EQ(file.size(), 0u);
}

TEST(MappedFile, MissingFileThrowsIoError) {
  try {
    MappedFile file(temp_path("does_not_exist.bin"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
  }
}

TEST(MappedFile, MoveTransfersOwnership) {
  const auto path = temp_path("move.bin");
  write_file(path, "abc");
  MappedFile a(path);
  MappedFile b(std::move(a));
  EXPECT_FALSE(a.is_open());  // NOLINT(bugprone-use-after-move): post-move state
  ASSERT_TRUE(b.is_open());
  EXPECT_EQ(b.size(), 3u);

  MappedFile c(path);
  c = std::move(b);
  EXPECT_FALSE(b.is_open());  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(c.is_open());
  EXPECT_EQ(c.view().size(), 3u);
}

}  // namespace
}  // namespace gmd::tracestore
