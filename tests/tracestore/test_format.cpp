#include "gmd/tracestore/format.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace gmd::tracestore {
namespace {

TEST(GmdtFormat, ZigzagRoundTripsSignedValues) {
  const std::int64_t values[] = {0,
                                 1,
                                 -1,
                                 63,
                                 -64,
                                 1 << 20,
                                 -(1 << 20),
                                 std::numeric_limits<std::int64_t>::max(),
                                 std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t v : values) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v) << v;
  }
}

TEST(GmdtFormat, ZigzagKeepsSmallMagnitudesSmall) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  EXPECT_EQ(zigzag_encode(2), 4u);
}

TEST(GmdtFormat, VarintRoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  0x7F,
                                  0x80,
                                  0x3FFF,
                                  0x4000,
                                  0xFFFFFFFFull,
                                  std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : values) {
    std::string buffer;
    put_varint(buffer, v);
    const auto* cursor =
        reinterpret_cast<const unsigned char*>(buffer.data());
    const auto* end = cursor + buffer.size();
    std::uint64_t decoded = 0;
    ASSERT_TRUE(get_varint(&cursor, end, &decoded)) << v;
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(cursor, end) << "decoder must consume exactly the varint";
  }
}

TEST(GmdtFormat, VarintUsesOneByteBelow128) {
  std::string buffer;
  put_varint(buffer, 0x7F);
  EXPECT_EQ(buffer.size(), 1u);
  put_varint(buffer, 0x80);
  EXPECT_EQ(buffer.size(), 3u);  // second value needs two bytes
}

TEST(GmdtFormat, VarintRejectsTruncation) {
  std::string buffer;
  put_varint(buffer, std::numeric_limits<std::uint64_t>::max());
  for (std::size_t keep = 0; keep < buffer.size(); ++keep) {
    const auto* cursor =
        reinterpret_cast<const unsigned char*>(buffer.data());
    const auto* end = cursor + keep;
    std::uint64_t decoded = 0;
    EXPECT_FALSE(get_varint(&cursor, end, &decoded)) << keep;
  }
}

TEST(GmdtFormat, VarintRejectsOverlongEncoding) {
  // 11 continuation bytes: wider than any 64-bit value.
  const std::string buffer(11, static_cast<char>(0xFF));
  const auto* cursor = reinterpret_cast<const unsigned char*>(buffer.data());
  const auto* end = cursor + buffer.size();
  std::uint64_t decoded = 0;
  EXPECT_FALSE(get_varint(&cursor, end, &decoded));
}

TEST(GmdtFormat, FixedWidthFieldsAreLittleEndian) {
  std::string buffer;
  put_u32(buffer, 0x01020304u);
  put_u64(buffer, 0x0102030405060708ull);
  ASSERT_EQ(buffer.size(), 12u);
  const auto* bytes = reinterpret_cast<const unsigned char*>(buffer.data());
  EXPECT_EQ(bytes[0], 0x04);
  EXPECT_EQ(bytes[3], 0x01);
  EXPECT_EQ(bytes[4], 0x08);
  EXPECT_EQ(bytes[11], 0x01);
  EXPECT_EQ(get_u32(bytes), 0x01020304u);
  EXPECT_EQ(get_u64(bytes + 4), 0x0102030405060708ull);
}

}  // namespace
}  // namespace gmd::tracestore
