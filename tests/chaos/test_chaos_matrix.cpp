/// \file test_chaos_matrix.cpp
/// Seeded fault matrix over every instrumented fault site.  Each
/// scenario arms one site with a deterministic plan, drives the
/// operation that crosses it, and requires one of exactly three
/// outcomes: a correct result, a typed gmd::Error, or (for service
/// requests) an error response with the expected wire code.  After the
/// site is cleared the same operation must succeed — no fault may leave
/// persistent damage behind.  The matrix plus the quarantine scenarios
/// below exceed 30 seeded scenarios across io / store / model / lease /
/// service sites (run under ASan and TSan in CI).

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gmd/common/atomic_file.hpp"
#include "gmd/common/error.hpp"
#include "gmd/common/faultinject.hpp"
#include "gmd/cpusim/workloads.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/lease.hpp"
#include "gmd/dse/shard.hpp"
#include "gmd/dse/surrogate.hpp"
#include "gmd/dse/sweep.hpp"
#include "gmd/graph/generators.hpp"
#include "gmd/service/service.hpp"
#include "gmd/tracestore/reader.hpp"
#include "gmd/tracestore/writer.hpp"

namespace gmd {
namespace {

using faultinject::FaultKind;
using faultinject::FaultSpec;
using service::Json;

/// Store + model fixtures built once (the training sweep dominates).
class ChaosMatrixTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(testing::TempDir() + "/gmd_chaos_matrix");
    std::filesystem::create_directories(*dir_);
    store_path_ = new std::string(*dir_ + "/workload.gmdt");

    graph::UniformRandomParams params;
    params.num_vertices = 64;
    params.edge_factor = 8;
    graph::EdgeList list = graph::generate_uniform_random(params);
    graph::symmetrize(list);
    const auto g = graph::CsrGraph::from_edge_list(list);
    cpusim::VectorSink sink;
    cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
    cpusim::BfsWorkload(g, 0).run(cpu);
    tracestore::TraceStoreWriterOptions wopts;
    wopts.events_per_chunk = 1000;
    tracestore::write_trace_store(*store_path_, sink.events(), wopts);

    const std::vector<dse::DesignPoint> space = dse::reduced_design_space();
    std::vector<dse::DesignPoint> train;
    for (std::size_t i = 0; i < space.size(); i += 4) train.push_back(space[i]);
    tracestore::TraceStoreReader store(*store_path_);
    const std::vector<dse::SweepRow> rows = dse::run_sweep(train, store);
    model_path_ = new std::string(*dir_ + "/bandwidth.gmdm");
    dse::SurrogateSuite::deploy(rows, "bandwidth_mbs", "linear")
        .save_file(*model_path_);
  }

  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete dir_;
    delete store_path_;
    delete model_path_;
  }

  void SetUp() override { faultinject::clear(); }
  void TearDown() override { faultinject::clear(); }

  static std::string* dir_;
  static std::string* store_path_;
  static std::string* model_path_;
};

std::string* ChaosMatrixTest::dir_ = nullptr;
std::string* ChaosMatrixTest::store_path_ = nullptr;
std::string* ChaosMatrixTest::model_path_ = nullptr;

// --- operations that cross each site --------------------------------

void op_atomic_write(const std::string& dir) {
  AtomicFileWriter writer(dir + "/chaos_artifact.txt");
  writer.stream() << "payload\n";
  writer.commit();
}

void op_read_store(const std::string& store_path) {
  tracestore::TraceStoreReader reader(store_path);
  reader.verify();
}

void op_model_roundtrip(const std::string& model_path, const std::string& dir) {
  auto model = dse::SurrogateSuite::DeployedModel::load_file(model_path);
  model.save_file(dir + "/chaos_model.gmdm");
}

void op_lease(const std::string& dir) {
  dse::RunDir run{dir + "/chaos_run"};
  // Fresh run dir each call: a fault mid-protocol (claimed lease, torn
  // heartbeat) must not make the next call fail for protocol reasons.
  std::filesystem::remove_all(run.root);
  std::filesystem::create_directories(run.tasks_dir());
  std::filesystem::create_directories(run.leases_dir());
  dse::ShardTask task;
  task.shard = 0;
  task.generation = 1;
  dse::write_task_file(run.tasks_dir() + "/" + dse::task_filename(task), task);
  auto lease = dse::try_claim_shard(run, task, "chaos-worker");
  if (lease.has_value()) {
    lease->heartbeat();
    lease->release();
  }
}

// --- the matrix ------------------------------------------------------

struct DirectScenario {
  const char* site;
  FaultKind kind;
  std::uint64_t fail_nth;
  double probability;
  std::uint64_t seed;
  /// Which operation reaches the site: 0 write, 1 store, 2 model, 3 lease.
  int op;
};

constexpr DirectScenario kDirectMatrix[] = {
    // io sites: the atomic temp-then-rename writer.
    {"atomic_file.open", FaultKind::kIo, 1, 1.0, 1, 0},
    {"atomic_file.open", FaultKind::kUnavailable, 1, 1.0, 2, 0},
    {"atomic_file.commit", FaultKind::kIo, 1, 1.0, 3, 0},
    {"atomic_file.commit", FaultKind::kPartialWrite, 1, 1.0, 4, 0},
    {"atomic_file.commit", FaultKind::kTimeout, 1, 1.0, 5, 0},
    {"atomic_file.commit", FaultKind::kIo, 1, 0.5, 6, 0},
    // store sites: mmap open and per-chunk checksum verification.
    {"mapped_file.open", FaultKind::kIo, 1, 1.0, 7, 1},
    {"mapped_file.open", FaultKind::kShortRead, 1, 1.0, 8, 1},
    {"mapped_file.open", FaultKind::kUnavailable, 1, 1.0, 9, 1},
    {"tracestore.chunk_verify", FaultKind::kInvalidData, 1, 1.0, 10, 1},
    {"tracestore.chunk_verify", FaultKind::kIo, 2, 1.0, 11, 1},
    {"tracestore.chunk_verify", FaultKind::kInvalidData, 1, 0.5, 12, 1},
    // model sites: scaler serialization and deployed-model load.
    {"serialize.load_scaler", FaultKind::kInvalidData, 1, 1.0, 13, 2},
    {"serialize.load_scaler", FaultKind::kIo, 1, 1.0, 14, 2},
    {"serialize.save_scaler", FaultKind::kIo, 1, 1.0, 15, 2},
    {"surrogate.model_load", FaultKind::kIo, 1, 1.0, 16, 2},
    {"surrogate.model_load", FaultKind::kInvalidData, 1, 1.0, 17, 2},
    {"surrogate.model_load", FaultKind::kUnavailable, 1, 1.0, 18, 2},
    // lease sites: claim rename and heartbeat stamping.
    {"lease.claim", FaultKind::kIo, 1, 1.0, 19, 3},
    {"lease.claim", FaultKind::kUnavailable, 1, 1.0, 20, 3},
    {"lease.heartbeat", FaultKind::kIo, 1, 1.0, 21, 3},
    {"lease.heartbeat", FaultKind::kTimeout, 1, 1.0, 22, 3},
};

TEST_F(ChaosMatrixTest, DirectSitesFailTypedAndRecoverOnceCleared) {
  for (const DirectScenario& scenario : kDirectMatrix) {
    SCOPED_TRACE(std::string(scenario.site) + "/" +
                 std::string(faultinject::to_string(scenario.kind)) + "/seed" +
                 std::to_string(scenario.seed));
    faultinject::clear();
    FaultSpec spec;
    spec.kind = scenario.kind;
    spec.fail_nth = scenario.fail_nth;
    spec.probability = scenario.probability;
    spec.seed = scenario.seed;
    faultinject::arm(scenario.site, spec);

    const auto run_op = [&] {
      switch (scenario.op) {
        case 0: op_atomic_write(*dir_); break;
        case 1: op_read_store(*store_path_); break;
        case 2: op_model_roundtrip(*model_path_, *dir_); break;
        default: op_lease(*dir_); break;
      }
    };

    // Outcome must be binary: success, or a *typed* error.  Anything
    // else (crash, hang, foreign exception) fails the test harness.
    bool typed_error = false;
    bool succeeded = false;
    try {
      // Drive the operation a few times so nth>1 / p<1 plans get
      // eligible hits; each iteration is all-or-nothing.
      for (int i = 0; i < 4 && !typed_error; ++i) run_op();
      succeeded = true;
    } catch (const Error& e) {
      typed_error = true;
      EXPECT_FALSE(std::string(e.what()).empty());
      if (scenario.probability >= 1.0 && scenario.fail_nth == 1 &&
          scenario.kind != FaultKind::kShortRead) {
        // Deterministic first-hit plans must raise the mapped code at
        // the site itself.
        EXPECT_EQ(e.code(), faultinject::error_code_for(scenario.kind));
      }
    }
    EXPECT_TRUE(succeeded || typed_error);

    // Disarmed, the same operation must succeed: no persistent damage.
    faultinject::clear();
    EXPECT_NO_THROW(run_op()) << "operation did not recover after disarm";
  }
}

TEST_F(ChaosMatrixTest, ShortReadYieldsTypedTraceErrorNotCrash) {
  FaultSpec spec;
  spec.kind = FaultKind::kShortRead;
  faultinject::arm("mapped_file.open", spec);
  try {
    tracestore::TraceStoreReader reader(*store_path_);
    reader.verify();
    FAIL() << "a halved mapping must fail the store's bounds/checksum checks";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTrace);
  }
}

TEST_F(ChaosMatrixTest, PartialWriteLeavesOldArtifactIntact) {
  const std::string path = *dir_ + "/torn_target.txt";
  {
    AtomicFileWriter writer(path);
    writer.stream() << "original\n";
    writer.commit();
  }
  FaultSpec spec;
  spec.kind = FaultKind::kPartialWrite;
  spec.one_shot = true;
  faultinject::arm("atomic_file.commit", spec);
  try {
    AtomicFileWriter writer(path);
    writer.stream() << "replacement that must never land\n";
    writer.commit();
    FAIL() << "torn commit must raise";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
  }
  // The torn temp is discarded and the committed artifact untouched.
  std::ifstream in(path);
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "original");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

// --- service-layer scenarios ----------------------------------------

struct ServiceScenario {
  const char* site;
  FaultKind kind;
  const char* verb;  ///< Request to issue: the verb field.
};

constexpr ServiceScenario kServiceMatrix[] = {
    {"service.health", FaultKind::kUnavailable, "health"},
    {"service.stats", FaultKind::kTimeout, "stats"},
    {"service.stats", FaultKind::kIo, "stats"},
    {"service.simulate", FaultKind::kUnavailable, "simulate"},
    {"service.simulate", FaultKind::kTimeout, "simulate"},
    {"service.simulate", FaultKind::kIo, "simulate"},
    {"service.predict", FaultKind::kUnavailable, "predict"},
    {"service.predict", FaultKind::kIo, "predict"},
    {"service.recommend", FaultKind::kUnavailable, "recommend"},
    {"service.register_trace", FaultKind::kIo, "register_trace"},
    {"service.register_model", FaultKind::kIo, "register_model"},
    {"service.model_predict", FaultKind::kIo, "predict"},
};

class ChaosServiceTest : public ChaosMatrixTest {
 protected:
  static Json request_for(const std::string& verb, const std::string& dir,
                          const std::string& store_path,
                          const std::string& model_path) {
    Json request;
    request["verb"] = verb;
    if (verb == "simulate") {
      request["trace"] = "bfs";
      Json::Array pts;
      pts.push_back(
          service::design_point_to_json(dse::reduced_design_space()[0]));
      request["points"] = Json(std::move(pts));
    } else if (verb == "predict" || verb == "recommend") {
      request["model"] = "bw";
      if (verb == "recommend") request["metric"] = "bandwidth_mbs";
      Json::Array pts;
      pts.push_back(
          service::design_point_to_json(dse::reduced_design_space()[0]));
      request["points"] = Json(std::move(pts));
    } else if (verb == "register_trace") {
      request["alias"] = "bfs2";
      request["path"] = store_path;
    } else if (verb == "register_model") {
      request["name"] = "bw2";
      request["path"] = model_path;
    }
    (void)dir;
    return request;
  }
};

TEST_F(ChaosServiceTest, ServiceVerbsAnswerTypedErrorsAndRecover) {
  service::ServiceOptions options;
  options.num_threads = 2;
  options.quarantine_probe_interval = std::chrono::milliseconds(0);
  service::Service svc(options);
  svc.traces().register_store("bfs", *store_path_);
  svc.models().register_model("bw", *model_path_);

  for (const ServiceScenario& scenario : kServiceMatrix) {
    SCOPED_TRACE(std::string(scenario.site) + "/" +
                 std::string(faultinject::to_string(scenario.kind)));
    faultinject::clear();
    FaultSpec spec;
    spec.kind = scenario.kind;
    spec.one_shot = true;  // the service must survive to the next verb
    faultinject::arm(scenario.site, spec);

    const Json request =
        request_for(scenario.verb, *dir_, *store_path_, *model_path_);
    const Json response = Json::parse(svc.handle(request.dump()));
    // Exactly one response, ok:false, carrying the injected wire code.
    EXPECT_FALSE(response.bool_or("ok", true));
    EXPECT_EQ(response.at("error").string_or("code", ""),
              to_string(faultinject::error_code_for(scenario.kind)));

    // Disarmed (one-shot has fired): the same verb must serve again.
    // Probe interval 0 lets a quarantined resource heal inline.
    const Json retry = Json::parse(svc.handle(request.dump()));
    EXPECT_TRUE(retry.bool_or("ok", false))
        << "verb did not recover: " << retry.dump();
  }
  svc.drain();
}

// --- quarantine / degraded serving ----------------------------------

TEST_F(ChaosServiceTest, QuarantinedStoreKeepsPredictServingAndHealthDegrades) {
  service::ServiceOptions options;
  options.num_threads = 2;
  // Long interval: quarantine must be observable, not healed inline.
  options.quarantine_probe_interval = std::chrono::hours(1);
  service::Service svc(options);
  svc.traces().register_store("bfs", *store_path_);
  svc.models().register_model("bw", *model_path_);

  // A mid-decode checksum failure during simulate quarantines the store.
  FaultSpec spec;
  spec.kind = FaultKind::kInvalidData;
  spec.one_shot = true;
  faultinject::arm("tracestore.chunk_verify", spec);
  const Json sim =
      request_for("simulate", *dir_, *store_path_, *model_path_);
  const Json broken = Json::parse(svc.handle(sim.dump()));
  EXPECT_FALSE(broken.bool_or("ok", true));
  EXPECT_EQ(broken.at("error").string_or("code", ""), "invalid-data");
  EXPECT_EQ(svc.traces().quarantined_count(), 1u);

  // While quarantined: simulate fast-fails "unavailable" (it must not
  // re-run the failing decode in a hot loop)...
  const Json while_down = Json::parse(svc.handle(sim.dump()));
  EXPECT_FALSE(while_down.bool_or("ok", true));
  EXPECT_EQ(while_down.at("error").string_or("code", ""), "unavailable");

  // ...predict through the untouched model keeps serving...
  const Json predict = Json::parse(svc.handle(
      request_for("predict", *dir_, *store_path_, *model_path_).dump()));
  EXPECT_TRUE(predict.bool_or("ok", false)) << predict.dump();

  // ...and health reports degraded with per-resource detail.
  const Json health = Json::parse(svc.handle(R"({"verb":"health"})"));
  EXPECT_TRUE(health.bool_or("ok", false));
  EXPECT_EQ(health.string_or("status", ""), "degraded");
  const auto& resources = health.at("resources").as_array();
  ASSERT_EQ(resources.size(), 1u);
  EXPECT_EQ(resources[0].string_or("type", ""), "trace");
  EXPECT_EQ(resources[0].string_or("status", ""), "quarantined");
  EXPECT_EQ(resources[0].string_or("code", ""), "invalid-data");
  svc.drain();
}

TEST_F(ChaosServiceTest, QuarantinedStoreRecoversViaReprobe) {
  service::ServiceOptions options;
  options.num_threads = 2;
  options.quarantine_probe_interval = std::chrono::milliseconds(0);
  service::Service svc(options);
  svc.traces().register_store("bfs", *store_path_);

  FaultSpec spec;
  spec.kind = FaultKind::kInvalidData;
  spec.one_shot = true;
  faultinject::arm("tracestore.chunk_verify", spec);
  const Json sim =
      request_for("simulate", *dir_, *store_path_, *model_path_);
  const Json broken = Json::parse(svc.handle(sim.dump()));
  EXPECT_FALSE(broken.bool_or("ok", true));
  EXPECT_EQ(svc.traces().quarantined_count(), 1u);

  // The fault was transient (one-shot); the next lookup's probe window
  // is already open (interval 0), the store verifies clean, and serving
  // resumes without any manual re-registration.
  const Json healed = Json::parse(svc.handle(sim.dump()));
  EXPECT_TRUE(healed.bool_or("ok", false)) << healed.dump();
  EXPECT_EQ(svc.traces().quarantined_count(), 0u);
  const Json health = Json::parse(svc.handle(R"({"verb":"health"})"));
  EXPECT_EQ(health.string_or("status", ""), "ok");
  svc.drain();
}

TEST_F(ChaosServiceTest, QuarantinedModelRecoversViaReprobeFromDisk) {
  service::ServiceOptions options;
  options.num_threads = 2;
  options.quarantine_probe_interval = std::chrono::milliseconds(0);
  service::Service svc(options);
  svc.traces().register_store("bfs", *store_path_);
  svc.models().register_model("bw", *model_path_);

  FaultSpec spec;
  spec.kind = FaultKind::kInvalidData;
  spec.one_shot = true;
  faultinject::arm("service.model_predict", spec);
  const Json predict =
      request_for("predict", *dir_, *store_path_, *model_path_);
  const Json broken = Json::parse(svc.handle(predict.dump()));
  EXPECT_FALSE(broken.bool_or("ok", true));
  EXPECT_EQ(broken.at("error").string_or("code", ""), "invalid-data");
  EXPECT_EQ(svc.models().quarantined_count(), 1u);

  // Disk-backed model: the probe reloads the artifact and restores it.
  const Json healed = Json::parse(svc.handle(predict.dump()));
  EXPECT_TRUE(healed.bool_or("ok", false)) << healed.dump();
  EXPECT_EQ(svc.models().quarantined_count(), 0u);
  svc.drain();
}

TEST_F(ChaosServiceTest, MalformedRequestsNeverQuarantineResources) {
  service::ServiceOptions options;
  options.num_threads = 2;
  options.quarantine_probe_interval = std::chrono::hours(1);
  service::Service svc(options);
  svc.traces().register_store("bfs", *store_path_);
  svc.models().register_model("bw", *model_path_);

  // Bad sampling / bad points reference a real store, but request
  // parsing precedes the resource lookup: the store must stay serving.
  for (const char* line : {
           R"({"verb":"simulate","trace":"bfs","points":"notanarray"})",
           R"({"verb":"simulate","trace":"bfs","points":[{"cpu_freq_mhz":"x"}]})",
           R"({"verb":"simulate","trace":"bfs","points":[{}],"sampling":{"fraction":7}})",
           R"({"verb":"predict","model":"bw","points":42})",
       }) {
    const Json response = Json::parse(svc.handle(line));
    EXPECT_FALSE(response.bool_or("ok", true));
  }
  EXPECT_EQ(svc.traces().quarantined_count(), 0u);
  EXPECT_EQ(svc.models().quarantined_count(), 0u);
  const Json health = Json::parse(svc.handle(R"({"verb":"health"})"));
  EXPECT_EQ(health.string_or("status", ""), "ok");
  svc.drain();
}

TEST_F(ChaosServiceTest, DrainingHealthReportsDraining) {
  service::Service svc;
  svc.drain();
  const Json health = svc.health_json();
  EXPECT_EQ(health.string_or("status", ""), "draining");
}

}  // namespace
}  // namespace gmd
