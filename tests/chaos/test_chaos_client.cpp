/// \file test_chaos_client.cpp
/// Fork-mode chaos: drives the real gmd_serve binary (path injected by
/// CMake as GMD_SERVE_PATH) through a PipeClient and kills, starves,
/// and corrupts the server process itself.  Every scenario must end in
/// exactly one of: a correct result, a typed error, or a successful
/// recovery after retry — never a hang, a crash, or a silent wrong
/// answer.  Shell one-liners stand in for misbehaving servers (torn
/// output, instant exit) where gmd_serve is too well-behaved to fail.

#include <gtest/gtest.h>

#include <signal.h>

#include <chrono>
#include <string>

#include "gmd/common/error.hpp"
#include "gmd/service/client.hpp"

namespace gmd::service {
namespace {

Json health_request() {
  Json request;
  request["verb"] = "health";
  return request;
}

PipeClient::Options serve_options() {
  PipeClient::Options options;
  options.server_path = GMD_SERVE_PATH;
  return options;
}

TEST(ChaosClient, KilledServerFailsInFlightTyped) {
  PipeClient client(serve_options());
  // Prove the server is up, then SIGKILL it mid-session.
  EXPECT_TRUE(client.request(health_request()).bool_or("ok", false));
  client.kill_server();
  // Every request from here fails with a *typed* error: either the
  // write hits the broken pipe (kUnavailable/kIo) or the reader's EOF
  // fails the pending id (kUnavailable).  Never a hang, never SIGPIPE.
  try {
    (void)client.request(health_request());
    FAIL() << "request against a killed server must fail";
  } catch (const Error& e) {
    EXPECT_TRUE(e.code() == ErrorCode::kUnavailable ||
                e.code() == ErrorCode::kIo)
        << to_string(e.code());
  }
  EXPECT_EQ(client.close_and_wait(), -SIGKILL);
}

TEST(ChaosClient, KillRetryRecoversTransparently) {
  PipeClient::Options options = serve_options();
  options.retry.max_attempts = 4;
  options.retry.initial_backoff = std::chrono::milliseconds(1);
  options.retry.restart_on_death = true;
  options.retry.circuit_threshold = 10;  // not under test here
  PipeClient client(options);
  EXPECT_TRUE(client.request(health_request()).bool_or("ok", false));
  client.kill_server();
  // The client respawns gmd_serve and the retried request succeeds —
  // the caller never sees the death.
  int attempts = 0;
  const Json response = client.request_with_retry(health_request(), &attempts);
  EXPECT_TRUE(response.bool_or("ok", false)) << response.dump();
  EXPECT_GE(attempts, 2);
  EXPECT_GE(client.restarts(), 1u);
  EXPECT_EQ(client.close_and_wait(), 0);
}

TEST(ChaosClient, InjectedUnavailableIsRetriedToSuccess) {
  // gmd_serve arms its own fault point: the first health dispatch
  // raises kUnavailable once, then the site disarms.
  PipeClient::Options options = serve_options();
  options.args = {"--faults", "service.health=unavailable:nth=1:oneshot"};
  options.retry.max_attempts = 3;
  options.retry.initial_backoff = std::chrono::milliseconds(1);
  PipeClient client(options);
  int attempts = 0;
  const Json response = client.request_with_retry(health_request(), &attempts);
  EXPECT_TRUE(response.bool_or("ok", false)) << response.dump();
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(client.close_and_wait(), 0);
}

TEST(ChaosClient, InvalidDataIsNeverRetried) {
  PipeClient::Options options = serve_options();
  options.args = {"--faults", "service.health=invalid-data:nth=1:oneshot"};
  options.retry.max_attempts = 5;
  options.retry.initial_backoff = std::chrono::milliseconds(1);
  PipeClient client(options);
  int attempts = 0;
  const Json response = client.request_with_retry(health_request(), &attempts);
  // The error response comes back untouched after exactly one attempt:
  // retrying invalid data would just burn the budget (and, had the
  // fault been real, mask a data bug).
  EXPECT_FALSE(response.bool_or("ok", true));
  EXPECT_EQ(response.at("error").string_or("code", ""), "invalid-data");
  EXPECT_EQ(attempts, 1);
  // The one-shot fault is still spent only once: the next plain request
  // succeeds, proving no hidden retry consumed it.
  EXPECT_TRUE(client.request(health_request()).bool_or("ok", false));
  EXPECT_EQ(client.close_and_wait(), 0);
}

TEST(ChaosClient, BudgetCapsPerAttemptDeadline) {
  PipeClient::Options options = serve_options();
  options.retry.max_attempts = 3;
  options.retry.budget = std::chrono::milliseconds(60000);
  PipeClient client(options);
  // The server echoes nothing about deadlines on health, so assert the
  // other observable: a request that carries a deadline larger than the
  // budget still completes (the client clamped it, the server served
  // it) rather than erroring on either side.
  Json request = health_request();
  request["deadline_ms"] = 1e9;
  const Json response = client.request_with_retry(request);
  EXPECT_TRUE(response.bool_or("ok", false)) << response.dump();
  EXPECT_EQ(client.close_and_wait(), 0);
}

TEST(ChaosClient, CircuitBreakerFastFailsAfterConsecutiveDeaths) {
  // A server that exits immediately: every connection dies before
  // answering.  After `circuit_threshold` consecutive deaths the
  // breaker opens and requests fail fast without touching the pipe.
  PipeClient::Options options;
  options.server_path = "/bin/false";
  options.retry.max_attempts = 8;
  options.retry.initial_backoff = std::chrono::milliseconds(1);
  options.retry.restart_on_death = true;
  options.retry.circuit_threshold = 3;
  options.retry.circuit_cooldown = std::chrono::seconds(30);
  PipeClient client(options);
  try {
    (void)client.request_with_retry(health_request());
    FAIL() << "a dead-on-arrival server must fail the request";
  } catch (const Error& e) {
    EXPECT_TRUE(e.code() == ErrorCode::kUnavailable ||
                e.code() == ErrorCode::kIo)
        << to_string(e.code());
  }
  EXPECT_TRUE(client.circuit_open());
  // While open: instant typed failure, no new server spawned.
  const std::uint64_t restarts_before = client.restarts();
  try {
    (void)client.send(health_request());
    FAIL() << "open circuit must fast-fail sends";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnavailable);
    EXPECT_NE(std::string(e.what()).find("circuit"), std::string::npos);
  }
  EXPECT_EQ(client.restarts(), restarts_before);
}

TEST(ChaosClient, TornResponseLineFailsInFlightWithIoError) {
  // A server that answers with malformed JSON and lingers: the waiter
  // must get a typed kIo error immediately, not block until teardown.
  PipeClient::Options options;
  options.server_path = "/bin/sh";
  options.args = {"-c", "read line; echo '{\"id\":1,\"ok\"'; sleep 5"};
  PipeClient client(options);
  const auto start = std::chrono::steady_clock::now();
  try {
    (void)client.request(health_request());
    FAIL() << "a torn response line must fail the request";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
    EXPECT_NE(std::string(e.what()).find("malformed"), std::string::npos);
  }
  // "Immediately": well inside the server's 5s lifetime.
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(4));
}

TEST(ChaosClient, EofWithoutResponseFailsUnavailable) {
  // A server that swallows the request and exits cleanly.
  PipeClient::Options options;
  options.server_path = "/bin/sh";
  options.args = {"-c", "read line; exit 0"};
  PipeClient client(options);
  try {
    (void)client.request(health_request());
    FAIL() << "EOF before a response must fail the request";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnavailable);
  }
  EXPECT_EQ(client.close_and_wait(), 0);
}

TEST(ChaosClient, ExecFailureSurfacesTypedAndExits127) {
  PipeClient::Options options;
  options.server_path = "/nonexistent/gmd_serve_missing";
  PipeClient client(options);
  EXPECT_THROW((void)client.request(health_request()), Error);
  EXPECT_EQ(client.close_and_wait(), 127);
}

TEST(ChaosClient, FaultStormEveryRequestAnsweredExactlyOnce) {
  // A seeded 20% fault storm on the health verb: every request is
  // still answered exactly once, each either ok or a typed error, and
  // the server serves and drains cleanly afterwards.
  PipeClient::Options options = serve_options();
  options.args = {"--threads", "1", "--queue-depth", "1",
                  "--faults", "service.health=timeout:p=0.2:seed=11"};
  PipeClient client(options);
  std::size_t answered = 0;
  for (int i = 0; i < 64; ++i) {
    const Json response = client.request(health_request());
    ++answered;
    if (!response.bool_or("ok", false)) {
      const std::string code = response.at("error").string_or("code", "");
      EXPECT_TRUE(code == "overloaded" || code == "timeout") << code;
    }
  }
  EXPECT_EQ(answered, 64u);
  EXPECT_EQ(client.close_and_wait(), 0);
}

}  // namespace
}  // namespace gmd::service
