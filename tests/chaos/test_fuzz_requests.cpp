/// \file test_fuzz_requests.cpp
/// Malformed-request corpus against Service::handle_line.  The protocol
/// contract under attack: EVERY input line produces exactly one
/// response line, synchronously for anything that fails to parse or
/// validate, and the response itself is valid JSON with ok:false and a
/// typed error code.  Truncations, depth bombs, huge scalars, duplicate
/// ids, and megabyte keys must neither crash (run under ASan in CI),
/// hang, nor produce zero or two responses.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gmd/service/service.hpp"

namespace gmd::service {
namespace {

/// Counts responses and sanity-checks each one is parseable JSON.
struct CountingSink {
  std::atomic<std::size_t> count{0};
  std::atomic<bool> all_json{true};

  Service::ResponseSink sink() {
    return [this](std::string line) {
      count.fetch_add(1);
      try {
        (void)Json::parse(line);
      } catch (...) {
        all_json.store(false);
      }
    };
  }
};

std::vector<std::string> corpus() {
  std::vector<std::string> lines;

  // Every prefix of a valid request: truncated JSON at each byte.
  const std::string valid =
      R"({"verb":"simulate","trace":"t","points":[{"cpu_freq_mhz":2000}]})";
  for (std::size_t len = 1; len < valid.size(); ++len) {
    lines.push_back(valid.substr(0, len));
  }

  // Depth bombs: nesting at, just over, and far past the parser cap.
  for (const std::size_t depth : {63u, 64u, 65u, 100u, 10000u}) {
    lines.push_back(std::string(depth, '[') + std::string(depth, ']'));
    std::string object;
    for (std::size_t i = 0; i < depth; ++i) object += "{\"k\":";
    object += "1";
    for (std::size_t i = 0; i < depth; ++i) object += "}";
    lines.push_back(object);
  }

  // Numeric edge cases: overflow to inf, huge negatives, NaN tokens.
  lines.push_back(R"({"verb":"stats","id":1e309})");
  lines.push_back(R"({"verb":"stats","id":-1e309})");
  lines.push_back(R"({"verb":"stats","id":NaN})");
  lines.push_back(R"({"verb":"stats","id":nan})");
  lines.push_back(R"({"verb":"stats","id":Infinity})");
  lines.push_back(R"({"verb":"stats","deadline_ms":1e308})");
  lines.push_back(R"({"verb":"stats","deadline_ms":-5})");
  lines.push_back(R"({"verb":"stats","id":1.5})");
  lines.push_back(R"({"verb":"stats","id":"seven"})");
  lines.push_back(R"({"verb":"stats","id":-3})");

  // Duplicate keys (last-wins or rejected — either way, one response).
  lines.push_back(R"({"verb":"stats","id":1,"id":2})");
  lines.push_back(R"({"verb":"stats","verb":"health"})");

  // A 1MB key and a 1MB string value.
  lines.push_back("{\"" + std::string(1 << 20, 'k') + "\":1,\"verb\":\"stats\"}");
  lines.push_back("{\"verb\":\"stats\",\"pad\":\"" + std::string(1 << 20, 'v') +
                  "\"}");

  // Broken strings: unpaired surrogates, bad escapes, raw control and
  // NUL bytes.
  lines.push_back(R"({"verb":"\ud800"})");
  lines.push_back(R"({"verb":"\udc00\ud800"})");
  lines.push_back(R"({"verb":"\x41"})");
  lines.push_back(std::string("{\"verb\":\"st\x01\x02\",\"id\":1}"));
  std::string with_nul = R"({"verb":"stats")";
  with_nul.push_back('\0');
  with_nul += "extra}";
  lines.push_back(with_nul);

  // Wrong top-level shapes.
  lines.push_back("42");
  lines.push_back("\"just a string\"");
  lines.push_back("null");
  lines.push_back("true");
  lines.push_back("[]");
  lines.push_back("[{\"verb\":\"stats\"}]");
  lines.push_back("{}");
  lines.push_back("{}{}");
  lines.push_back(R"({"verb":"stats"} trailing)");

  // Valid JSON, invalid protocol.
  lines.push_back(R"({"verb":"no_such_verb"})");
  lines.push_back(R"({"verb":42})");
  lines.push_back(R"({"verb":null})");
  lines.push_back(R"({"verb":["simulate"]})");
  lines.push_back(R"({"verb":"simulate"})");
  lines.push_back(R"({"verb":"simulate","trace":"missing","points":[{}]})");
  lines.push_back(R"({"verb":"simulate","trace":"t","points":"no"})");
  lines.push_back(R"({"verb":"predict","model":"none","points":[{}]})");
  lines.push_back(R"({"verb":"register_trace","alias":"a","path":"/nope"})");
  lines.push_back(R"({"verb":"register_model","name":"m","path":"/nope"})");

  // A big flat array of points that all fail validation.
  std::string many = R"({"verb":"simulate","trace":"t","points":[)";
  for (int i = 0; i < 5000; ++i) {
    many += i ? ",7" : "7";
  }
  many += "]}";
  lines.push_back(many);

  return lines;
}

/// Most corpus lines answer synchronously (parse/validation errors),
/// but structurally-plausible simulate/predict lines are admitted and
/// answer from a worker; give those a generous beat to arrive.
bool wait_for_count(const CountingSink& counter, std::size_t target) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (counter.count.load() < target) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return counter.count.load() == target;
}

TEST(FuzzRequests, EveryCorpusLineGetsExactlyOneJsonErrorResponse) {
  ServiceOptions options;
  options.num_threads = 2;
  Service svc(options);
  CountingSink counter;
  const auto sink = counter.sink();
  const std::vector<std::string> lines = corpus();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::size_t before = counter.count.load();
    svc.handle_line(lines[i], sink);
    EXPECT_TRUE(wait_for_count(counter, before + 1))
        << "line " << i << " produced " << (counter.count.load() - before)
        << " responses: " << lines[i].substr(0, 120);
  }
  EXPECT_TRUE(counter.all_json.load());
  svc.drain();
  // Drained: the storm produced exactly one response per line, total.
  EXPECT_EQ(counter.count.load(), lines.size());
}

TEST(FuzzRequests, CorpusResponsesCarryTypedErrorCodes) {
  Service svc;
  for (const char* line : {
           R"(not json at all)",
           R"({"verb":"no_such_verb","id":9})",
           R"({"verb":"simulate","trace":"missing","points":[{}],"id":10})",
       }) {
    const Json response = Json::parse(svc.handle(line));
    EXPECT_FALSE(response.bool_or("ok", true));
    const std::string code = response.at("error").string_or("code", "");
    ErrorCode parsed{};
    EXPECT_TRUE(error_code_from_string(code, parsed))
        << "unknown wire code '" << code << "' for: " << line;
  }
  svc.drain();
}

TEST(FuzzRequests, ServiceStillServesAfterTheStorm) {
  Service svc;
  CountingSink counter;
  const auto sink = counter.sink();
  for (const std::string& line : corpus()) svc.handle_line(line, sink);
  // The storm must leave no residue: a well-formed request still works.
  const Json stats = Json::parse(svc.handle(R"({"verb":"stats","id":1})"));
  EXPECT_TRUE(stats.bool_or("ok", false));
  const Json health = Json::parse(svc.handle(R"({"verb":"health","id":2})"));
  EXPECT_TRUE(health.bool_or("ok", false));
  EXPECT_EQ(health.string_or("status", ""), "ok");
  svc.drain();
}

}  // namespace
}  // namespace gmd::service
