/// End-to-end orchestrator contract: a full run publishes every
/// artifact with no temp residue, resume skips verified stages, a stage
/// failure mid-pipeline leaves completed stages resumable, and an
/// interrupted-then-resumed run is bit-identical to an uninterrupted
/// one.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gmd/common/deadline.hpp"
#include "gmd/common/error.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/dataset_builder.hpp"
#include "gmd/dse/sweep.hpp"
#include "gmd/pipeline/manifest.hpp"
#include "gmd/pipeline/pipeline.hpp"

namespace gmd::pipeline {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

std::size_t count_temp_files(const fs::path& dir) {
  std::size_t count = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".tmp") {
      ++count;
    }
  }
  return count;
}

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(testing::TempDir()) /
            ("gmd_pipeline_" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }

  void TearDown() override { fs::remove_all(root_); }

  /// Small but complete configuration: a tiny graph, a 16-point design
  /// space, and the cheapest model family.
  PipelineOptions small_options(const std::string& out_name) const {
    PipelineOptions options;
    options.out_dir = (root_ / out_name).string();
    options.graph_vertices = 64;
    options.edge_factor = 4;
    options.seed = 7;
    dse::GridAxes axes;
    axes.kinds = {dse::MemoryKind::kDram, dse::MemoryKind::kNvm};
    axes.cpu_freqs_mhz = {2000, 3000};
    axes.ctrl_freqs_mhz = {800};
    axes.channel_counts = {1, 2};
    axes.trcds = {9, 12};
    options.design_points = dse::enumerate_grid(axes);
    options.surrogate.models = {"linear"};
    options.num_threads = 2;
    return options;
  }

  /// The artifact files whose bytes define "the result" of a run.
  std::vector<std::string> key_artifacts(const PipelineResult& result) const {
    std::vector<std::string> files = {result.sweep_csv, result.table1_path,
                                      result.recommendations_path};
    for (const std::string& metric : dse::target_metric_names()) {
      const std::string model = (fs::path(result.table1_path).parent_path() /
                                 "models" / (metric + ".model"))
                                    .string();
      if (fs::exists(model)) files.push_back(model);
    }
    return files;
  }

  fs::path root_;
};

TEST_F(PipelineTest, FullRunPublishesEveryArtifactWithNoTempResidue) {
  const PipelineOptions options = small_options("full");
  const PipelineResult result = run_pipeline(options);

  ASSERT_EQ(result.stages.size(), stage_names().size());
  for (std::size_t i = 0; i < result.stages.size(); ++i) {
    EXPECT_EQ(result.stages[i].name, stage_names()[i]);
    EXPECT_FALSE(result.stages[i].skipped);
  }
  EXPECT_TRUE(fs::exists(result.trace_path));
  EXPECT_TRUE(fs::exists(result.store_path));
  EXPECT_TRUE(fs::exists(result.sweep_csv));
  EXPECT_TRUE(fs::exists(result.table1_path));
  EXPECT_TRUE(fs::exists(result.recommendations_path));
  EXPECT_EQ(result.health.ok, options.design_points.size());
  EXPECT_EQ(result.trained_metrics, dse::target_metric_names().size());
  EXPECT_EQ(result.skipped_metrics, 0u);
  for (const std::string& metric : dse::target_metric_names()) {
    EXPECT_TRUE(fs::exists(fs::path(options.out_dir) / "models" /
                           (metric + ".model")))
        << metric;
  }
  EXPECT_EQ(count_temp_files(options.out_dir), 0u);
  EXPECT_NE(result.summary().find("recommend=ran"), std::string::npos);
}

TEST_F(PipelineTest, ResumeSkipsEveryVerifiedStage) {
  PipelineOptions options = small_options("resume");
  const PipelineResult first = run_pipeline(options);
  std::vector<std::string> before;
  for (const std::string& file : key_artifacts(first)) {
    before.push_back(slurp(file));
  }

  options.resume = true;
  const PipelineResult second = run_pipeline(options);
  for (const StageStatus& stage : second.stages) {
    EXPECT_TRUE(stage.skipped) << stage.name;
  }
  // Health and model counts are rebuilt from the published artifacts.
  EXPECT_EQ(second.health.ok, first.health.ok);
  EXPECT_EQ(second.trained_metrics, first.trained_metrics);

  const std::vector<std::string> files = key_artifacts(first);
  for (std::size_t i = 0; i < files.size(); ++i) {
    EXPECT_EQ(slurp(files[i]), before[i])
        << files[i] << " changed across a no-op resume";
  }
}

TEST_F(PipelineTest, ChangedTrainConfigReRunsOnlyTrain) {
  PipelineOptions options = small_options("retrain");
  run_pipeline(options);

  options.resume = true;
  options.surrogate.seed = 99;  // Part of the train stage's identity.
  const PipelineResult second = run_pipeline(options);
  for (const StageStatus& stage : second.stages) {
    if (stage.name == "train") {
      EXPECT_FALSE(stage.skipped);
    } else {
      EXPECT_TRUE(stage.skipped) << stage.name;
    }
  }
}

TEST_F(PipelineTest, StageFailureLeavesCompletedStagesResumable) {
  // Reference: uninterrupted run in its own directory.
  const PipelineOptions reference_options = small_options("ref");
  const PipelineResult reference = run_pipeline(reference_options);

  // Faulted run: the sweep stage dies on first entry.
  PipelineOptions options = small_options("faulted");
  options.stage_hook = [](const std::string& name) {
    if (name == "sweep") throw Error(ErrorCode::kSimulation, "injected");
  };
  try {
    run_pipeline(options);
    FAIL() << "expected the injected sweep failure to propagate";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kSimulation);
  }
  // cpusim and pack completed and were recorded before the crash.
  Manifest manifest((fs::path(options.out_dir) / "manifest.txt").string());
  EXPECT_EQ(manifest.load(), 2u);
  EXPECT_NE(manifest.find("cpusim"), nullptr);
  EXPECT_NE(manifest.find("pack"), nullptr);

  // Resume without the fault: the first two stages are skipped, the
  // rest run, and every artifact matches the uninterrupted reference.
  options.stage_hook = nullptr;
  options.resume = true;
  const PipelineResult resumed = run_pipeline(options);
  EXPECT_TRUE(resumed.stages[0].skipped);
  EXPECT_TRUE(resumed.stages[1].skipped);
  EXPECT_FALSE(resumed.stages[2].skipped);

  const std::vector<std::string> reference_files = key_artifacts(reference);
  const std::vector<std::string> resumed_files = key_artifacts(resumed);
  ASSERT_EQ(reference_files.size(), resumed_files.size());
  for (std::size_t i = 0; i < reference_files.size(); ++i) {
    EXPECT_EQ(slurp(resumed_files[i]), slurp(reference_files[i]))
        << resumed_files[i] << " diverged from the uninterrupted run";
  }
  EXPECT_EQ(count_temp_files(options.out_dir), 0u);
}

TEST_F(PipelineTest, SweepAbortMidwayThenResumeIsBitIdentical) {
  const PipelineOptions reference_options = small_options("ref2");
  const PipelineResult reference = run_pipeline(reference_options);

  // Abort the sweep after a few points have completed (and been
  // journaled).  Under kFailFast the injected error kills the sweep
  // stage; the journal keeps whatever finished.
  PipelineOptions options = small_options("aborted");
  std::atomic<int> attempts{0};
  options.sweep_fault_hook = [&attempts](std::size_t, std::uint32_t) {
    if (++attempts > 3) throw Error(ErrorCode::kSimulation, "injected");
  };
  EXPECT_THROW(run_pipeline(options), Error);

  // Resume: the journaled points are restored, the rest re-simulate,
  // and every downstream artifact is bit-identical to the reference.
  options.sweep_fault_hook = nullptr;
  std::atomic<int> resumed_points{0};
  options.sweep_fault_hook = [&resumed_points](std::size_t, std::uint32_t) {
    ++resumed_points;
  };
  options.resume = true;
  const PipelineResult resumed = run_pipeline(options);
  EXPECT_LT(resumed_points.load(),
            static_cast<int>(options.design_points.size()))
      << "resume re-simulated every point, so the journal restored nothing";
  EXPECT_EQ(resumed.health.ok, options.design_points.size());

  const std::vector<std::string> reference_files = key_artifacts(reference);
  const std::vector<std::string> resumed_files = key_artifacts(resumed);
  ASSERT_EQ(reference_files.size(), resumed_files.size());
  for (std::size_t i = 0; i < reference_files.size(); ++i) {
    EXPECT_EQ(slurp(resumed_files[i]), slurp(reference_files[i]))
        << resumed_files[i] << " diverged from the uninterrupted run";
  }
  EXPECT_EQ(count_temp_files(options.out_dir), 0u);
}

TEST_F(PipelineTest, ExpiredCancelTokenAbortsWithTimeout) {
  PipelineOptions options = small_options("cancelled");
  Deadline expired(std::chrono::nanoseconds{0});
  options.cancel = &expired;
  try {
    run_pipeline(options);
    FAIL() << "expected Error(kTimeout)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTimeout) << e.what();
  }
}

TEST_F(PipelineTest, EmptyOutDirIsRejected) {
  PipelineOptions options;
  options.out_dir = "";
  try {
    run_pipeline(options);
    FAIL() << "expected Error(kConfig)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kConfig);
  }
}

}  // namespace
}  // namespace gmd::pipeline
