/// Manifest contract: stage records round-trip through disk, resume
/// validity checks artifact size AND content, and a rotten manifest is
/// discarded with a typed warning instead of poisoning a resume.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gmd/common/atomic_file.hpp"
#include "gmd/common/error.hpp"
#include "gmd/common/logging.hpp"
#include "gmd/pipeline/manifest.hpp"

namespace gmd::pipeline {
namespace {

namespace fs = std::filesystem;

class ManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(testing::TempDir()) /
           ("gmd_manifest_" + std::string(::testing::UnitTest::GetInstance()
                                              ->current_test_info()
                                              ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    manifest_path_ = (dir_ / "manifest.txt").string();
  }

  void TearDown() override {
    log::set_sink(nullptr);
    fs::remove_all(dir_);
  }

  void put(const std::string& relpath, const std::string& content) {
    std::ofstream out(dir_ / relpath, std::ios::binary | std::ios::trunc);
    out << content;
  }

  fs::path dir_;
  std::string manifest_path_;
};

TEST_F(ManifestTest, RecordAndReloadRoundTrips) {
  put("a.txt", "alpha");
  put("b.bin", "bravo-bytes");
  {
    Manifest manifest(manifest_path_);
    const std::vector<std::string> artifacts = {"a.txt", "b.bin"};
    manifest.record_stage("cpusim", 0xDEADBEEFu, artifacts);
    const std::vector<std::string> one = {"a.txt"};
    manifest.record_stage("pack", 42, one);
  }
  Manifest reloaded(manifest_path_);
  EXPECT_EQ(reloaded.load(), 2u);
  ASSERT_NE(reloaded.find("cpusim"), nullptr);
  EXPECT_EQ(reloaded.find("cpusim")->inputs_hash, 0xDEADBEEFu);
  ASSERT_EQ(reloaded.find("cpusim")->artifacts.size(), 2u);
  EXPECT_EQ(reloaded.find("cpusim")->artifacts[0].relpath, "a.txt");
  EXPECT_EQ(reloaded.find("cpusim")->artifacts[0].bytes, 5u);
  EXPECT_TRUE(reloaded.stage_valid("cpusim", 0xDEADBEEFu));
  EXPECT_TRUE(reloaded.stage_valid("pack", 42));
  EXPECT_EQ(reloaded.find("missing"), nullptr);
  EXPECT_FALSE(reloaded.stage_valid("missing", 0));
}

TEST_F(ManifestTest, RecordReplacesExistingStage) {
  put("a.txt", "one");
  Manifest manifest(manifest_path_);
  const std::vector<std::string> artifacts = {"a.txt"};
  manifest.record_stage("sweep", 1, artifacts);
  manifest.record_stage("sweep", 2, artifacts);
  EXPECT_EQ(manifest.stages().size(), 1u);
  EXPECT_EQ(manifest.find("sweep")->inputs_hash, 2u);

  Manifest reloaded(manifest_path_);
  EXPECT_EQ(reloaded.load(), 1u);
  EXPECT_TRUE(reloaded.stage_valid("sweep", 2));
  EXPECT_FALSE(reloaded.stage_valid("sweep", 1));
}

TEST_F(ManifestTest, StageValidRejectsChangedInputsHash) {
  put("a.txt", "alpha");
  Manifest manifest(manifest_path_);
  const std::vector<std::string> artifacts = {"a.txt"};
  manifest.record_stage("train", 7, artifacts);
  EXPECT_TRUE(manifest.stage_valid("train", 7));
  EXPECT_FALSE(manifest.stage_valid("train", 8))
      << "changed inputs must force a re-run";
}

TEST_F(ManifestTest, StageValidRejectsTamperedArtifact) {
  put("a.txt", "alpha");
  Manifest manifest(manifest_path_);
  const std::vector<std::string> artifacts = {"a.txt"};
  manifest.record_stage("train", 7, artifacts);

  // Same size, different content: only the checksum can catch it.
  put("a.txt", "alphx");
  EXPECT_FALSE(manifest.stage_valid("train", 7));

  // Deleted outright.
  fs::remove(dir_ / "a.txt");
  EXPECT_FALSE(manifest.stage_valid("train", 7));
}

TEST_F(ManifestTest, RecordStageThrowsOnMissingArtifact) {
  Manifest manifest(manifest_path_);
  const std::vector<std::string> artifacts = {"never-written.txt"};
  try {
    manifest.record_stage("sweep", 1, artifacts);
    FAIL() << "expected Error(kIo)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo) << e.what();
  }
}

TEST_F(ManifestTest, MissingManifestLoadsEmptyWithoutWarning) {
  std::size_t warnings = 0;
  log::set_sink([&warnings](log::Level level, std::string_view) {
    if (level == log::Level::kWarn) ++warnings;
  });
  Manifest manifest(manifest_path_);
  EXPECT_EQ(manifest.load(), 0u);
  EXPECT_EQ(warnings, 0u) << "a first run is not a corruption event";
}

TEST_F(ManifestTest, CorruptManifestLoadsEmptyWithTypedWarning) {
  const std::vector<std::string> bad_contents = {
      "not a manifest at all\n",
      "gmd-pipeline-manifest v99\nstage cpusim inputs=0 outputs=0\n",
      "gmd-pipeline-manifest v1\nstage cpusim inputs=zzzz outputs=1\n",
      "gmd-pipeline-manifest v1\nstage cpusim inputs=ab outputs=1\n"
      "artifact a.txt not-a-number ffff\n",
  };
  for (const auto& content : bad_contents) {
    atomic_write_text(manifest_path_, content);
    std::vector<std::string> warnings;
    log::set_sink([&warnings](log::Level level, std::string_view msg) {
      if (level == log::Level::kWarn) warnings.emplace_back(msg);
    });
    Manifest manifest(manifest_path_);
    EXPECT_EQ(manifest.load(), 0u) << content;
    EXPECT_TRUE(manifest.stages().empty()) << content;
    ASSERT_EQ(warnings.size(), 1u) << content;
    EXPECT_NE(warnings[0].find("unusable manifest"), std::string::npos)
        << warnings[0];
    log::set_sink(nullptr);
  }
}

TEST_F(ManifestTest, TruncatedManifestLoadsEmptyNotPartial) {
  put("a.txt", "alpha");
  put("b.txt", "bravo");
  {
    Manifest manifest(manifest_path_);
    const std::vector<std::string> a = {"a.txt"};
    const std::vector<std::string> b = {"b.txt"};
    manifest.record_stage("cpusim", 1, a);
    manifest.record_stage("pack", 2, b);
  }
  // Cut mid-file: the second record is torn.  All-or-nothing beats a
  // partial load that would silently skip a stage it never verified.
  std::ifstream in(manifest_path_, std::ios::binary);
  std::string full{std::istreambuf_iterator<char>(in), {}};
  in.close();
  atomic_write_text(manifest_path_, full.substr(0, full.size() - 10));

  std::size_t warnings = 0;
  log::set_sink([&warnings](log::Level level, std::string_view) {
    if (level == log::Level::kWarn) ++warnings;
  });
  Manifest manifest(manifest_path_);
  EXPECT_EQ(manifest.load(), 0u);
  EXPECT_EQ(warnings, 1u);
}

TEST_F(ManifestTest, ResolveJoinsAgainstManifestDirectory) {
  Manifest manifest(manifest_path_);
  EXPECT_EQ(manifest.resolve("a.txt"), (dir_ / "a.txt").string());
}

}  // namespace
}  // namespace gmd::pipeline
