#include "gmd/graph/csr.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "gmd/common/error.hpp"

namespace gmd::graph {
namespace {

EdgeList triangle() {
  EdgeList list;
  list.num_vertices = 3;
  list.edges = {{0, 1}, {1, 2}, {2, 0}, {0, 2}};
  return list;
}

TEST(CsrGraph, EmptyGraph) {
  const CsrGraph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(CsrGraph, BuildBasicStructure) {
  const CsrGraph g = CsrGraph::from_edge_list(triangle());
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 1u);
}

TEST(CsrGraph, NeighborsAreSorted) {
  EdgeList list;
  list.num_vertices = 4;
  list.edges = {{0, 3}, {0, 1}, {0, 2}};
  const CsrGraph g = CsrGraph::from_edge_list(list);
  const auto nbrs = g.neighbors_of(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[2], 3u);
}

TEST(CsrGraph, WeightsFollowSortedNeighbors) {
  EdgeList list;
  list.num_vertices = 3;
  list.edges = {{0, 2, 20.0}, {0, 1, 10.0}};
  const CsrGraph g = CsrGraph::from_edge_list(list, /*keep_weights=*/true);
  ASSERT_TRUE(g.is_weighted());
  const auto nbrs = g.neighbors_of(0);
  const auto w = g.weights_of(0);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_DOUBLE_EQ(w[0], 10.0);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_DOUBLE_EQ(w[1], 20.0);
}

TEST(CsrGraph, UnweightedHasEmptyWeightSpans) {
  const CsrGraph g = CsrGraph::from_edge_list(triangle());
  EXPECT_FALSE(g.is_weighted());
  EXPECT_TRUE(g.weights_of(0).empty());
}

TEST(CsrGraph, IsolatedVerticesHaveZeroDegree) {
  EdgeList list;
  list.num_vertices = 5;
  list.edges = {{0, 1}};
  const CsrGraph g = CsrGraph::from_edge_list(list);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.degree(4), 0u);
  EXPECT_TRUE(g.neighbors_of(3).empty());
}

TEST(CsrGraph, RejectsOutOfRangeEdges) {
  EdgeList list;
  list.num_vertices = 2;
  list.edges = {{0, 5}};
  EXPECT_THROW(CsrGraph::from_edge_list(list), Error);
}

TEST(CsrGraph, OffsetsAreMonotone) {
  EdgeList list;
  list.num_vertices = 6;
  list.edges = {{5, 0}, {3, 1}, {3, 2}, {0, 4}};
  const CsrGraph g = CsrGraph::from_edge_list(list);
  const auto offsets = g.offsets();
  ASSERT_EQ(offsets.size(), 7u);
  EXPECT_TRUE(std::is_sorted(offsets.begin(), offsets.end()));
  EXPECT_EQ(offsets.back(), g.num_edges());
}

}  // namespace
}  // namespace gmd::graph
