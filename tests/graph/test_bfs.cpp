#include "gmd/graph/bfs.hpp"

#include <gtest/gtest.h>

#include <string>

#include "gmd/common/error.hpp"
#include "gmd/graph/generators.hpp"

namespace gmd::graph {
namespace {

// Path graph 0-1-2-3 (undirected).
CsrGraph path4() {
  EdgeList list;
  list.num_vertices = 4;
  list.edges = {{0, 1}, {1, 2}, {2, 3}};
  symmetrize(list);
  return CsrGraph::from_edge_list(list);
}

CsrGraph paper_graph(std::uint64_t seed = 1) {
  UniformRandomParams p;
  p.num_vertices = 1024;
  p.edge_factor = 16;
  p.seed = seed;
  EdgeList list = generate_uniform_random(p);
  symmetrize(list);
  remove_self_loops_and_duplicates(list);
  return CsrGraph::from_edge_list(list);
}

using BfsFn = BfsResult (*)(const CsrGraph&, VertexId);

BfsResult run_dir_opt(const CsrGraph& g, VertexId s) {
  return bfs_direction_optimizing(g, s);
}

class BfsVariant : public testing::TestWithParam<BfsFn> {};

TEST_P(BfsVariant, PathGraphDepths) {
  const CsrGraph g = path4();
  const BfsResult r = GetParam()(g, 0);
  EXPECT_EQ(r.depth[0], 0u);
  EXPECT_EQ(r.depth[1], 1u);
  EXPECT_EQ(r.depth[2], 2u);
  EXPECT_EQ(r.depth[3], 3u);
  EXPECT_EQ(r.vertices_visited, 4u);
}

TEST_P(BfsVariant, SourceIsItsOwnParent) {
  const CsrGraph g = path4();
  const BfsResult r = GetParam()(g, 2);
  EXPECT_EQ(r.parent[2], 2u);
  EXPECT_EQ(r.depth[2], 0u);
}

TEST_P(BfsVariant, DisconnectedComponentUnreached) {
  EdgeList list;
  list.num_vertices = 5;
  list.edges = {{0, 1}, {3, 4}};
  symmetrize(list);
  const CsrGraph g = CsrGraph::from_edge_list(list);
  const BfsResult r = GetParam()(g, 0);
  EXPECT_TRUE(r.reached(1));
  EXPECT_FALSE(r.reached(2));
  EXPECT_FALSE(r.reached(3));
  EXPECT_FALSE(r.reached(4));
  EXPECT_EQ(r.vertices_visited, 2u);
}

TEST_P(BfsVariant, ValidatesOnPaperScaleGraph) {
  const CsrGraph g = paper_graph();
  const BfsResult r = GetParam()(g, 17);
  std::string reason;
  EXPECT_TRUE(validate_bfs(g, r, &reason)) << reason;
  // Dense uniform random graph: everything reachable.
  EXPECT_EQ(r.vertices_visited, g.num_vertices());
}

TEST_P(BfsVariant, SingletonGraph) {
  EdgeList list;
  list.num_vertices = 1;
  const CsrGraph g = CsrGraph::from_edge_list(list);
  const BfsResult r = GetParam()(g, 0);
  EXPECT_EQ(r.vertices_visited, 1u);
  EXPECT_EQ(r.depth[0], 0u);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, BfsVariant,
                         testing::Values(&bfs_top_down, &bfs_bottom_up,
                                         &run_dir_opt),
                         [](const testing::TestParamInfo<BfsFn>& info) {
                           switch (info.index) {
                             case 0:
                               return std::string("TopDown");
                             case 1:
                               return std::string("BottomUp");
                             default:
                               return std::string("DirectionOptimizing");
                           }
                         });

TEST(Bfs, VariantsAgreeOnDepths) {
  const CsrGraph g = paper_graph(3);
  const BfsResult td = bfs_top_down(g, 5);
  const BfsResult bu = bfs_bottom_up(g, 5);
  const BfsResult dir = bfs_direction_optimizing(g, 5);
  EXPECT_EQ(td.depth, bu.depth);
  EXPECT_EQ(td.depth, dir.depth);
}

TEST(Bfs, SourceOutOfRangeThrows) {
  const CsrGraph g = path4();
  EXPECT_THROW(bfs_top_down(g, 99), Error);
}

TEST(BfsValidate, DetectsDepthSkippingParent) {
  const CsrGraph g = path4();
  BfsResult r = bfs_top_down(g, 0);
  r.depth[3] = 5;  // corrupt: tree edge 2->3 now spans 3 levels
  EXPECT_FALSE(validate_bfs(g, r));
}

TEST(BfsValidate, DetectsNonGraphTreeEdge) {
  const CsrGraph g = path4();
  BfsResult r = bfs_top_down(g, 0);
  r.parent[3] = 0;  // 0->3 is not an edge
  r.depth[3] = 1;
  EXPECT_FALSE(validate_bfs(g, r));
}

TEST(BfsValidate, DetectsUnreachedNeighborOfReached) {
  const CsrGraph g = path4();
  BfsResult r = bfs_top_down(g, 0);
  r.parent[3] = kNoParent;
  r.depth[3] = kUnreachedDepth;
  std::string reason;
  EXPECT_FALSE(validate_bfs(g, r, &reason));
  EXPECT_FALSE(reason.empty());
}

TEST(BfsValidate, DetectsInconsistentReachability) {
  const CsrGraph g = path4();
  BfsResult r = bfs_top_down(g, 0);
  r.depth[2] = kUnreachedDepth;  // parent still set
  EXPECT_FALSE(validate_bfs(g, r));
}

TEST(BfsValidate, DetectsWrongSourceDepth) {
  const CsrGraph g = path4();
  BfsResult r = bfs_top_down(g, 0);
  r.depth[0] = 1;
  EXPECT_FALSE(validate_bfs(g, r));
}

TEST(BfsValidate, AcceptsCorrectResult) {
  const CsrGraph g = path4();
  const BfsResult r = bfs_top_down(g, 1);
  std::string reason;
  EXPECT_TRUE(validate_bfs(g, r, &reason)) << reason;
  EXPECT_TRUE(reason.empty());
}

}  // namespace
}  // namespace gmd::graph
