#include "gmd/graph/edge_list.hpp"

#include <gtest/gtest.h>

namespace gmd::graph {
namespace {

TEST(EdgeList, RemoveSelfLoops) {
  EdgeList list;
  list.num_vertices = 4;
  list.edges = {{0, 0}, {0, 1}, {2, 2}, {1, 2}};
  const auto removed = remove_self_loops_and_duplicates(list);
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(list.num_edges(), 2u);
  for (const auto& e : list.edges) EXPECT_NE(e.src, e.dst);
}

TEST(EdgeList, RemoveDuplicatesKeepsFirstWeight) {
  EdgeList list;
  list.num_vertices = 3;
  list.edges = {{0, 1, 5.0}, {0, 1, 7.0}, {1, 2, 1.0}};
  const auto removed = remove_self_loops_and_duplicates(list);
  EXPECT_EQ(removed, 1u);
  ASSERT_EQ(list.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(list.edges[0].weight, 5.0);
}

TEST(EdgeList, RemoveOnCleanListIsNoop) {
  EdgeList list;
  list.num_vertices = 3;
  list.edges = {{0, 1}, {1, 2}, {2, 0}};
  EXPECT_EQ(remove_self_loops_and_duplicates(list), 0u);
  EXPECT_EQ(list.num_edges(), 3u);
}

TEST(EdgeList, SymmetrizeAddsReverseEdges) {
  EdgeList list;
  list.num_vertices = 3;
  list.edges = {{0, 1, 2.0}, {1, 2, 3.0}};
  symmetrize(list);
  ASSERT_EQ(list.num_edges(), 4u);
  EXPECT_EQ(list.edges[2], (Edge{1, 0, 2.0}));
  EXPECT_EQ(list.edges[3], (Edge{2, 1, 3.0}));
}

TEST(EdgeList, SymmetrizeSkipsSelfLoops) {
  EdgeList list;
  list.num_vertices = 2;
  list.edges = {{0, 0}, {0, 1}};
  symmetrize(list);
  EXPECT_EQ(list.num_edges(), 3u);
}

TEST(EdgeList, SymmetrizeEmptyIsNoop) {
  EdgeList list;
  list.num_vertices = 5;
  symmetrize(list);
  EXPECT_EQ(list.num_edges(), 0u);
}

}  // namespace
}  // namespace gmd::graph
