/// Property-style invariants of the synthetic generators, swept across
/// models, sizes, and seeds.

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "gmd/graph/bfs.hpp"
#include "gmd/graph/generators.hpp"

namespace gmd::graph {
namespace {

enum class Model { kUniform, kRmat, kKronecker };

using ParamTuple = std::tuple<Model, unsigned /*scale*/, std::uint64_t>;

EdgeList generate(Model model, unsigned scale, std::uint64_t seed) {
  switch (model) {
    case Model::kUniform: {
      UniformRandomParams p;
      p.num_vertices = VertexId{1} << scale;
      p.edge_factor = 8;
      p.seed = seed;
      return generate_uniform_random(p);
    }
    case Model::kRmat: {
      RmatParams p;
      p.scale = scale;
      p.edge_factor = 8;
      p.seed = seed;
      return generate_rmat(p);
    }
    case Model::kKronecker: {
      KroneckerParams p;
      p.scale = scale;
      p.edge_factor = 8;
      p.seed = seed;
      return generate_graph500_kronecker(p);
    }
  }
  return {};
}

class GeneratorProperty : public testing::TestWithParam<ParamTuple> {};

TEST_P(GeneratorProperty, EdgesWithinDeclaredVertexRange) {
  const auto [model, scale, seed] = GetParam();
  const EdgeList list = generate(model, scale, seed);
  EXPECT_EQ(list.num_vertices, VertexId{1} << scale);
  for (const Edge& e : list.edges) {
    EXPECT_LT(e.src, list.num_vertices);
    EXPECT_LT(e.dst, list.num_vertices);
  }
}

TEST_P(GeneratorProperty, DeterministicPerSeed) {
  const auto [model, scale, seed] = GetParam();
  EXPECT_EQ(generate(model, scale, seed).edges,
            generate(model, scale, seed).edges);
  EXPECT_NE(generate(model, scale, seed).edges,
            generate(model, scale, seed + 1).edges);
}

TEST_P(GeneratorProperty, CsrBuildsAndDegreesSumToEdges) {
  const auto [model, scale, seed] = GetParam();
  EdgeList list = generate(model, scale, seed);
  remove_self_loops_and_duplicates(list);
  const CsrGraph g = CsrGraph::from_edge_list(list);
  std::uint64_t degree_sum = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) degree_sum += g.degree(v);
  EXPECT_EQ(degree_sum, g.num_edges());
  EXPECT_EQ(g.num_edges(), list.num_edges());
}

TEST_P(GeneratorProperty, SymmetrizedBfsValidates) {
  const auto [model, scale, seed] = GetParam();
  EdgeList list = generate(model, scale, seed);
  symmetrize(list);
  remove_self_loops_and_duplicates(list);
  const CsrGraph g = CsrGraph::from_edge_list(list);
  // Pick a connected source.
  VertexId source = 0;
  while (source < g.num_vertices() && g.degree(source) == 0) ++source;
  ASSERT_LT(source, g.num_vertices());
  const BfsResult result = bfs_top_down(g, source);
  std::string reason;
  EXPECT_TRUE(validate_bfs(g, result, &reason)) << reason;
}

INSTANTIATE_TEST_SUITE_P(
    ModelsSizesSeeds, GeneratorProperty,
    testing::Combine(testing::Values(Model::kUniform, Model::kRmat,
                                     Model::kKronecker),
                     testing::Values(6u, 9u), testing::Values(1ull, 13ull)),
    [](const testing::TestParamInfo<ParamTuple>& info) {
      std::string name;
      switch (std::get<0>(info.param)) {
        case Model::kUniform:
          name = "uniform";
          break;
        case Model::kRmat:
          name = "rmat";
          break;
        case Model::kKronecker:
          name = "kronecker";
          break;
      }
      name += "_s" + std::to_string(std::get<1>(info.param));
      name += "_seed" + std::to_string(std::get<2>(info.param));
      return name;
    });

}  // namespace
}  // namespace gmd::graph
