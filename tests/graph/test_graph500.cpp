#include "gmd/graph/graph500.hpp"

#include <gtest/gtest.h>

#include <set>

#include "gmd/common/error.hpp"
#include "gmd/graph/generators.hpp"

namespace gmd::graph {
namespace {

TEST(SampleBfsRoots, DistinctAndConnected) {
  KroneckerParams gen;
  gen.scale = 8;
  EdgeList list = generate_graph500_kronecker(gen);
  remove_self_loops_and_duplicates(list);
  const CsrGraph graph = CsrGraph::from_edge_list(list);

  const auto roots = sample_bfs_roots(graph, 16, 7);
  EXPECT_EQ(roots.size(), 16u);
  std::set<VertexId> unique(roots.begin(), roots.end());
  EXPECT_EQ(unique.size(), 16u);
  for (const VertexId root : roots) EXPECT_GT(graph.degree(root), 0u);
}

TEST(SampleBfsRoots, DeterministicPerSeed) {
  EdgeList list;
  list.num_vertices = 32;
  for (VertexId v = 0; v + 1 < 32; ++v) list.edges.push_back({v, v + 1});
  symmetrize(list);
  const CsrGraph graph = CsrGraph::from_edge_list(list);
  EXPECT_EQ(sample_bfs_roots(graph, 8, 1), sample_bfs_roots(graph, 8, 1));
  EXPECT_NE(sample_bfs_roots(graph, 8, 1), sample_bfs_roots(graph, 8, 2));
}

TEST(SampleBfsRoots, TooFewConnectedVerticesThrows) {
  EdgeList list;
  list.num_vertices = 10;
  list.edges = {{0, 1}};
  symmetrize(list);
  const CsrGraph graph = CsrGraph::from_edge_list(list);
  EXPECT_THROW(sample_bfs_roots(graph, 5, 1), Error);
}

TEST(Graph500, RunsAndValidatesAllSearches) {
  Graph500Params params;
  params.scale = 8;
  params.edge_factor = 8;
  params.num_roots = 8;
  const Graph500Result result = run_graph500(params);
  EXPECT_EQ(result.searches_run, 8u);
  EXPECT_EQ(result.validation_failures, 0u);
  EXPECT_EQ(result.num_vertices, 256u);
  EXPECT_GT(result.num_edges, 0u);
  EXPECT_EQ(result.teps.size(), 8u);
}

TEST(Graph500, TepsStatisticsAreConsistent) {
  Graph500Params params;
  params.scale = 7;
  params.num_roots = 6;
  const Graph500Result result = run_graph500(params);
  EXPECT_LE(result.min_teps, result.harmonic_mean_teps);
  EXPECT_LE(result.harmonic_mean_teps, result.mean_teps);  // HM <= AM
  EXPECT_LE(result.mean_teps, result.max_teps);
  EXPECT_GE(result.median_teps, result.min_teps);
  EXPECT_LE(result.median_teps, result.max_teps);
  EXPECT_GT(result.min_teps, 0.0);
}

TEST(Graph500, SummaryMentionsHeadlineNumbers) {
  Graph500Params params;
  params.scale = 6;
  params.num_roots = 4;
  const Graph500Result result = run_graph500(params);
  const std::string text = result.summary();
  EXPECT_NE(text.find("harmonic mean TEPS"), std::string::npos);
  EXPECT_NE(text.find("scale 6"), std::string::npos);
}

TEST(Graph500, RejectsZeroRoots) {
  Graph500Params params;
  params.num_roots = 0;
  EXPECT_THROW(run_graph500(params), Error);
}

}  // namespace
}  // namespace gmd::graph
