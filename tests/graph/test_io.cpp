#include "gmd/graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "gmd/common/error.hpp"
#include "gmd/graph/generators.hpp"

namespace gmd::graph {
namespace {

EdgeList sample_graph() {
  UniformRandomParams params;
  params.num_vertices = 64;
  params.edge_factor = 4;
  params.max_weight = 5.0;
  return generate_uniform_random(params);
}

TEST(GraphIo, TextRoundTrip) {
  const EdgeList original = sample_graph();
  std::stringstream ss;
  write_edge_list(ss, original);
  const EdgeList back = read_edge_list(ss);
  EXPECT_EQ(back.num_vertices, original.num_vertices);
  ASSERT_EQ(back.edges.size(), original.edges.size());
  for (std::size_t i = 0; i < back.edges.size(); ++i) {
    EXPECT_EQ(back.edges[i].src, original.edges[i].src);
    EXPECT_EQ(back.edges[i].dst, original.edges[i].dst);
    EXPECT_DOUBLE_EQ(back.edges[i].weight, original.edges[i].weight);
  }
}

TEST(GraphIo, ReadsDimacsFormat) {
  std::istringstream in(
      "c a comment\n"
      "p sp 4 3\n"
      "a 1 2 1.5\n"
      "a 2 3\n"
      "a 4 1 2.0\n");
  const EdgeList list = read_edge_list(in);
  EXPECT_EQ(list.num_vertices, 4u);
  ASSERT_EQ(list.edges.size(), 3u);
  EXPECT_EQ(list.edges[0], (Edge{0, 1, 1.5}));
  EXPECT_EQ(list.edges[1], (Edge{1, 2, 1.0}));  // default weight
  EXPECT_EQ(list.edges[2], (Edge{3, 0, 2.0}));
}

TEST(GraphIo, ReadsBareEdgeList) {
  std::istringstream in(
      "# zero-based pairs\n"
      "0 1\n"
      "1 2 3.5\n"
      "% another comment style\n"
      "5 0\n");
  const EdgeList list = read_edge_list(in);
  EXPECT_EQ(list.num_vertices, 6u);  // inferred from max id
  EXPECT_EQ(list.edges.size(), 3u);
  EXPECT_DOUBLE_EQ(list.edges[1].weight, 3.5);
}

TEST(GraphIo, RejectsMalformedInput) {
  std::istringstream missing_field("a 1\n");
  EXPECT_THROW(read_edge_list(missing_field), Error);
  std::istringstream bad_id("a x 2\n");
  EXPECT_THROW(read_edge_list(bad_id), Error);
  std::istringstream zero_based_dimacs("p sp 2 1\na 0 1\n");
  EXPECT_THROW(read_edge_list(zero_based_dimacs), Error);
  std::istringstream out_of_range("p sp 2 1\na 1 5\n");
  EXPECT_THROW(read_edge_list(out_of_range), Error);
}

TEST(GraphIo, EmptyInputGivesEmptyGraph) {
  std::istringstream in("c nothing here\n");
  const EdgeList list = read_edge_list(in);
  EXPECT_EQ(list.num_vertices, 0u);
  EXPECT_TRUE(list.edges.empty());
}

TEST(GraphIo, BinaryRoundTrip) {
  const EdgeList original = sample_graph();
  std::stringstream ss;
  write_edge_list_binary(ss, original);
  const EdgeList back = read_edge_list_binary(ss);
  EXPECT_EQ(back.num_vertices, original.num_vertices);
  EXPECT_EQ(back.edges, original.edges);
}

TEST(GraphIo, BinaryRejectsBadMagicAndTruncation) {
  std::stringstream bad("NOTAGRAPH________");
  EXPECT_THROW(read_edge_list_binary(bad), Error);

  const EdgeList original = sample_graph();
  std::stringstream ss;
  write_edge_list_binary(ss, original);
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() - 3));
  EXPECT_THROW(read_edge_list_binary(truncated), Error);
}

TEST(GraphIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/gmd_graph_test.txt";
  const EdgeList original = sample_graph();
  save_edge_list(path, original);
  const EdgeList back = load_edge_list(path);
  EXPECT_EQ(back.edges.size(), original.edges.size());
  EXPECT_THROW(load_edge_list("/nonexistent/g.txt"), Error);
}

}  // namespace
}  // namespace gmd::graph
