#include "gmd/graph/algorithms.hpp"

#include "gmd/graph/bfs.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "gmd/common/error.hpp"
#include "gmd/graph/generators.hpp"

namespace gmd::graph {
namespace {

CsrGraph undirected(EdgeList list, bool weighted = false) {
  symmetrize(list);
  remove_self_loops_and_duplicates(list);
  return CsrGraph::from_edge_list(list, weighted);
}

TEST(PageRank, ScoresSumToOne) {
  EdgeList list;
  list.num_vertices = 5;
  list.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}};
  const CsrGraph g = CsrGraph::from_edge_list(list);
  const auto result = pagerank(g);
  EXPECT_TRUE(result.converged);
  const double total =
      std::accumulate(result.scores.begin(), result.scores.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(PageRank, RingIsUniform) {
  EdgeList list;
  list.num_vertices = 4;
  list.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  const CsrGraph g = CsrGraph::from_edge_list(list);
  const auto result = pagerank(g);
  for (const double s : result.scores) EXPECT_NEAR(s, 0.25, 1e-6);
}

TEST(PageRank, HubGetsHigherScore) {
  // Star: everyone points at vertex 0.
  EdgeList list;
  list.num_vertices = 6;
  for (VertexId v = 1; v < 6; ++v) list.edges.push_back({v, 0});
  const CsrGraph g = CsrGraph::from_edge_list(list);
  const auto result = pagerank(g);
  for (VertexId v = 1; v < 6; ++v)
    EXPECT_GT(result.scores[0], result.scores[v]);
}

TEST(PageRank, HandlesDanglingVertices) {
  EdgeList list;
  list.num_vertices = 3;
  list.edges = {{0, 1}};  // vertices 1 and 2 dangle
  const CsrGraph g = CsrGraph::from_edge_list(list);
  const auto result = pagerank(g);
  const double total =
      std::accumulate(result.scores.begin(), result.scores.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(PageRank, RejectsBadDamping) {
  const CsrGraph g;
  PageRankParams p;
  p.damping = 1.5;
  EXPECT_THROW(pagerank(g, p), Error);
}

TEST(ConnectedComponents, TwoIslands) {
  EdgeList list;
  list.num_vertices = 6;
  list.edges = {{0, 1}, {1, 2}, {3, 4}};
  const CsrGraph g = undirected(std::move(list));
  const auto result = connected_components(g);
  EXPECT_EQ(result.num_components, 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(result.component[0], result.component[1]);
  EXPECT_EQ(result.component[1], result.component[2]);
  EXPECT_EQ(result.component[3], result.component[4]);
  EXPECT_NE(result.component[0], result.component[3]);
  EXPECT_NE(result.component[5], result.component[0]);
}

TEST(ConnectedComponents, FullyConnected) {
  EdgeList list;
  list.num_vertices = 8;
  for (VertexId v = 1; v < 8; ++v) list.edges.push_back({0, v});
  const CsrGraph g = undirected(std::move(list));
  const auto result = connected_components(g);
  EXPECT_EQ(result.num_components, 1u);
}

TEST(ConnectedComponents, EmptyGraph) {
  const CsrGraph g;
  const auto result = connected_components(g);
  EXPECT_EQ(result.num_components, 0u);
}

TEST(ConnectedComponents, AllIsolated) {
  EdgeList list;
  list.num_vertices = 4;
  const CsrGraph g = CsrGraph::from_edge_list(list);
  const auto result = connected_components(g);
  EXPECT_EQ(result.num_components, 4u);
}

TEST(Sssp, WeightedShortestPath) {
  // 0 -> 1 (1), 1 -> 2 (1), 0 -> 2 (5): best path to 2 costs 2.
  EdgeList list;
  list.num_vertices = 3;
  list.edges = {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 5.0}};
  const CsrGraph g = CsrGraph::from_edge_list(list, /*keep_weights=*/true);
  const auto result = sssp_dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(result.distance[0], 0.0);
  EXPECT_DOUBLE_EQ(result.distance[1], 1.0);
  EXPECT_DOUBLE_EQ(result.distance[2], 2.0);
  EXPECT_EQ(result.parent[2], 1u);
}

TEST(Sssp, UnweightedMatchesBfsDepth) {
  UniformRandomParams p;
  p.num_vertices = 256;
  p.edge_factor = 8;
  EdgeList list = generate_uniform_random(p);
  symmetrize(list);
  remove_self_loops_and_duplicates(list);
  const CsrGraph g = CsrGraph::from_edge_list(list);
  const auto sssp = sssp_dijkstra(g, 0);
  const auto bfs = bfs_top_down(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!bfs.reached(v)) {
      EXPECT_TRUE(std::isinf(sssp.distance[v]));
    } else {
      EXPECT_DOUBLE_EQ(sssp.distance[v], static_cast<double>(bfs.depth[v]));
    }
  }
}

TEST(Sssp, UnreachedIsInfinity) {
  EdgeList list;
  list.num_vertices = 3;
  list.edges = {{0, 1, 1.0}};
  const CsrGraph g = CsrGraph::from_edge_list(list, true);
  const auto result = sssp_dijkstra(g, 0);
  EXPECT_TRUE(std::isinf(result.distance[2]));
  EXPECT_EQ(result.parent[2], kNoParent);
}

TEST(Sssp, RejectsNegativeWeight) {
  EdgeList list;
  list.num_vertices = 2;
  list.edges = {{0, 1, -1.0}};
  const CsrGraph g = CsrGraph::from_edge_list(list, true);
  EXPECT_THROW(sssp_dijkstra(g, 0), Error);
}

TEST(Sssp, SourceOutOfRangeThrows) {
  const CsrGraph g;
  EXPECT_THROW(sssp_dijkstra(g, 0), Error);
}

TEST(Triangles, TriangleGraphCountsOne) {
  EdgeList list;
  list.num_vertices = 3;
  list.edges = {{0, 1}, {1, 2}, {0, 2}};
  const CsrGraph g = undirected(std::move(list));
  EXPECT_EQ(count_triangles(g), 1u);
}

TEST(Triangles, SquareHasNone) {
  EdgeList list;
  list.num_vertices = 4;
  list.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  const CsrGraph g = undirected(std::move(list));
  EXPECT_EQ(count_triangles(g), 0u);
}

TEST(Triangles, CompleteGraphK5) {
  EdgeList list;
  list.num_vertices = 5;
  for (VertexId u = 0; u < 5; ++u)
    for (VertexId v = u + 1; v < 5; ++v) list.edges.push_back({u, v});
  const CsrGraph g = undirected(std::move(list));
  EXPECT_EQ(count_triangles(g), 10u);  // C(5,3)
}

}  // namespace
}  // namespace gmd::graph
