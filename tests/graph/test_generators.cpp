#include "gmd/graph/generators.hpp"

#include <gtest/gtest.h>

#include <set>

#include "gmd/common/error.hpp"

namespace gmd::graph {
namespace {

TEST(UniformRandom, PaperScaleGraphShape) {
  UniformRandomParams p;
  p.num_vertices = 1024;
  p.edge_factor = 16;
  p.seed = 1;
  const EdgeList g = generate_uniform_random(p);
  EXPECT_EQ(g.num_vertices, 1024u);
  EXPECT_EQ(g.num_edges(), 1024u * 16u);
  for (const auto& e : g.edges) {
    EXPECT_LT(e.src, 1024u);
    EXPECT_LT(e.dst, 1024u);
    EXPECT_NE(e.src, e.dst);
  }
}

TEST(UniformRandom, Deterministic) {
  UniformRandomParams p;
  p.num_vertices = 128;
  p.edge_factor = 4;
  p.seed = 7;
  const EdgeList a = generate_uniform_random(p);
  const EdgeList b = generate_uniform_random(p);
  EXPECT_EQ(a.edges, b.edges);
  p.seed = 8;
  const EdgeList c = generate_uniform_random(p);
  EXPECT_NE(a.edges, c.edges);
}

TEST(UniformRandom, WeightsInRange) {
  UniformRandomParams p;
  p.num_vertices = 64;
  p.edge_factor = 4;
  p.max_weight = 10.0;
  const EdgeList g = generate_uniform_random(p);
  for (const auto& e : g.edges) {
    EXPECT_GE(e.weight, 1.0);
    EXPECT_LE(e.weight, 10.0);
  }
}

TEST(UniformRandom, RejectsDegenerateInput) {
  UniformRandomParams p;
  p.num_vertices = 1;
  EXPECT_THROW(generate_uniform_random(p), Error);
  p.num_vertices = 8;
  p.max_weight = 0.5;
  EXPECT_THROW(generate_uniform_random(p), Error);
}

TEST(Rmat, EdgeCountAndRange) {
  RmatParams p;
  p.scale = 8;
  p.edge_factor = 8;
  const EdgeList g = generate_rmat(p);
  EXPECT_EQ(g.num_vertices, 256u);
  EXPECT_EQ(g.num_edges(), 256u * 8u);
  for (const auto& e : g.edges) {
    EXPECT_LT(e.src, 256u);
    EXPECT_LT(e.dst, 256u);
  }
}

TEST(Rmat, SkewProducesHubVertices) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 16;
  p.a = 0.57;
  p.b = 0.19;
  p.c = 0.19;
  p.d = 0.05;
  const EdgeList g = generate_rmat(p);
  std::vector<std::size_t> out_degree(g.num_vertices, 0);
  for (const auto& e : g.edges) ++out_degree[e.src];
  const auto max_degree =
      *std::max_element(out_degree.begin(), out_degree.end());
  // A uniform graph would have max degree near 16; RMAT skew makes hubs.
  EXPECT_GT(max_degree, 64u);
}

TEST(Rmat, RejectsBadProbabilities) {
  RmatParams p;
  p.a = 0.9;
  p.b = 0.9;
  p.c = 0.1;
  p.d = 0.1;
  EXPECT_THROW(generate_rmat(p), Error);
  RmatParams q;
  q.scale = 0;
  EXPECT_THROW(generate_rmat(q), Error);
}

TEST(Graph500Kronecker, SymmetricOutput) {
  KroneckerParams p;
  p.scale = 7;
  p.edge_factor = 8;
  const EdgeList g = generate_graph500_kronecker(p);
  std::set<std::pair<VertexId, VertexId>> edges;
  for (const auto& e : g.edges) edges.insert({e.src, e.dst});
  for (const auto& [u, v] : edges) {
    EXPECT_TRUE(edges.count({v, u}) == 1 || u == v)
        << "missing reverse of (" << u << "," << v << ")";
  }
}

TEST(Graph500Kronecker, Deterministic) {
  KroneckerParams p;
  p.scale = 6;
  const EdgeList a = generate_graph500_kronecker(p);
  const EdgeList b = generate_graph500_kronecker(p);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(ErdosRenyi, ProbabilityZeroAndOne) {
  ErdosRenyiParams p;
  p.num_vertices = 16;
  p.edge_probability = 0.0;
  EXPECT_EQ(generate_erdos_renyi(p).num_edges(), 0u);
  p.edge_probability = 1.0;
  EXPECT_EQ(generate_erdos_renyi(p).num_edges(), 16u * 15u);
}

TEST(ErdosRenyi, DensityNearExpectation) {
  ErdosRenyiParams p;
  p.num_vertices = 100;
  p.edge_probability = 0.2;
  const EdgeList g = generate_erdos_renyi(p);
  const double expected = 100.0 * 99.0 * 0.2;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.15);
}

TEST(ErdosRenyi, RejectsBadProbability) {
  ErdosRenyiParams p;
  p.edge_probability = 1.5;
  EXPECT_THROW(generate_erdos_renyi(p), Error);
}

}  // namespace
}  // namespace gmd::graph
