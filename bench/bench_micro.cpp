/// \file bench_micro.cpp
/// Component microbenchmarks (google-benchmark): graph kernels, the
/// CPU-trace generator, the memory simulator's event throughput, the
/// parallel trace converter, and ML fit/predict costs.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <fstream>

#include "gmd/common/rng.hpp"
#include "gmd/cpusim/workloads.hpp"
#include "gmd/dse/sweep.hpp"
#include "gmd/graph/algorithms.hpp"
#include "gmd/graph/bfs.hpp"
#include "gmd/graph/generators.hpp"
#include "gmd/memsim/memory_system.hpp"
#include "gmd/memsim/sampled.hpp"
#include "gmd/ml/regressor.hpp"
#include "gmd/trace/converter.hpp"
#include "gmd/trace/formats.hpp"

namespace {

using namespace gmd;

graph::CsrGraph make_graph(graph::VertexId vertices) {
  graph::UniformRandomParams params;
  params.num_vertices = vertices;
  params.edge_factor = 16;
  graph::EdgeList list = graph::generate_uniform_random(params);
  graph::symmetrize(list);
  graph::remove_self_loops_and_duplicates(list);
  return graph::CsrGraph::from_edge_list(list);
}

std::vector<cpusim::MemoryEvent> make_trace(graph::VertexId vertices) {
  const auto g = make_graph(vertices);
  cpusim::VectorSink sink;
  cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
  cpusim::BfsWorkload(g, 0).run(cpu);
  return sink.take();
}

void BM_GraphGeneration(benchmark::State& state) {
  const auto vertices = static_cast<graph::VertexId>(state.range(0));
  for (auto _ : state) {
    graph::UniformRandomParams params;
    params.num_vertices = vertices;
    params.edge_factor = 16;
    benchmark::DoNotOptimize(graph::generate_uniform_random(params));
  }
  state.SetItemsProcessed(state.iterations() * vertices * 16);
}
BENCHMARK(BM_GraphGeneration)->Arg(1024)->Arg(8192);

void BM_BfsTopDown(benchmark::State& state) {
  const auto g = make_graph(static_cast<graph::VertexId>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::bfs_top_down(g, 0));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_BfsTopDown)->Arg(1024)->Arg(8192);

void BM_BfsDirectionOptimizing(benchmark::State& state) {
  const auto g = make_graph(static_cast<graph::VertexId>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::bfs_direction_optimizing(g, 0));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_BfsDirectionOptimizing)->Arg(1024)->Arg(8192);

void BM_PageRank(benchmark::State& state) {
  const auto g = make_graph(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::pagerank(g));
  }
}
BENCHMARK(BM_PageRank);

void BM_TraceGeneration(benchmark::State& state) {
  const auto g = make_graph(static_cast<graph::VertexId>(state.range(0)));
  for (auto _ : state) {
    cpusim::VectorSink sink;
    cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
    cpusim::BfsWorkload(g, 0).run(cpu);
    benchmark::DoNotOptimize(sink.events().size());
  }
}
BENCHMARK(BM_TraceGeneration)->Arg(1024);

void BM_MemorySimulation(benchmark::State& state) {
  const auto trace = make_trace(1024);
  const auto config = memsim::make_dram_config(2, 666, 3000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(memsim::MemorySystem::simulate(config, trace));
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_MemorySimulation);

void BM_MemorySimulationNvm(benchmark::State& state) {
  const auto trace = make_trace(1024);
  const auto config = memsim::make_nvm_config(2, 666, 3000, 67);
  for (auto _ : state) {
    benchmark::DoNotOptimize(memsim::MemorySystem::simulate(config, trace));
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_MemorySimulationNvm);

/// The sweep's hot loop: replaying a shared predecoded trace (split,
/// decode, and tick scaling already amortized across the config group).
void BM_MemorySimulationPredecoded(benchmark::State& state) {
  const auto trace = make_trace(1024);
  const auto config = memsim::make_dram_config(2, 666, 3000);
  const auto predecoded = memsim::PredecodedTrace::build(config, trace);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        memsim::MemorySystem::simulate(config, predecoded));
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_MemorySimulationPredecoded);

/// The original scan-and-erase scheduler, as a same-binary baseline for
/// the fast path (MemSimOptions::reference_mode).
void BM_MemorySimulationReference(benchmark::State& state) {
  const auto trace = make_trace(1024);
  auto config = memsim::make_dram_config(2, 666, 3000);
  config.sim.reference_mode = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(memsim::MemorySystem::simulate(config, trace));
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_MemorySimulationReference);

/// One-time cost of carving the cached per-channel partition that the
/// channel-parallel replay consumes (the predecode build itself is
/// excluded via pause/resume).
void BM_PredecodePartitionByChannel(benchmark::State& state) {
  const auto trace = make_trace(1024);
  const auto config = memsim::make_dram_config(4, 666, 3000);
  for (auto _ : state) {
    state.PauseTiming();
    const auto predecoded = memsim::PredecodedTrace::build(config, trace);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        &predecoded.partition_by_channel(config.channels));
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_PredecodePartitionByChannel);

/// Channel-parallel replay of a shared predecoded trace (partition
/// already cached).  Speedup needs spare cores: on a single-core host
/// this gauges the thread and merge overhead instead.
void BM_MemorySimulationParallel(benchmark::State& state) {
  const auto trace = make_trace(1024);
  auto config = memsim::make_dram_config(4, 666, 3000);
  config.sim.num_workers = static_cast<std::uint32_t>(state.range(0));
  const auto predecoded = memsim::PredecodedTrace::build(config, trace);
  predecoded.partition_by_channel(config.channels);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        memsim::MemorySystem::simulate(config, predecoded));
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_MemorySimulationParallel)->Arg(1)->Arg(2)->Arg(4);

/// Chunk-sampled estimate at 10% of 2000-event windows — the cheap
/// screening tier, which should scale with the sampled fraction.
void BM_MemorySimulationSampled(benchmark::State& state) {
  const auto trace = make_trace(1024);
  const auto config = memsim::make_dram_config(2, 666, 3000);
  memsim::SpanChunkedTrace chunked(trace, 2000);
  memsim::SampledSimOptions options;
  options.fraction = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        memsim::simulate_sampled(config, chunked, options));
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_MemorySimulationSampled);

void BM_TraceConverter(benchmark::State& state) {
  const auto trace = make_trace(1024);
  const auto dir = std::filesystem::temp_directory_path() / "gmd_bench_conv";
  std::filesystem::create_directories(dir);
  const std::string in_path = (dir / "in.txt").string();
  const std::string out_path = (dir / "out.txt").string();
  {
    std::ofstream out(in_path);
    trace::Gem5TraceWriter writer(out);
    for (const auto& event : trace) writer.on_event(event);
  }
  const auto bytes = std::filesystem::file_size(in_path);
  trace::ConvertOptions options;
  options.num_threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace::convert_gem5_to_nvmain(in_path, out_path, options));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_TraceConverter)->Arg(1)->Arg(4);

void BM_RegressorFit(benchmark::State& state, const char* name) {
  // DSE-shaped training data: 416 rows, 8 features.
  Rng rng(1);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 416; ++i) {
    std::vector<double> r(8);
    for (auto& v : r) v = rng.next_double();
    y.push_back(r[0] * r[1] + 0.3 * r[2]);
    rows.push_back(std::move(r));
  }
  const ml::Matrix x = ml::Matrix::from_rows(rows);
  for (auto _ : state) {
    const auto model = ml::make_regressor(name, 1);
    model->fit(x, y);
    benchmark::DoNotOptimize(model->predict_one(x.row(0)));
  }
}
BENCHMARK_CAPTURE(BM_RegressorFit, linear, "linear");
BENCHMARK_CAPTURE(BM_RegressorFit, svr, "svr");
BENCHMARK_CAPTURE(BM_RegressorFit, rf, "rf");
BENCHMARK_CAPTURE(BM_RegressorFit, gb, "gb");

void BM_SurrogatePredict(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 416; ++i) {
    std::vector<double> r(8);
    for (auto& v : r) v = rng.next_double();
    y.push_back(r[0] * r[1] + 0.3 * r[2]);
    rows.push_back(std::move(r));
  }
  const ml::Matrix x = ml::Matrix::from_rows(rows);
  const auto model = ml::make_regressor("svr", 1);
  model->fit(x, y);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->predict_one(x.row(i % 416)));
    ++i;
  }
}
BENCHMARK(BM_SurrogatePredict);

}  // namespace

BENCHMARK_MAIN();
