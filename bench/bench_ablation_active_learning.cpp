/// \file bench_ablation_active_learning.cpp
/// The paper's §V future-work experiment, realized: pool-based active
/// learning (GP maximum-variance acquisition) vs. random sampling of
/// configurations to simulate, on a fixed held-out set.  Each label is
/// one (in the paper: ~2-hour) simulator run, so label efficiency is
/// simulation time saved.

#include <cstdio>

#include "gmd/dse/active_learning.hpp"
#include "support.hpp"

int main() {
  using namespace gmd;

  const auto trace = bench::paper_trace();
  const auto all = bench::paper_sweep(trace);

  // 75/25 pool/holdout split by stride (deterministic, kind-balanced).
  std::vector<dse::SweepRow> pool, holdout;
  for (std::size_t i = 0; i < all.size(); ++i) {
    (i % 4 == 0 ? holdout : pool).push_back(all[i]);
  }

  dse::ActiveLearningOptions options;
  options.initial_labels = 10;
  options.label_budget = 90;
  options.batch_size = 8;
  options.seed = 5;

  for (const std::string metric : {"power_w", "total_latency_cycles"}) {
    const auto active =
        dse::run_active_learning(pool, holdout, metric, options);
    const auto random =
        dse::run_random_sampling(pool, holdout, metric, options);
    std::printf("\n# metric: %s — holdout R2 vs simulation budget "
                "(pool=%zu, holdout=%zu)\n",
                metric.c_str(), pool.size(), holdout.size());
    std::printf("%8s %14s %14s\n", "labels", "active(GP-var)", "random");
    for (std::size_t i = 0; i < active.curve.size(); ++i) {
      std::printf("%8zu %14.4f %14.4f\n", active.curve[i].labels_used,
                  active.curve[i].r2_on_holdout,
                  i < random.curve.size() ? random.curve[i].r2_on_holdout
                                          : 0.0);
    }
    const double final_active = active.curve.back().r2_on_holdout;
    const double final_random = random.curve.back().r2_on_holdout;
    std::printf("# final: active %.4f vs random %.4f -> %s\n", final_active,
                final_random,
                final_active >= final_random - 0.02 ? "active >= random"
                                                    : "random wins here");
  }
  return 0;
}
