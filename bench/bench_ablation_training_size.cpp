/// \file bench_ablation_training_size.cpp
/// Ablation: how much labeled (simulated) data do the surrogates
/// actually need?  Sweeps the training fraction and reports held-out R²
/// per model family on the hardest metric (total latency) and an easy
/// one (power) — the justification for "small labeled training set" in
/// the paper's §I.

#include <cstdio>

#include "gmd/dse/surrogate.hpp"
#include "gmd/ml/metrics.hpp"
#include "support.hpp"

int main() {
  using namespace gmd;

  const auto trace = bench::paper_trace();
  const auto rows = bench::paper_sweep(trace);

  for (const std::string metric : {"power_w", "total_latency_cycles"}) {
    const dse::MetricDataset md = dse::build_metric_dataset(rows, metric);
    std::printf("\n# metric: %s — held-out R2 vs training fraction\n",
                metric.c_str());
    std::printf("%10s", "train%");
    for (const auto& model : ml::table1_model_names()) {
      std::printf(" %10s", model.c_str());
    }
    std::printf("\n");

    for (const double train_fraction : {0.1, 0.2, 0.4, 0.6, 0.8}) {
      // Hold out a fixed 20%; train on a nested subset of the rest.
      const auto [pool, test] = ml::train_test_split(md.data, 0.2, 7);
      const auto take = static_cast<std::size_t>(
          static_cast<double>(md.data.size()) * train_fraction);
      std::vector<std::size_t> subset;
      for (std::size_t i = 0; i < std::min(take, pool.size()); ++i) {
        subset.push_back(i);
      }
      const auto train_set = pool.subset(subset);

      std::printf("%9.0f%%", train_fraction * 100.0);
      for (const auto& model_name : ml::table1_model_names()) {
        const auto model = ml::make_regressor(model_name, 7);
        model->fit(train_set.X, train_set.y);
        const double r2 = ml::r2_score(test.y, model->predict(test.X));
        std::printf(" %10.4f", r2);
      }
      std::printf("\n");
    }
  }
  std::printf("\n# reading: R2 should rise with training data and plateau "
              "well below 80%% — the premise of surrogate-based DSE.\n");
  return 0;
}
