/// \file bench_ablation_cache.cpp
/// The paper ran gem5 with atomic CPU and *no cache configuration* and
/// names CPU/cache configuration as future work (§V).  This ablation
/// adds a set-associative cache in front of the trace and shows how
/// cache size changes what the memory system sees — and therefore
/// which memory configuration wins.

#include <cstdio>

#include "gmd/cpusim/workloads.hpp"
#include "gmd/dse/recommend.hpp"
#include "gmd/graph/generators.hpp"
#include "support.hpp"

namespace {

using namespace gmd;

std::vector<cpusim::MemoryEvent> traced_bfs(
    const graph::CsrGraph& graph,
    std::optional<cpusim::CacheConfig> cache) {
  cpusim::CpuModel model;
  model.cache = cache;
  cpusim::VectorSink sink;
  cpusim::AtomicCpu cpu(model, &sink);
  cpusim::BfsWorkload(graph, 0).run(cpu);
  return sink.take();
}

}  // namespace

int main() {
  graph::UniformRandomParams params;
  params.num_vertices = 1024;
  params.edge_factor = 16;
  graph::EdgeList list = graph::generate_uniform_random(params);
  graph::symmetrize(list);
  graph::remove_self_loops_and_duplicates(list);
  const auto graph = graph::CsrGraph::from_edge_list(list);

  const auto points = dse::reduced_design_space();
  std::printf("# Cache-filter ablation (BFS, 1024 vertices; %zu-point "
              "space)\n\n",
              points.size());
  std::printf("%-12s %10s %8s | %-26s %-26s\n", "cache", "events", "write%",
              "best power", "best total latency");

  struct Setup {
    const char* label;
    std::optional<cpusim::CacheConfig> cache;
  };
  const Setup setups[] = {
      {"none", std::nullopt},
      {"16KiB", cpusim::CacheConfig{16 * 1024, 64, 4}},
      {"64KiB", cpusim::CacheConfig{64 * 1024, 64, 4}},
      {"256KiB", cpusim::CacheConfig{256 * 1024, 64, 8}},
  };
  for (const Setup& setup : setups) {
    const auto trace = traced_bfs(graph, setup.cache);
    std::size_t writes = 0;
    for (const auto& event : trace) writes += event.is_write ? 1 : 0;
    const auto rows = dse::run_sweep(points, trace);
    const auto recs = dse::recommend_from_sweep(rows);
    std::printf("%-12s %10zu %7.1f%% | %-26s %-26s\n", setup.label,
                trace.size(),
                trace.empty()
                    ? 0.0
                    : 100.0 * static_cast<double>(writes) /
                          static_cast<double>(trace.size()),
                recs[0].best.id().c_str(), recs[3].best.id().c_str());
  }
  std::printf(
      "\n# reading: a cache absorbs re-references, shrinking the trace\n"
      "# and raising its write fraction (write-backs). Once the graph\n"
      "# fits in cache, the memory system sees almost nothing — the\n"
      "# regime where memory technology stops mattering.\n");
  return 0;
}
