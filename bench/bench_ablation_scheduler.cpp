/// \file bench_ablation_scheduler.cpp
/// Design-choice ablation for the memory controller itself: scheduling
/// policy (FCFS vs FR-FCFS) x page policy (open vs closed) on the
/// paper's BFS trace, per memory technology.  These are the controller
/// knobs NVMain exposes that the paper held fixed; the ablation shows
/// how much they matter relative to the swept parameters.

#include <cstdio>

#include "gmd/memsim/memory_system.hpp"
#include "support.hpp"

int main() {
  using namespace gmd;

  const auto trace = bench::paper_trace();
  std::printf("# Controller-policy ablation (BFS trace, %zu events; "
              "2 channels, 666 MHz controller, 3 GHz CPU)\n\n",
              trace.size());
  std::printf("%-6s %-8s %-10s | %10s %12s %10s %12s %10s\n", "tech",
              "sched", "page", "power(W)", "bw(MB/s)", "lat(cy)",
              "totlat(cy)", "rowhit%");

  for (const bool is_nvm : {false, true}) {
    for (const auto scheduling :
         {memsim::SchedulingPolicy::kFcfs, memsim::SchedulingPolicy::kFrFcfs}) {
      for (const auto page :
           {memsim::PagePolicy::kOpen, memsim::PagePolicy::kClosed}) {
        memsim::MemoryConfig config =
            is_nvm ? memsim::make_nvm_config(2, 666, 3000, 67)
                   : memsim::make_dram_config(2, 666, 3000);
        config.scheduling = scheduling;
        config.page_policy = page;
        const auto m = memsim::MemorySystem::simulate(config, trace);
        std::printf(
            "%-6s %-8s %-10s | %10.4f %12.1f %10.2f %12.1f %9.1f%%\n",
            is_nvm ? "nvm" : "dram",
            scheduling == memsim::SchedulingPolicy::kFcfs ? "fcfs" : "frfcfs",
            page == memsim::PagePolicy::kOpen ? "open" : "closed",
            m.avg_power_per_channel_w, m.avg_bandwidth_per_bank_mbs,
            m.avg_latency_cycles, m.avg_total_latency_cycles,
            m.row_hit_rate() * 100.0);
      }
    }
  }
  std::printf("\n# read-priority scheduling (write-drain watermark 24):\n");
  std::printf("%-6s %-8s %-10s | %10s %12s %10s %12s %10s\n", "tech",
              "sched", "readprio", "power(W)", "bw(MB/s)", "lat(cy)",
              "totlat(cy)", "rowhit%");
  for (const bool is_nvm : {false, true}) {
    for (const bool prioritize : {false, true}) {
      memsim::MemoryConfig config =
          is_nvm ? memsim::make_nvm_config(2, 666, 3000, 67)
                 : memsim::make_dram_config(2, 666, 3000);
      config.prioritize_reads = prioritize;
      const auto m = memsim::MemorySystem::simulate(config, trace);
      std::printf("%-6s %-8s %-10s | %10.4f %12.1f %10.2f %12.1f %9.1f%%\n",
                  is_nvm ? "nvm" : "dram", "frfcfs",
                  prioritize ? "on" : "off", m.avg_power_per_channel_w,
                  m.avg_bandwidth_per_bank_mbs, m.avg_latency_cycles,
                  m.avg_total_latency_cycles, m.row_hit_rate() * 100.0);
    }
  }

  std::printf(
      "\n# reading: FR-FCFS + open page wins on latency via row hits;\n"
      "# closed page trades latency for predictability. Read priority\n"
      "# pays off on write-heavy mixes (it lets reads jump slow NVM\n"
      "# writes) but on BFS's ~4%%-write trace it only disturbs row-hit\n"
      "# batching — controller features are workload-dependent, which\n"
      "# is itself a co-design conclusion. If the policy spread rivals\n"
      "# the DRAM-vs-NVM spread, the paper's fixed controller policy is\n"
      "# a material assumption.\n");
  return 0;
}
