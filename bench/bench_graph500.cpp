/// \file bench_graph500.cpp
/// Substrate-level benchmark: the Graph500 driver the paper could not
/// run inside gem5 (§III-D), swept over scales on the host.  Also
/// contrasts the top-down and direction-optimizing *traced* kernels —
/// the workload-side choice that changes what the memory system sees.

#include <cstdio>

#include "gmd/cpusim/workloads.hpp"
#include "gmd/graph/generators.hpp"
#include "gmd/graph/graph500.hpp"
#include "support.hpp"

int main() {
  using namespace gmd;

  std::printf("# Graph500 host benchmark (Kronecker, edge factor 16, 16 "
              "validated roots)\n\n");
  std::printf("%6s %10s %12s %14s %14s\n", "scale", "vertices", "edges",
              "harmonicTEPS", "medianTEPS");
  for (const unsigned scale : {8u, 10u, 12u, 14u}) {
    graph::Graph500Params params;
    params.scale = scale;
    params.num_roots = 16;
    const auto result = graph::run_graph500(params);
    std::printf("%6u %10zu %12zu %14.3e %14.3e\n", scale,
                result.num_vertices, result.num_edges,
                result.harmonic_mean_teps, result.median_teps);
    if (result.validation_failures != 0) {
      std::printf("# VALIDATION FAILURES: %u\n", result.validation_failures);
      return 1;
    }
  }

  std::printf("\n# traced kernel comparison (1024-vertex GTGraph graph):\n");
  std::printf("%-8s %12s %10s %10s\n", "kernel", "events", "reads",
              "writes");
  graph::UniformRandomParams gen;
  gen.num_vertices = 1024;
  gen.edge_factor = 16;
  graph::EdgeList list = graph::generate_uniform_random(gen);
  graph::symmetrize(list);
  graph::remove_self_loops_and_duplicates(list);
  const auto g = graph::CsrGraph::from_edge_list(list);
  for (const char* kernel : {"bfs", "dobfs"}) {
    cpusim::VectorSink sink;
    cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
    cpusim::make_workload(kernel, g, 0)->run(cpu);
    std::size_t writes = 0;
    for (const auto& event : sink.events()) writes += event.is_write;
    std::printf("%-8s %12zu %10zu %10zu\n", kernel, sink.events().size(),
                sink.events().size() - writes, writes);
  }
  std::printf("\n# reading: direction-optimizing BFS trades top-down's\n"
              "# random neighbor probing for sequential bottom-up sweeps,\n"
              "# shifting the traced access mix the memory sweep consumes.\n");
  return 0;
}
