/// \file bench_ml.cpp
/// Surrogate-training gauge: times random-forest and gradient-boosting
/// fits with the shared presorted workspace engine against the
/// reference per-node-sort engine, batch inference against per-row
/// predict_one, and parallel grid search against the serial path, then
/// prints the numbers as JSON (redirect to BENCH_ml.json to record a
/// run).  Pass --quick for a seconds-scale smoke run (same JSON shape,
/// smaller dataset, single repetition).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "gmd/common/rng.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/ml/forest.hpp"
#include "gmd/ml/gbt.hpp"
#include "gmd/ml/model_selection.hpp"
#include "support.hpp"

namespace {

using namespace gmd;

struct BenchData {
  ml::Matrix x;
  std::vector<double> y;
};

/// The 416-configuration paper design space with a deterministic
/// nonlinear response over the numeric feature encoding — the exact
/// matrix shape SurrogateSuite trains on.
BenchData paper_data() {
  BenchData data;
  std::vector<std::vector<double>> rows;
  for (const dse::DesignPoint& point : dse::paper_design_space()) {
    std::vector<double> f = point.features();
    double response = 0.0;
    for (std::size_t c = 0; c < f.size(); ++c) {
      response += std::sin(f[c] * 0.001 + static_cast<double>(c)) +
                  0.3 * f[c] * f[(c + 1) % f.size()] * 1e-6;
    }
    data.y.push_back(response);
    rows.push_back(std::move(f));
  }
  data.x = ml::Matrix::from_rows(rows);
  return data;
}

/// Mixed continuous/grid features like real sweep matrices, scaled to
/// the row count where workspace reuse pays off.
BenchData synthetic_data(std::size_t n) {
  Rng rng(29);
  std::vector<std::vector<double>> rows;
  BenchData data;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.next_double();
    const double b = rng.next_double() * 10.0;
    const double c = static_cast<double>(rng.next_below(8));
    const double d = static_cast<double>(rng.next_below(4)) * 100.0;
    const double e = rng.next_double() - 0.5;
    const double f = static_cast<double>(rng.next_below(16)) * 0.25;
    rows.push_back({a, b, c, d, e, f});
    data.y.push_back(std::sin(5.0 * a) + 0.2 * b + 0.5 * c * c -
                     0.001 * d + 2.0 * e * f + 0.05 * rng.next_normal());
  }
  data.x = ml::Matrix::from_rows(rows);
  return data;
}

/// Best-of-`reps` wall time of `body` (the usual minimum-of-repeats
/// gauge; cold-cache outliers don't inflate the recorded number).
template <typename F>
double best_seconds(std::size_t reps, F&& body) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const bench::Stopwatch watch;
    body();
    best = std::min(best, watch.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::size_t synthetic_rows = quick ? 1500 : 12000;
  const std::size_t fit_reps = quick ? 1 : 3;
  const std::size_t predict_reps = quick ? 2 : 10;
  const std::size_t threads = std::max(1u, std::thread::hardware_concurrency());

  const BenchData paper = paper_data();
  const BenchData big = synthetic_data(synthetic_rows);
  double checksum = 0.0;

  // --- Forest fit: reference engine vs shared-workspace engine -------
  ml::ForestParams forest;
  forest.num_trees = 24;
  forest.max_depth = 12;
  forest.seed = 7;
  const double forest_reference = best_seconds(fit_reps, [&] {
    ml::ForestParams params = forest;
    params.reference_mode = true;
    ml::RandomForest model(params);
    model.fit(big.x, big.y);
    checksum += model.predict_one(big.x.row(0));
  });
  const double forest_workspace = best_seconds(fit_reps, [&] {
    ml::RandomForest model(forest);
    model.fit(big.x, big.y);
    checksum += model.predict_one(big.x.row(0));
  });
  const double forest_histogram = best_seconds(fit_reps, [&] {
    ml::ForestParams params = forest;
    params.split_mode = ml::TreeParams::SplitMode::kHistogram;
    params.max_bins = 64;
    ml::RandomForest model(params);
    model.fit(big.x, big.y);
    checksum += model.predict_one(big.x.row(0));
  });

  // --- GBT fit: reference engine vs workspace + parallel splits ------
  ml::GbtParams gbt;
  gbt.num_stages = quick ? 40 : 150;
  gbt.seed = 11;
  const double gbt_reference = best_seconds(fit_reps, [&] {
    ml::GbtParams params = gbt;
    params.reference_mode = true;
    ml::GradientBoosting model(params);
    model.fit(big.x, big.y);
    checksum += model.predict_one(big.x.row(0));
  });
  const double gbt_workspace = best_seconds(fit_reps, [&] {
    ml::GradientBoosting model(gbt);
    model.fit(big.x, big.y);
    checksum += model.predict_one(big.x.row(0));
  });

  // --- Batch inference vs per-row virtual dispatch -------------------
  // The forest (the paper's primary surrogate and recommend.cpp's
  // default) is the headline: per-row traversal of two dozen deep
  // trees misses cache constantly, while the batch path keeps one
  // compact plan hot per full-range pass.  GBT's shallow default
  // stages are already cache-friendly per row, so its ratio is lower.
  ml::GradientBoosting gbt_predictor(ml::GbtParams{});
  gbt_predictor.fit(big.x, big.y);
  const double gbt_predict_per_row = best_seconds(predict_reps, [&] {
    double sum = 0.0;
    for (std::size_t r = 0; r < big.x.rows(); ++r) {
      sum += gbt_predictor.predict_one(big.x.row(r));
    }
    checksum += sum;
  });
  const double gbt_predict_batch = best_seconds(predict_reps, [&] {
    const std::vector<double> out = gbt_predictor.predict(big.x);
    checksum += out.back();
  });
  ml::RandomForest predictor(forest);
  predictor.fit(big.x, big.y);
  const double predict_per_row = best_seconds(predict_reps, [&] {
    double sum = 0.0;
    for (std::size_t r = 0; r < big.x.rows(); ++r) {
      sum += predictor.predict_one(big.x.row(r));
    }
    checksum += sum;
  });
  const double predict_batch = best_seconds(predict_reps, [&] {
    const std::vector<double> out = predictor.predict(big.x);
    checksum += out.back();
  });

  // --- Parallel model selection on the paper-scale dataset -----------
  ml::Dataset grid_data;
  grid_data.X = paper.x;
  grid_data.y = paper.y;
  grid_data.feature_names.assign(paper.x.cols(), "f");
  grid_data.target_name = "response";
  const std::vector<double> cs{1.0, 10.0, 100.0};
  const std::vector<double> gammas{0.25, 1.0};
  const std::vector<double> epsilons{0.01, 0.1};
  ml::CvOptions serial;
  serial.num_threads = 1;
  const double grid_serial = best_seconds(fit_reps, [&] {
    const auto result =
        ml::grid_search_svr(grid_data, cs, gammas, epsilons, serial);
    checksum += result.best().scores.mean_mse();
  });
  ml::CvOptions parallel;
  parallel.num_threads = threads;
  const double grid_parallel = best_seconds(fit_reps, [&] {
    const auto result =
        ml::grid_search_svr(grid_data, cs, gammas, epsilons, parallel);
    checksum += result.best().scores.mean_mse();
  });

  const double rows = static_cast<double>(big.x.rows());
  std::printf("{\n");
  std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
  std::printf("  \"threads\": %zu,\n", threads);
  std::printf("  \"paper_rows\": %zu,\n", paper.x.rows());
  std::printf("  \"synthetic_rows\": %zu,\n", big.x.rows());
  std::printf("  \"forest_fit_reference_seconds\": %.3f,\n", forest_reference);
  std::printf("  \"forest_fit_workspace_seconds\": %.3f,\n", forest_workspace);
  std::printf("  \"forest_fit_histogram_seconds\": %.3f,\n", forest_histogram);
  std::printf("  \"forest_fit_speedup\": %.2f,\n",
              forest_reference / forest_workspace);
  std::printf("  \"forest_fit_histogram_speedup\": %.2f,\n",
              forest_reference / forest_histogram);
  std::printf("  \"gbt_fit_reference_seconds\": %.3f,\n", gbt_reference);
  std::printf("  \"gbt_fit_workspace_seconds\": %.3f,\n", gbt_workspace);
  std::printf("  \"gbt_fit_speedup\": %.2f,\n", gbt_reference / gbt_workspace);
  std::printf("  \"forest_predict_one_rows_per_second\": %.0f,\n",
              rows / predict_per_row);
  std::printf("  \"forest_predict_batch_rows_per_second\": %.0f,\n",
              rows / predict_batch);
  std::printf("  \"batch_predict_speedup\": %.2f,\n",
              predict_per_row / predict_batch);
  std::printf("  \"gbt_predict_one_rows_per_second\": %.0f,\n",
              rows / gbt_predict_per_row);
  std::printf("  \"gbt_predict_batch_rows_per_second\": %.0f,\n",
              rows / gbt_predict_batch);
  std::printf("  \"gbt_batch_predict_speedup\": %.2f,\n",
              gbt_predict_per_row / gbt_predict_batch);
  std::printf("  \"grid_search_serial_seconds\": %.3f,\n", grid_serial);
  std::printf("  \"grid_search_parallel_seconds\": %.3f,\n", grid_parallel);
  std::printf("  \"grid_search_speedup\": %.2f,\n",
              grid_serial / grid_parallel);
  std::printf("  \"checksum\": %.6g\n", checksum);
  std::printf("}\n");
  return 0;
}
