/// \file bench_ablation_algorithms.cpp
/// The paper's headline future-work question (§V): "how does the type
/// of graph algorithm influence the choice of good parameters for the
/// memory architectures?"  Runs BFS, PageRank, connected components,
/// and SSSP through the same workflow and compares workload character
/// and per-metric optimal configurations.

#include <cstdio>

#include "gmd/dse/recommend.hpp"
#include "gmd/trace/stats.hpp"
#include "support.hpp"

int main() {
  using namespace gmd;

  const auto points = dse::reduced_design_space();

  std::printf("# Workload character and per-metric optima (graph: 1024 "
              "vertices, edge factor 16; %zu-point space)\n\n",
              points.size());
  std::printf("%-10s %10s %8s %10s | %-26s %-26s %-26s\n", "workload",
              "events", "read%", "footprint", "best power", "best bandwidth",
              "best total latency");

  for (const std::string workload :
       {"bfs", "dobfs", "pagerank", "cc", "sssp", "triangles"}) {
    const auto trace = bench::paper_trace(1024, workload);
    const auto stats = trace::compute_stats(trace);
    const auto rows = dse::run_sweep(points, trace);
    const auto recs = dse::recommend_from_sweep(rows);
    std::printf("%-10s %10zu %7.1f%% %9.0fK | %-26s %-26s %-26s\n",
                workload.c_str(), static_cast<std::size_t>(stats.events),
                stats.read_fraction() * 100.0,
                static_cast<double>(stats.footprint_bytes()) / 1024.0,
                recs[0].best.id().c_str(), recs[1].best.id().c_str(),
                recs[3].best.id().c_str());
  }

  std::printf("\n# reading: read-dominated traversal kernels (BFS, CC) and "
              "write-heavier iterative kernels (PageRank) can prefer\n"
              "# different technologies; identical optima across kernels "
              "would mean workload-aware co-design is unnecessary.\n");
  return 0;
}
