/// \file bench_workflow_end2end.cpp
/// Figure 1 as an executable: the full co-design pipeline with the
/// file-based trace round-trip (gem5-format trace -> parallel converter
/// -> NVMain-format trace), timed stage by stage.

#include <cstdio>
#include <filesystem>

#include "gmd/dse/workflow.hpp"
#include "support.hpp"

int main() {
  using namespace gmd;

  const auto tmp =
      std::filesystem::temp_directory_path() / "gmd_bench_workflow";
  std::filesystem::create_directories(tmp);

  dse::WorkflowConfig config;
  config.graph_vertices = 1024;
  config.edge_factor = 16;
  config.trace_dir = tmp.string();

  bench::Stopwatch watch;
  const dse::WorkflowResult result = dse::run_workflow(config);
  const double total = watch.seconds();

  std::printf("%s\n", result.report().c_str());
  std::printf("# end-to-end wall time (incl. file round-trip): %.2f s\n",
              total);
  const auto gem5_bytes =
      std::filesystem::file_size(tmp / "gem5_trace.txt");
  const auto nvmain_bytes =
      std::filesystem::file_size(tmp / "nvmain_trace.txt");
  std::printf("# trace files: gem5 %.1f MB -> nvmain %.1f MB\n",
              static_cast<double>(gem5_bytes) / 1e6,
              static_cast<double>(nvmain_bytes) / 1e6);
  return 0;
}
