/// \file bench_recommendations.cpp
/// Reproduces the §IV-B recommendation list: per-metric best memory
/// configurations, from the simulated sweep and — as the ML-based DSE
/// promises — from the SVR surrogate alone, with agreement reported.

#include <cstdio>

#include "gmd/dse/recommend.hpp"
#include "support.hpp"

int main() {
  using namespace gmd;

  const auto trace = bench::paper_trace();
  const auto rows = bench::paper_sweep(trace);

  const auto direct = dse::recommend_from_sweep(rows);
  std::printf("# Recommendations from simulation (ground truth):\n%s\n",
              dse::format_recommendations(direct).c_str());

  std::vector<dse::DesignPoint> candidates;
  candidates.reserve(rows.size());
  for (const auto& row : rows) candidates.push_back(row.point);
  const auto surrogate =
      dse::recommend_from_surrogate(rows, candidates, "svr");
  std::printf("# Recommendations from the SVR surrogate (no further "
              "simulation):\n%s\n",
              dse::format_recommendations(surrogate).c_str());

  std::printf("# agreement (surrogate pick vs simulated optimum):\n");
  for (std::size_t i = 0; i < direct.size(); ++i) {
    const bool same_kind = direct[i].best.kind == surrogate[i].best.kind;
    const bool same_point = direct[i].best == surrogate[i].best;
    std::printf("#  %-22s technology %-5s exact point %s\n",
                direct[i].metric.c_str(), same_kind ? "MATCH" : "DIFF",
                same_point ? "MATCH" : "DIFF");
  }

  std::printf("\n# paper shape checks (SS IV-B bullets):\n");
  std::printf("#  power optimum is NVM at 400 MHz controller:  %s\n",
              direct[0].best.kind == dse::MemoryKind::kNvm &&
                      direct[0].best.ctrl_freq_mhz == 400
                  ? "PASS"
                  : "FAIL");
  std::printf("#  bandwidth optimum is DRAM:                   %s\n",
              direct[1].best.kind == dse::MemoryKind::kDram ? "PASS"
                                                            : "FAIL");
  std::printf("#  total latency optimum is DRAM:               %s\n",
              direct[3].best.kind == dse::MemoryKind::kDram ? "PASS"
                                                            : "FAIL");
  return 0;
}
