/// \file bench_fig2_metric_table.cpp
/// Reproduces Figure 2: the summary table of memory performance
/// metrics.  Rows are (CPU freq, controller freq, channels); columns
/// are the six metrics, each reported for D(RAM), N(VM), and H(ybrid),
/// averaged over the tRCD variants of that cell — exactly how the
/// paper condenses its 416 runs into 32 rows.

#include <cstdio>
#include <map>
#include <tuple>

#include "support.hpp"

namespace {

using namespace gmd;
using dse::MemoryKind;

struct CellKey {
  std::uint32_t cpu, ctrl, channels;
  auto operator<=>(const CellKey&) const = default;
};

struct CellAccumulator {
  std::array<double, 6> sums{};
  std::size_t count = 0;
  void add(const std::vector<double>& values) {
    for (std::size_t i = 0; i < 6; ++i) sums[i] += values[i];
    ++count;
  }
  double mean(std::size_t i) const {
    return count ? sums[i] / static_cast<double>(count) : 0.0;
  }
};

}  // namespace

int main() {
  const auto trace = bench::paper_trace();
  bench::Stopwatch watch;
  const auto rows = bench::paper_sweep(trace);
  std::printf("# Figure 2 reproduction: %zu configurations simulated in "
              "%.1fs (trace: %zu events)\n",
              rows.size(), watch.seconds(), trace.size());

  std::map<CellKey, std::map<MemoryKind, CellAccumulator>> cells;
  for (const auto& row : rows) {
    const CellKey key{row.point.cpu_freq_mhz, row.point.ctrl_freq_mhz,
                      row.point.channels};
    cells[key][row.point.kind].add(row.metrics.metric_values());
  }

  std::printf(
      "#%7s %6s %3s | %-26s | %-29s | %-23s | %-26s | %-32s | %-32s\n",
      "CPUFreq", "CtlFrq", "nCh", "AvgPower(W) D/N/H",
      "AvgBandwidth(MB/s) D/N/H", "AvgLatency(cy) D/N/H",
      "AvgTotalLatency(cy) D/N/H", "AvgMemReads/ch D/N/H",
      "AvgMemWrites/ch D/N/H");
  for (const auto& [key, kinds] : cells) {
    const auto& d = kinds.at(MemoryKind::kDram);
    const auto& n = kinds.at(MemoryKind::kNvm);
    const auto& h = kinds.at(MemoryKind::kHybrid);
    std::printf("%8u %6u %3u |", key.cpu, key.ctrl, key.channels);
    std::printf(" %7.4f %7.4f %7.4f   |", d.mean(0), n.mean(0), h.mean(0));
    std::printf(" %8.2f %8.2f %8.2f    |", d.mean(1), n.mean(1), h.mean(1));
    std::printf(" %6.2f %6.2f %6.2f    |", d.mean(2), n.mean(2), h.mean(2));
    std::printf(" %7.2f %7.2f %7.2f   |", d.mean(3), n.mean(3), h.mean(3));
    std::printf(" %9.2e %9.2e %9.2e  |", d.mean(4), n.mean(4), h.mean(4));
    std::printf(" %9.2e %9.2e %9.2e\n", d.mean(5), n.mean(5), h.mean(5));
  }

  // Paper shape checks (§IV-B observations), verified on the spot.
  std::printf("\n# shape checks vs. the paper:\n");
  const CellKey low{2000, 400, 2};
  const CellKey high{2000, 1600, 2};
  const auto& low_cell = cells.at(low);
  const auto& high_cell = cells.at(high);
  std::printf("#  DRAM power > NVM power at 400 MHz:        %s\n",
              low_cell.at(MemoryKind::kDram).mean(0) >
                      low_cell.at(MemoryKind::kNvm).mean(0)
                  ? "PASS"
                  : "FAIL");
  std::printf("#  NVM power rises 400 -> 1600 MHz:          %s\n",
              high_cell.at(MemoryKind::kNvm).mean(0) >
                      low_cell.at(MemoryKind::kNvm).mean(0)
                  ? "PASS"
                  : "FAIL");
  std::printf("#  bandwidth rises with controller clock:    %s\n",
              high_cell.at(MemoryKind::kDram).mean(1) >
                      low_cell.at(MemoryKind::kDram).mean(1)
                  ? "PASS"
                  : "FAIL");
  const CellKey four{2000, 400, 4};
  std::printf("#  reads/channel halve with 4 channels:      %s\n",
              std::abs(cells.at(four).at(MemoryKind::kDram).mean(4) * 2.0 -
                       low_cell.at(MemoryKind::kDram).mean(4)) <
                      low_cell.at(MemoryKind::kDram).mean(4) * 0.01
                  ? "PASS"
                  : "FAIL");
  std::printf("#  DRAM total latency < NVM total latency:   %s\n",
              low_cell.at(MemoryKind::kDram).mean(3) <
                      low_cell.at(MemoryKind::kNvm).mean(3)
                  ? "PASS"
                  : "FAIL");
  return 0;
}
