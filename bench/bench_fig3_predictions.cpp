/// \file bench_fig3_predictions.cpp
/// Reproduces Figure 3: for each of the six memory performance metrics,
/// the per-test-configuration series of ground truth vs. SVM, RF, and
/// GB predictions (plus the linear baseline).  The paper plots these as
/// six scatter panels; this bench prints the same series as columns so
/// any plotting tool can regenerate the figure.

#include <cstdio>

#include "gmd/dse/surrogate.hpp"
#include "support.hpp"

int main() {
  using namespace gmd;

  const auto trace = bench::paper_trace();
  const auto rows = bench::paper_sweep(trace);
  const auto suite = dse::SurrogateSuite::train(rows);

  std::printf("# Figure 3 reproduction: test-set prediction series per "
              "metric (min-max scaled units, as plotted in the paper)\n");
  for (const auto& series : suite.series()) {
    std::printf("\n## metric: %s (n_test=%zu)\n", series.metric.c_str(),
                series.truth.size());
    std::printf("%6s %12s", "index", "truth");
    for (const auto& [model, _] : series.predictions) {
      std::printf(" %12s", model.c_str());
    }
    std::printf("\n");
    for (std::size_t i = 0; i < series.truth.size(); ++i) {
      std::printf("%6zu %12.6f", i, series.truth[i]);
      for (const auto& [model, predictions] : series.predictions) {
        (void)model;
        std::printf(" %12.6f", predictions[i]);
      }
      std::printf("\n");
    }
  }
  return 0;
}
