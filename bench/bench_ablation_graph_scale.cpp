/// \file bench_ablation_graph_scale.cpp
/// The paper's other future-work axis (§V): "how does the graph size
/// influence the choice of good parameters?"  Sweeps the graph size
/// around the paper's 1,024 vertices and tracks how the six metrics
/// and the per-metric winners move.

#include <cstdio>

#include "gmd/dse/recommend.hpp"
#include "support.hpp"

int main() {
  using namespace gmd;

  const auto points = dse::reduced_design_space();
  std::printf("# Metric means and winners vs graph size (edge factor 16, "
              "%zu-point space)\n\n",
              points.size());
  std::printf("%9s %10s | %9s %10s %9s %11s | %-24s %-24s\n", "vertices",
              "events", "power(W)", "bw(MB/s)", "lat(cy)", "totlat(cy)",
              "best power", "best total latency");

  for (const std::uint32_t vertices : {256u, 512u, 1024u, 2048u, 4096u}) {
    const auto trace = bench::paper_trace(vertices);
    const auto rows = dse::run_sweep(points, trace);

    double power = 0.0, bw = 0.0, lat = 0.0, total = 0.0;
    for (const auto& row : rows) {
      power += row.metrics.avg_power_per_channel_w;
      bw += row.metrics.avg_bandwidth_per_bank_mbs;
      lat += row.metrics.avg_latency_cycles;
      total += row.metrics.avg_total_latency_cycles;
    }
    const auto n = static_cast<double>(rows.size());
    const auto recs = dse::recommend_from_sweep(rows);
    std::printf("%9u %10zu | %9.4f %10.1f %9.2f %11.1f | %-24s %-24s\n",
                vertices, trace.size(), power / n, bw / n, lat / n,
                total / n, recs[0].best.id().c_str(),
                recs[3].best.id().c_str());
  }

  std::printf("\n# reading: larger graphs lengthen the trace and widen the "
              "footprint (more row misses), raising latency pressure;\n"
              "# stable winners across sizes mean the 1,024-vertex study "
              "generalizes — moving winners mean it does not.\n");
  return 0;
}
