/// \file bench_sensitivity.cpp
/// Main-effects sensitivity over the paper's 416-configuration sweep:
/// which design knob moves each metric, by how much, and toward which
/// level — the quantitative form of the paper's Figure-2 narrative
/// ("bandwidth grows with CPU frequency", "power depends on the
/// technology", ...).

#include <cstdio>

#include "gmd/dse/sensitivity.hpp"
#include "support.hpp"

int main() {
  using namespace gmd;

  const auto trace = bench::paper_trace();
  const auto rows = bench::paper_sweep(trace);
  std::printf("# Main-effects sensitivity over the %zu-point paper space\n",
              rows.size());

  for (const std::string& metric : dse::target_metric_names()) {
    const auto analysis = dse::analyze_sensitivity(rows, metric);
    std::printf("\n%s", analysis.summary().c_str());
  }

  std::printf("\n# paper shape checks:\n");
  const auto power = dse::analyze_sensitivity(rows, "power_w");
  std::printf("#  power's best technology level is NVM:      %s\n",
              [&] {
                for (const auto& e : power.effects) {
                  if (e.parameter == "kind") return e.best_level == "nvm";
                }
                return false;
              }()
                  ? "PASS"
                  : "FAIL");
  const auto reads = dse::analyze_sensitivity(rows, "reads_per_channel");
  std::printf("#  reads/channel dominated by channel count:  %s\n",
              reads.dominant().parameter == "channels" ? "PASS" : "FAIL");
  const auto bw = dse::analyze_sensitivity(rows, "bandwidth_mbs");
  std::printf("#  bandwidth prefers the fastest CPU clock:   %s\n",
              [&] {
                for (const auto& e : bw.effects) {
                  if (e.parameter == "cpu_freq_mhz")
                    return e.best_level == "6500";
                }
                return false;
              }()
                  ? "PASS"
                  : "FAIL");
  return 0;
}
