#pragma once

/// \file support.hpp
/// Shared setup for the experiment-reproduction benches: the paper's
/// workload trace (GTGraph random graph, 1024 vertices, edge factor 16,
/// Graph500 BFS from a random source) and its 416-configuration sweep.

#include <chrono>
#include <cstdio>
#include <vector>

#include "gmd/cpusim/memory_event.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/sweep.hpp"
#include "gmd/dse/workflow.hpp"

namespace gmd::bench {

inline std::vector<cpusim::MemoryEvent> paper_trace(
    std::uint32_t vertices = 1024, const std::string& workload = "bfs") {
  dse::WorkflowConfig config;
  config.graph_vertices = vertices;
  config.edge_factor = 16;
  config.workload = workload;
  config.seed = 1;
  return dse::generate_workload_trace(config);
}

inline std::vector<dse::SweepRow> paper_sweep(
    const std::vector<cpusim::MemoryEvent>& trace) {
  return dse::run_sweep(dse::paper_design_space(), trace);
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace gmd::bench
