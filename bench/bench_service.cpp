/// \file bench_service.cpp
/// Query-service gauge: runs gmd::service::Service in process over a
/// BFS trace store and a deployed surrogate and measures what a
/// resident daemon buys — cold vs cached simulate latency, p50/p99
/// under concurrent mixed load, result-cache hit rate, and 10k-config
/// batch predict throughput — then prints the numbers as JSON (redirect
/// to BENCH_service.json to record a run).
///
/// Usage: bench_service [vertices]   (default 512)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

#include "gmd/common/faultinject.hpp"
#include "gmd/cpusim/workloads.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/surrogate.hpp"
#include "gmd/dse/sweep.hpp"
#include "gmd/graph/generators.hpp"
#include "gmd/service/service.hpp"
#include "gmd/tracestore/writer.hpp"

namespace {

using namespace gmd;
using service::Json;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double percentile(std::vector<double> ms, double p) {
  if (ms.empty()) return 0.0;
  std::sort(ms.begin(), ms.end());
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(ms.size() - 1) / 100.0 + 0.5);
  return ms[std::min(index, ms.size() - 1)];
}

std::vector<cpusim::MemoryEvent> bfs_trace(std::uint32_t vertices) {
  graph::UniformRandomParams params;
  params.num_vertices = vertices;
  params.edge_factor = 16;
  graph::EdgeList list = graph::generate_uniform_random(params);
  graph::symmetrize(list);
  graph::remove_self_loops_and_duplicates(list);
  const auto g = graph::CsrGraph::from_edge_list(list);
  cpusim::VectorSink sink;
  cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
  cpusim::BfsWorkload(g, 0).run(cpu);
  return sink.take();
}

Json simulate_request(const dse::DesignPoint& point) {
  Json request;
  request["verb"] = "simulate";
  request["trace"] = "bfs";
  request["points"] = Json(Json::Array{service::design_point_to_json(point)});
  return request;
}

}  // namespace

int main(int argc, char** argv) {
  const auto vertices =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 512;

  const std::string dir =
      (std::filesystem::temp_directory_path() / "gmd_bench_service").string();
  std::filesystem::create_directories(dir);
  const std::string store_path = dir + "/workload.gmdt";
  const auto events = bfs_trace(vertices);
  tracestore::TraceStoreWriterOptions wopts;
  wopts.events_per_chunk = 4000;
  tracestore::write_trace_store(store_path, events, wopts);

  service::Service svc;
  svc.traces().register_store("bfs", store_path);
  {
    // Train the served surrogate on a local sweep of the reduced space.
    tracestore::TraceStoreReader store(store_path);
    const std::vector<dse::DesignPoint> space = dse::reduced_design_space();
    const std::vector<dse::SweepRow> rows = dse::run_sweep(space, store);
    svc.models().register_model(
        "bw", dse::SurrogateSuite::deploy(rows, "bandwidth_mbs", "gb"));
  }

  const std::vector<dse::DesignPoint> space = dse::paper_design_space();
  std::vector<dse::DesignPoint> sim_points;
  for (std::size_t i = 0; i < space.size(); i += 7) {
    sim_points.push_back(space[i]);
  }

  // --- cold vs cached simulate latency --------------------------------
  std::vector<double> cold_ms;
  for (const auto& point : sim_points) {
    const auto start = Clock::now();
    svc.handle(simulate_request(point).dump());
    cold_ms.push_back(ms_since(start));
  }
  std::vector<double> warm_ms;
  for (const auto& point : sim_points) {
    const auto start = Clock::now();
    svc.handle(simulate_request(point).dump());
    warm_ms.push_back(ms_since(start));
  }

  // --- concurrent mixed load ------------------------------------------
  const std::size_t num_threads = 8;
  const std::size_t per_thread = 32;
  std::mutex latency_mutex;
  std::vector<double> mixed_ms;
  std::vector<std::thread> clients;
  const auto mixed_start = Clock::now();
  for (std::size_t t = 0; t < num_threads; ++t) {
    clients.emplace_back([&, t] {
      std::vector<double> local;
      for (std::size_t k = 0; k < per_thread; ++k) {
        Json request;
        switch ((t + k) % 4) {
          case 0:
            request =
                simulate_request(sim_points[(t * per_thread + k) %
                                            sim_points.size()]);
            break;
          case 1: {
            request["verb"] = "predict";
            request["model"] = "bw";
            Json::Array pts;
            for (const auto& p : sim_points) {
              pts.push_back(service::design_point_to_json(p));
            }
            request["points"] = Json(std::move(pts));
            break;
          }
          case 2:
            request["verb"] = "recommend";
            request["metric"] = "bandwidth_mbs";
            request["model"] = "bw";
            break;
          default: request["verb"] = "stats"; break;
        }
        const auto start = Clock::now();
        svc.handle(request.dump());
        local.push_back(ms_since(start));
      }
      const std::lock_guard<std::mutex> lock(latency_mutex);
      mixed_ms.insert(mixed_ms.end(), local.begin(), local.end());
    });
  }
  for (auto& thread : clients) thread.join();
  const double mixed_wall_ms = ms_since(mixed_start);

  // --- 10k-config batch predict ---------------------------------------
  Json predict;
  predict["verb"] = "predict";
  predict["model"] = "bw";
  Json::Array pts;
  while (pts.size() < 10000) {
    pts.push_back(service::design_point_to_json(space[pts.size() % space.size()]));
  }
  const std::size_t predict_configs = pts.size();
  predict["points"] = Json(std::move(pts));
  const auto predict_start = Clock::now();
  svc.handle(predict.dump());
  const double predict_ms = ms_since(predict_start);

  const Json stats = Json::parse(svc.handle(R"({"verb":"stats"})"));
  const double hit_rate = stats.at("cache").at("hit_rate").as_number();
  svc.drain();

  // --- disarmed fault-point overhead ----------------------------------
  // Every service verb and I/O path now crosses GMD_FAULT_POINT sites;
  // this gauge proves the disarmed fast path (one relaxed atomic load)
  // is free at serving granularity.  Expect well under a nanosecond.
  double fault_point_ns = 0.0;
  {
    constexpr std::uint64_t kIters = 20'000'000;
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < kIters; ++i) {
      GMD_FAULT_POINT("bench.disarmed_site");
    }
    const double total_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - start).count();
    fault_point_ns = total_ns / static_cast<double>(kIters);
  }

  std::printf("{\n");
  std::printf("  \"trace_events\": %zu,\n", events.size());
  std::printf("  \"simulate_points\": %zu,\n", sim_points.size());
  std::printf("  \"cold_simulate_ms\": {\"p50\": %.4f, \"p99\": %.4f},\n",
              percentile(cold_ms, 50), percentile(cold_ms, 99));
  std::printf("  \"cached_simulate_ms\": {\"p50\": %.4f, \"p99\": %.4f},\n",
              percentile(warm_ms, 50), percentile(warm_ms, 99));
  std::printf("  \"mixed_load\": {\"threads\": %zu, \"requests\": %zu, "
              "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"wall_ms\": %.1f},\n",
              num_threads, num_threads * per_thread,
              percentile(mixed_ms, 50), percentile(mixed_ms, 99),
              mixed_wall_ms);
  std::printf("  \"predict_batch\": {\"configs\": %zu, \"ms\": %.3f, "
              "\"configs_per_second\": %.0f},\n",
              predict_configs, predict_ms,
              1000.0 * static_cast<double>(predict_configs) / predict_ms);
  std::printf("  \"fault_point_disarmed_ns\": %.4f,\n", fault_point_ns);
  std::printf("  \"cache_hit_rate\": %.4f\n", hit_rate);
  std::printf("}\n");
  std::filesystem::remove_all(dir);
  return 0;
}
