/// \file bench_ablation_migration.cpp
/// Hybrid-memory management ablation: the paper's hybrid uses a static
/// DRAM/NVM split; systems like NGraph (its related work) migrate hot
/// pages into DRAM.  This bench sweeps the migration threshold on the
/// BFS trace and reports what promotion buys — and costs.

#include <cstdio>

#include "gmd/memsim/hybrid.hpp"
#include "support.hpp"

int main() {
  using namespace gmd;

  const auto trace = bench::paper_trace();
  std::printf("# Hybrid hot-page migration ablation (BFS trace, %zu "
              "events; 2 channels, 666 MHz, dram_fraction 0.5)\n\n",
              trace.size());
  std::printf("%-12s %10s %10s %12s %12s %12s %12s\n", "threshold",
              "migrated", "power(W)", "bw(MB/s)", "lat(cy)", "totlat(cy)",
              "requests");

  for (const std::uint32_t threshold : {0u, 4u, 16u, 64u, 256u}) {
    memsim::HybridConfig config =
        memsim::make_hybrid_config(2, 666, 3000, 67);
    config.migration_threshold = threshold;
    memsim::HybridMemory memory(config);
    for (const auto& event : trace) memory.enqueue_event(event);
    const std::uint64_t migrated = memory.pages_migrated();
    const memsim::MemoryMetrics m = memory.finish();
    std::printf("%-12s %10llu %10.4f %12.1f %12.2f %12.1f %12llu\n",
                threshold == 0 ? "static" : std::to_string(threshold).c_str(),
                static_cast<unsigned long long>(migrated),
                m.avg_power_per_channel_w, m.avg_bandwidth_per_bank_mbs,
                m.avg_latency_cycles, m.avg_total_latency_cycles,
                static_cast<unsigned long long>(m.total_reads +
                                                m.total_writes));
  }

  std::printf(
      "\n# reading: aggressive thresholds promote the whole working set\n"
      "# (copy traffic inflates the request count and power); lazy\n"
      "# thresholds promote nothing. The sweet spot serves hot graph\n"
      "# structures from DRAM while cold pages stay in NVM — the\n"
      "# mechanism behind the hybrid systems the paper cites (NGraph).\n");
  return 0;
}
