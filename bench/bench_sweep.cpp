/// \file bench_sweep.cpp
/// Sweep-throughput gauge: times the memory simulator's event loop on
/// the default FR-FCFS/open-page DRAM config and the full 416-point
/// `run_sweep` over the paper's design space, then prints the numbers
/// as JSON (redirect to BENCH_sweep.json to record a run).

#include <chrono>
#include <cstdio>

#include "gmd/cpusim/workloads.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/sweep.hpp"
#include "gmd/graph/generators.hpp"
#include "gmd/memsim/memory_system.hpp"

namespace {

using namespace gmd;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<cpusim::MemoryEvent> make_trace() {
  graph::UniformRandomParams params;
  params.num_vertices = 1024;
  params.edge_factor = 16;
  graph::EdgeList list = graph::generate_uniform_random(params);
  graph::symmetrize(list);
  graph::remove_self_loops_and_duplicates(list);
  const auto g = graph::CsrGraph::from_edge_list(list);
  cpusim::VectorSink sink;
  cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
  cpusim::BfsWorkload(g, 0).run(cpu);
  return sink.take();
}

}  // namespace

int main() {
  const auto trace = make_trace();
  const auto config = memsim::make_dram_config(2, 666, 3000);

  // Single-config event throughput (the bench_micro BM_MemorySimulation
  // shape): repeat until ~2 s have elapsed.
  std::size_t runs = 0;
  std::uint64_t checksum = 0;
  const auto micro_start = Clock::now();
  double micro_seconds = 0.0;
  do {
    const auto m = memsim::MemorySystem::simulate(config, trace);
    checksum += m.total_reads + m.total_writes;
    ++runs;
    micro_seconds = seconds_since(micro_start);
  } while (micro_seconds < 2.0);
  const double events_per_second =
      static_cast<double>(trace.size()) * static_cast<double>(runs) /
      micro_seconds;

  // Full-space sweep wall-clock.
  const auto points = dse::paper_design_space();
  const auto sweep_start = Clock::now();
  const auto rows = dse::run_sweep(points, trace);
  const double sweep_seconds = seconds_since(sweep_start);

  std::printf("{\n");
  std::printf("  \"trace_events\": %zu,\n", trace.size());
  std::printf("  \"memsim_events_per_second\": %.0f,\n", events_per_second);
  std::printf("  \"sweep_points\": %zu,\n", rows.size());
  std::printf("  \"sweep_seconds\": %.3f,\n", sweep_seconds);
  std::printf("  \"checksum\": %llu\n",
              static_cast<unsigned long long>(checksum));
  std::printf("}\n");
  return 0;
}
