/// \file bench_sweep.cpp
/// Sweep-throughput gauge: times the memory simulator's event loop on
/// the default FR-FCFS/open-page DRAM config, the channel-parallel and
/// chunk-sampled speed tiers, and the full 416-point `run_sweep` over
/// the paper's design space, then prints the numbers as JSON (redirect
/// to BENCH_sweep.json to record a run).
///
/// Usage: bench_sweep [rmat_scale]
///
/// The parallel section replays a BFS trace over an R-MAT graph of
/// 2^rmat_scale vertices (default 14; the paper-scale figure uses 18,
/// which needs a few GB of RAM and a multi-core host to show speedup).

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "gmd/cpusim/workloads.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/sweep.hpp"
#include "gmd/graph/generators.hpp"
#include "gmd/memsim/memory_system.hpp"
#include "gmd/memsim/sampled.hpp"

namespace {

using namespace gmd;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<cpusim::MemoryEvent> bfs_events(const graph::CsrGraph& g) {
  cpusim::VectorSink sink;
  cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
  cpusim::BfsWorkload(g, 0).run(cpu);
  return sink.take();
}

std::vector<cpusim::MemoryEvent> make_trace() {
  graph::UniformRandomParams params;
  params.num_vertices = 1024;
  params.edge_factor = 16;
  graph::EdgeList list = graph::generate_uniform_random(params);
  graph::symmetrize(list);
  graph::remove_self_loops_and_duplicates(list);
  return bfs_events(graph::CsrGraph::from_edge_list(list));
}

std::vector<cpusim::MemoryEvent> make_rmat_trace(unsigned scale) {
  graph::RmatParams params;
  params.scale = scale;
  params.edge_factor = 16;
  graph::EdgeList list = graph::generate_rmat(params);
  graph::symmetrize(list);
  graph::remove_self_loops_and_duplicates(list);
  return bfs_events(graph::CsrGraph::from_edge_list(list));
}

/// Repeats `fn` until ~min_seconds have elapsed; returns events/second.
template <typename Fn>
double throughput(std::size_t events, double min_seconds, Fn&& fn) {
  std::size_t runs = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++runs;
    elapsed = seconds_since(start);
  } while (elapsed < min_seconds);
  return static_cast<double>(events) * static_cast<double>(runs) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned rmat_scale =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 14;
  const auto trace = make_trace();
  const auto config = memsim::make_dram_config(2, 666, 3000);

  // Single-config event throughput (the bench_micro BM_MemorySimulation
  // shape): repeat until ~2 s have elapsed.
  const double events_per_second = throughput(trace.size(), 2.0, [&] {
    const auto m = memsim::MemorySystem::simulate(config, trace);
    (void)m;
  });

  // Channel-parallel replay: BFS over an R-MAT graph, 4-channel DRAM,
  // shared predecoded trace with the per-channel partition prebuilt.
  const auto rmat_trace = make_rmat_trace(rmat_scale);
  auto parallel_config = memsim::make_dram_config(4, 666, 3000);
  const auto predecoded =
      memsim::PredecodedTrace::build(parallel_config, rmat_trace);
  predecoded.partition_by_channel(parallel_config.channels);
  double parallel_eps[3] = {0, 0, 0};
  const std::uint32_t worker_counts[3] = {1, 2, 4};
  for (int w = 0; w < 3; ++w) {
    parallel_config.sim.num_workers = worker_counts[w];
    parallel_eps[w] = throughput(rmat_trace.size(), 1.5, [&] {
      const auto m =
          memsim::MemorySystem::simulate(parallel_config, predecoded);
      (void)m;
    });
  }

  // Chunk-sampled estimate at 10% of 2000-event windows on the same
  // R-MAT trace (single 2-channel DRAM config).
  memsim::SpanChunkedTrace chunked(rmat_trace, 2000);
  memsim::SampledSimOptions sample_options;
  sample_options.fraction = 0.1;
  memsim::SampledMetrics sampled;
  const double sampled_eps = throughput(rmat_trace.size(), 1.5, [&] {
    sampled = memsim::simulate_sampled(config, chunked, sample_options);
  });
  const double exhaustive_eps = throughput(rmat_trace.size(), 1.5, [&] {
    const auto m = memsim::MemorySystem::simulate(config, rmat_trace);
    (void)m;
  });

  // Full-space sweep wall-clock: exhaustive serial, then chunk-sampled.
  const auto points = dse::paper_design_space();
  const auto sweep_start = Clock::now();
  const auto rows = dse::run_sweep(points, trace);
  const double sweep_seconds = seconds_since(sweep_start);

  dse::SweepOptions sampled_sweep;
  sampled_sweep.sample_fraction = 0.1;
  sampled_sweep.sampling_chunk_events = 2000;
  const auto sampled_start = Clock::now();
  const auto sampled_rows = dse::run_sweep(points, trace, sampled_sweep);
  const double sampled_sweep_seconds = seconds_since(sampled_start);

  std::printf("{\n");
  std::printf("  \"trace_events\": %zu,\n", trace.size());
  std::printf("  \"memsim_events_per_second\": %.0f,\n", events_per_second);
  std::printf("  \"parallel\": {\n");
  std::printf("    \"rmat_scale\": %u,\n", rmat_scale);
  std::printf("    \"rmat_trace_events\": %zu,\n", rmat_trace.size());
  std::printf("    \"events_per_second_workers1\": %.0f,\n", parallel_eps[0]);
  std::printf("    \"events_per_second_workers2\": %.0f,\n", parallel_eps[1]);
  std::printf("    \"events_per_second_workers4\": %.0f,\n", parallel_eps[2]);
  std::printf("    \"speedup_workers2\": %.2f,\n",
              parallel_eps[1] / parallel_eps[0]);
  std::printf("    \"speedup_workers4\": %.2f\n",
              parallel_eps[2] / parallel_eps[0]);
  std::printf("  },\n");
  std::printf("  \"sampled\": {\n");
  std::printf("    \"fraction\": %.2f,\n", sample_options.fraction);
  std::printf("    \"chunks_sampled\": %zu,\n", sampled.chunks_sampled);
  std::printf("    \"chunks_total\": %zu,\n", sampled.chunks_total);
  std::printf("    \"events_per_second\": %.0f,\n", sampled_eps);
  std::printf("    \"exhaustive_events_per_second\": %.0f,\n",
              exhaustive_eps);
  std::printf("    \"speedup_vs_exhaustive\": %.2f\n",
              sampled_eps / exhaustive_eps);
  std::printf("  },\n");
  std::printf("  \"sweep_points\": %zu,\n", rows.size());
  std::printf("  \"sweep_seconds\": %.3f,\n", sweep_seconds);
  std::printf("  \"sampled_sweep_points\": %zu,\n", sampled_rows.size());
  std::printf("  \"sampled_sweep_seconds\": %.3f\n", sampled_sweep_seconds);
  std::printf("}\n");
  return 0;
}
