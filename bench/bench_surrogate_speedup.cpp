/// \file bench_surrogate_speedup.cpp
/// Quantifies the paper's core motivation (§I/§II): a trained surrogate
/// answers "what will this configuration do?" orders of magnitude
/// faster than the cycle-level simulator.  (The paper's NVMain runs
/// took ~2 hours per configuration; both our simulator and surrogate
/// are faster in absolute terms, but the *ratio* is the claim.)

#include <cstdio>

#include "gmd/dse/surrogate.hpp"
#include "support.hpp"

int main() {
  using namespace gmd;

  const auto trace = bench::paper_trace();
  const auto points = dse::paper_design_space();

  // Simulator cost: full sweep, per-configuration average.
  bench::Stopwatch sim_watch;
  const auto rows = dse::run_sweep(points, trace);
  const double sim_total = sim_watch.seconds();
  const double sim_per_config = sim_total / static_cast<double>(rows.size());

  // Surrogate cost: one-time training plus per-configuration prediction.
  bench::Stopwatch train_watch;
  const auto deployed =
      dse::SurrogateSuite::deploy(rows, "total_latency_cycles", "svr");
  const double train_seconds = train_watch.seconds();

  bench::Stopwatch predict_watch;
  constexpr int kRepeats = 20;
  double checksum = 0.0;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    for (const auto& point : points) checksum += deployed.predict(point);
  }
  const double predict_per_config =
      predict_watch.seconds() / static_cast<double>(points.size() * kRepeats);

  std::printf("# Surrogate vs simulator cost (%zu configurations, trace of "
              "%zu events)\n",
              points.size(), trace.size());
  std::printf("simulator:  %.3f s total, %.3f ms/config\n", sim_total,
              sim_per_config * 1e3);
  std::printf("surrogate:  %.3f s one-time training, %.4f ms/config "
              "prediction\n",
              train_seconds, predict_per_config * 1e3);
  std::printf("speedup:    %.0fx per configuration (checksum %.3f)\n",
              sim_per_config / predict_per_config, checksum);
  std::printf("break-even: surrogate pays off after %.0f predictions\n",
              train_seconds / (sim_per_config - predict_per_config));
  std::printf("# shape check: surrogate >= 100x faster per config:   %s\n",
              sim_per_config / predict_per_config >= 100.0 ? "PASS" : "FAIL");
  return 0;
}
