/// \file bench_explorer.cpp
/// Streaming-acquisition gauge for the adaptive explorer: lazy decode
/// throughput over the 10^6-point grid, surrogate scoring rates (forest
/// mean and mean+spread, GP mean+variance), and the wall time of a full
/// closed loop (seed sample -> simulate -> train -> stream-score ->
/// acquire) over the million-point space.  Prints JSON; redirect to
/// BENCH_explorer.json to record a run.  Pass --quick for a
/// seconds-scale smoke with the same JSON shape.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "gmd/common/rng.hpp"
#include "gmd/dse/explorer.hpp"
#include "gmd/dse/lazy_space.hpp"
#include "gmd/ml/forest.hpp"
#include "gmd/ml/gp.hpp"
#include "gmd/ml/scaler.hpp"
#include "support.hpp"

namespace {

using namespace gmd;

/// Fits the space-bounds feature scaler the explorer uses per round.
ml::MinMaxScaler bounds_scaler(const dse::LazySpace& space) {
  std::vector<double> mins, maxs;
  space.feature_bounds(mins, maxs);
  for (std::size_t f = 0; f < mins.size(); ++f) {
    if (mins[f] > maxs[f]) std::swap(mins[f], maxs[f]);
  }
  return ml::MinMaxScaler::from_bounds(std::move(mins), std::move(maxs));
}

/// A deterministic surrogate training set: `n` space points with a
/// synthetic nonlinear response, scaled like the explorer scales them.
void training_set(const dse::LazySpace& space, const ml::MinMaxScaler& scaler,
                  std::size_t n, ml::Matrix* xs, std::vector<double>* y) {
  const std::size_t width = dse::DesignPoint::feature_names().size();
  Rng rng(7);
  ml::Matrix x(n, width);
  y->clear();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t index = rng.next_below(space.size());
    space.decode_features(index, index + 1, x.row(i));
    double response = 0.0;
    for (std::size_t c = 0; c < width; ++c) {
      response += std::sin(x.row(i)[c] * 0.001 + static_cast<double>(c));
    }
    y->push_back(response);
  }
  *xs = scaler.transform(x);
}

double timed_scan(const dse::LazySpace& space, const dse::BlockScorer& scorer,
                  std::size_t block_size, dse::StreamStats* stats = nullptr) {
  const bench::Stopwatch watch;
  const auto top =
      dse::stream_score_topk(space, scorer, 10, {}, block_size, 1, stats);
  (void)top;
  return watch.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  const dse::LazySpace space =
      quick ? dse::LazySpace::paper()
            : dse::LazySpace(dse::LazySpace::million_axes());
  const ml::MinMaxScaler scaler = bounds_scaler(space);
  const std::size_t n = space.size();

  // --- raw lazy decode: index -> feature row, no model ------------------
  const dse::BlockScorer sum_scorer = [](const ml::Matrix& x, std::size_t,
                                         std::span<double> out) {
    for (std::size_t r = 0; r < x.rows(); ++r) {
      double sum = 0.0;
      for (const double v : x.row(r)) sum += v;
      out[r] = sum;
    }
  };
  dse::StreamStats decode_stats;
  const double decode_seconds =
      timed_scan(space, sum_scorer, 8192, &decode_stats);

  // --- forest surrogate, trained like a mid-run explorer round ----------
  ml::Matrix xs;
  std::vector<double> y;
  training_set(space, scaler, 128, &xs, &y);
  ml::ForestParams forest_params;
  forest_params.num_trees = 32;
  ml::RandomForest forest(forest_params);
  forest.fit(xs, y);

  const dse::BlockScorer rf_mean = [&](const ml::Matrix& x, std::size_t,
                                       std::span<double> out) {
    const ml::Matrix scaled = scaler.transform(x);
    const std::vector<double> mu = forest.predict(scaled);
    std::copy(mu.begin(), mu.end(), out.begin());
  };
  const double rf_mean_seconds = timed_scan(space, rf_mean, 8192);

  const dse::BlockScorer rf_spread = [&](const ml::Matrix& x, std::size_t,
                                         std::span<double> out) {
    thread_local std::vector<double> mu;
    thread_local std::vector<double> var;
    const ml::Matrix scaled = scaler.transform(x);
    forest.predict_with_spread(scaled, mu, var);
    std::copy(var.begin(), var.end(), out.begin());
  };
  const double rf_spread_seconds = timed_scan(space, rf_spread, 8192);

  // --- GP surrogate: O(train^2) per row, so scan a bounded slice --------
  ml::Matrix gp_xs;
  std::vector<double> gp_y;
  training_set(space, scaler, 128, &gp_xs, &gp_y);
  ml::GaussianProcess gp;
  gp.fit(gp_xs, gp_y);
  const dse::BlockScorer gp_scorer = [&](const ml::Matrix& x, std::size_t,
                                         std::span<double> out) {
    thread_local std::vector<double> mu;
    thread_local std::vector<double> var;
    const ml::Matrix scaled = scaler.transform(x);
    gp.predict_with_variance(scaled, mu, var);
    std::copy(var.begin(), var.end(), out.begin());
  };
  const dse::LazySpace gp_space = dse::LazySpace::paper();
  const double gp_seconds = timed_scan(gp_space, gp_scorer, 8192);

  // --- the full closed loop over the same space -------------------------
  const auto trace = bench::paper_trace(quick ? 256 : 512);
  dse::ExplorerOptions options;
  options.model = "rf";
  options.initial_samples = 16;
  options.batch_size = 8;
  options.max_rounds = 2;
  options.simulation_budget = 32;
  options.rf_trees = 32;
  const bench::Stopwatch loop_watch;
  const dse::ExplorerResult result = run_explorer(space, trace, options);
  const double loop_seconds = loop_watch.seconds();

  std::printf("{\n");
  std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
  std::printf("  \"space_points\": %zu,\n", n);
  std::printf("  \"decode_rows_per_second\": %.0f,\n", n / decode_seconds);
  std::printf("  \"rf_mean_scorer_rows_per_second\": %.0f,\n",
              n / rf_mean_seconds);
  std::printf("  \"rf_spread_scorer_rows_per_second\": %.0f,\n",
              n / rf_spread_seconds);
  std::printf("  \"gp_variance_scorer_rows_per_second\": %.0f,\n",
              gp_space.size() / gp_seconds);
  std::printf("  \"closed_loop_seconds\": %.3f,\n", loop_seconds);
  std::printf("  \"closed_loop_rounds\": %zu,\n", result.rounds.size());
  std::printf("  \"closed_loop_simulations\": %zu,\n", result.labeled.size());
  std::printf("  \"closed_loop_scored\": %zu,\n", result.stream.scored);
  std::printf("  \"closed_loop_configs_per_second\": %.0f,\n",
              result.stream.scored / loop_seconds);
  std::printf("  \"blocks_streamed\": %zu\n",
              decode_stats.blocks + result.stream.blocks);
  std::printf("}\n");
  return 0;
}
