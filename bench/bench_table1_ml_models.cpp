/// \file bench_table1_ml_models.cpp
/// Reproduces Table I: MSE and R² of the four model families (Linear,
/// SVM/SVR, RF, GB) on the six memory response metrics, trained on the
/// 416-configuration sweep with an 80/20 split and min-max scaling —
/// the paper's exact evaluation protocol (§IV-A4).

#include <cstdio>

#include "gmd/dse/surrogate.hpp"
#include "support.hpp"

int main() {
  using namespace gmd;

  const auto trace = bench::paper_trace();
  const auto rows = bench::paper_sweep(trace);
  bench::Stopwatch watch;
  const auto suite = dse::SurrogateSuite::train(rows);
  std::printf("# Table I reproduction: %zu configurations, 80/20 split, "
              "min-max scaled targets (trained in %.1fs)\n\n",
              rows.size(), watch.seconds());
  std::printf("%s\n", suite.format_table1().c_str());

  // Paper shape checks: which families win where.
  const auto check = [&](const char* what, bool ok) {
    std::printf("#  %-54s %s\n", what, ok ? "PASS" : "FAIL");
  };
  std::printf("# shape checks vs. the paper (Table I):\n");
  check("every family reaches R2 ~ 1 on reads/writes",
        suite.score("reads_per_channel", "linear").r2 > 0.99 &&
            suite.score("writes_per_channel", "rf").r2 > 0.95);
  check("linear regression is exact on reads/writes",
        suite.score("reads_per_channel", "linear").mse < 1e-10);
  check("SVR beats linear on bandwidth",
        suite.score("bandwidth_mbs", "svr").mse <
            suite.score("bandwidth_mbs", "linear").mse);
  check("SVR beats linear on power",
        suite.score("power_w", "svr").mse <
            suite.score("power_w", "linear").mse);
  check("total latency is the hardest metric for linear",
        suite.score("total_latency_cycles", "linear").r2 <
            suite.score("reads_per_channel", "linear").r2);
  check("a kernel/ensemble model wins total latency",
        suite.best_model("total_latency_cycles").model != "linear");
  return 0;
}
