/// \file bench_ablation_transfer.cpp
/// The paper's §V "generalizability" and transfer-learning direction,
/// made concrete.  Two questions per metric:
///   1. Zero-shot: does an SVR trained on BFS's sweep predict another
///      workload's responses?  (The paper's single-workload protocol.)
///   2. Leave-one-workload-out: with workload descriptor features
///      (trace length, read fraction, footprint) and training data
///      from several kernels, does the model generalize to an unseen
///      kernel?  (The multi-workload DSE the paper proposes.)

#include <cmath>
#include <cstdio>

#include "gmd/dse/surrogate.hpp"
#include "gmd/ml/metrics.hpp"
#include "gmd/ml/regressor.hpp"
#include "gmd/trace/stats.hpp"
#include "support.hpp"

namespace {

using namespace gmd;

dse::WorkloadSweep make_workload_sweep(
    const std::string& name, const std::vector<dse::DesignPoint>& points) {
  const auto trace = bench::paper_trace(1024, name);
  const auto stats = trace::compute_stats(trace);
  dse::WorkloadSweep sweep;
  sweep.name = name;
  sweep.rows = dse::run_sweep(points, trace);
  sweep.log10_events = std::log10(static_cast<double>(stats.events));
  sweep.read_fraction = stats.read_fraction();
  sweep.footprint_kb = static_cast<double>(stats.footprint_bytes()) / 1024.0;
  return sweep;
}

double transfer_r2(const std::vector<dse::SweepRow>& train,
                   const std::vector<dse::SweepRow>& test,
                   const std::string& metric) {
  const auto deployed = dse::SurrogateSuite::deploy(train, metric, "svr");
  std::vector<double> truth, predicted;
  const auto& names = dse::target_metric_names();
  std::size_t index = 0;
  while (names[index] != metric) ++index;
  for (const auto& row : test) {
    truth.push_back(row.metrics.metric_values()[index]);
    predicted.push_back(deployed.predict(row.point));
  }
  return ml::r2_score(truth, predicted);
}

/// Leave-one-workload-out with descriptor features: train on every
/// workload except `held_out`, evaluate on it.
double lowo_r2(const std::vector<dse::WorkloadSweep>& sweeps,
               std::size_t held_out, const std::string& metric) {
  const dse::MetricDataset all =
      dse::build_multi_workload_dataset(sweeps, metric);
  // Rows are workload-major; find the held-out block.
  std::size_t begin = 0;
  for (std::size_t w = 0; w < held_out; ++w) begin += sweeps[w].rows.size();
  const std::size_t end = begin + sweeps[held_out].rows.size();

  std::vector<std::size_t> train_idx, test_idx;
  for (std::size_t i = 0; i < all.data.size(); ++i) {
    (i >= begin && i < end ? test_idx : train_idx).push_back(i);
  }
  const ml::Dataset train = all.data.subset(train_idx);
  const ml::Dataset test = all.data.subset(test_idx);
  const auto model = ml::make_regressor("svr");
  model->fit(train.X, train.y);
  return ml::r2_score(test.y, model->predict(test.X));
}

}  // namespace

int main() {
  const auto points = dse::reduced_design_space();
  const std::vector<std::string> names = {"bfs", "pagerank", "cc", "sssp"};
  std::vector<dse::WorkloadSweep> sweeps;
  for (const auto& name : names) {
    sweeps.push_back(make_workload_sweep(name, points));
  }
  const std::size_t pagerank_index = 1;
  const std::size_t cc_index = 2;

  std::printf("# Cross-workload surrogate transfer (SVR; %zu-point space "
              "per workload)\n\n",
              points.size());
  std::printf("%-22s %12s %14s %14s %12s %12s\n", "metric", "bfs->bfs",
              "bfs->pagerank", "bfs->cc", "LOWO->cc", "LOWO->pr");

  for (const std::string metric :
       {"power_w", "bandwidth_mbs", "latency_cycles",
        "total_latency_cycles"}) {
    const double self = transfer_r2(sweeps[0].rows, sweeps[0].rows, metric);
    const double to_pr =
        transfer_r2(sweeps[0].rows, sweeps[pagerank_index].rows, metric);
    const double to_cc =
        transfer_r2(sweeps[0].rows, sweeps[cc_index].rows, metric);
    const double lowo_cc = lowo_r2(sweeps, cc_index, metric);
    const double lowo_pr = lowo_r2(sweeps, pagerank_index, metric);
    std::printf("%-22s %12.4f %14.4f %14.4f %12.4f %12.4f\n", metric.c_str(),
                self, to_pr, to_cc, lowo_cc, lowo_pr);
  }

  std::printf(
      "\n# reading: zero-shot transfer (the paper's single-workload\n"
      "# protocol applied to a new kernel) holds for power on similar\n"
      "# kernels and collapses for latency. Leave-one-workload-out with\n"
      "# workload descriptor features recovers accuracy when the held-\n"
      "# out kernel's descriptors lie inside the training range (cc\n"
      "# between bfs and sssp) but not when they extrapolate (pagerank\n"
      "# is 15x longer and 30%% write-heavy) — i.e. multi-workload DSE\n"
      "# needs training kernels that bracket the deployment kernels.\n");
  return 0;
}
