/// \file bench_tracestore.cpp
/// GMDT container gauge: generates a >=1M-event BFS trace (the paper's
/// workload at scale), writes it as NVMain text and as a GMDT store,
/// and measures on-disk size, pack throughput, and load throughput for
/// both containers — plus a 416-point sweep equivalence check proving
/// the store feed is bit-identical to the text feed.  Prints JSON
/// (redirect to BENCH_tracestore.json to record a run).

#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gmd/common/thread_pool.hpp"
#include "gmd/cpusim/workloads.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/sweep.hpp"
#include "gmd/graph/generators.hpp"
#include "gmd/trace/converter.hpp"
#include "gmd/trace/formats.hpp"
#include "gmd/tracestore/reader.hpp"
#include "gmd/tracestore/writer.hpp"

namespace {

using namespace gmd;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<cpusim::MemoryEvent> make_trace(std::uint32_t vertices) {
  graph::UniformRandomParams params;
  params.num_vertices = vertices;
  params.edge_factor = 16;
  graph::EdgeList list = graph::generate_uniform_random(params);
  graph::symmetrize(list);
  graph::remove_self_loops_and_duplicates(list);
  const auto g = graph::CsrGraph::from_edge_list(list);
  cpusim::VectorSink sink;
  cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
  cpusim::BfsWorkload(g, 0).run(cpu);
  return sink.take();
}

std::size_t file_bytes(const std::string& path) {
  return static_cast<std::size_t>(std::filesystem::file_size(path));
}

}  // namespace

int main() {
  const std::string dir = "/tmp/gmd_bench_tracestore";
  std::filesystem::create_directories(dir);
  const std::string gem5_path = dir + "/bench.gem5.txt";
  const std::string nvmain_path = dir + "/bench.nvmain.txt";
  const std::string store_path = dir + "/bench.gmdt";

  // ~16K vertices x edge factor 16 BFS yields >1M memory events.
  const auto events = make_trace(16384);

  {
    std::ofstream out(gem5_path);
    trace::Gem5TraceWriter writer(out);
    for (const auto& event : events) writer.on_event(event);
  }

  // Pack both containers from the same gem5 text, timed.
  const auto text_pack_start = Clock::now();
  trace::convert_gem5_to_nvmain(gem5_path, nvmain_path);
  const double text_pack_seconds = seconds_since(text_pack_start);

  const auto store_pack_start = Clock::now();
  trace::convert_gem5_to_gmdt(gem5_path, store_path);
  const double store_pack_seconds = seconds_since(store_pack_start);

  // Load throughput: NVMain text parse vs GMDT decode (sequential and
  // parallel).  Warm runs; take the best of 3 to reduce filesystem
  // cache noise.
  double text_load_seconds = 1e30;
  std::size_t text_events = 0;
  for (int run = 0; run < 3; ++run) {
    const auto start = Clock::now();
    std::ifstream in(nvmain_path);
    const auto loaded = trace::read_nvmain_trace(in);
    text_load_seconds = std::min(text_load_seconds, seconds_since(start));
    text_events = loaded.size();
  }

  double store_load_seconds = 1e30;
  std::size_t store_events = 0;
  for (int run = 0; run < 3; ++run) {
    const auto start = Clock::now();
    const tracestore::TraceStoreReader reader(store_path);
    const auto loaded = reader.read_all();
    store_load_seconds = std::min(store_load_seconds, seconds_since(start));
    store_events = loaded.size();
  }

  double store_parallel_load_seconds = 1e30;
  {
    ThreadPool pool;
    for (int run = 0; run < 3; ++run) {
      const auto start = Clock::now();
      const tracestore::TraceStoreReader reader(store_path);
      const auto loaded = reader.read_all(pool);
      store_parallel_load_seconds =
          std::min(store_parallel_load_seconds, seconds_since(start));
    }
  }

  // Sweep equivalence on the paper's 416-point space (1024-vertex
  // trace, as in BENCH_sweep): text-fed vs store-fed rows must carry
  // bit-identical metrics.
  const auto sweep_trace = make_trace(1024);
  const std::string sweep_gem5 = dir + "/sweep.gem5.txt";
  const std::string sweep_store = dir + "/sweep.gmdt";
  {
    std::ofstream out(sweep_gem5);
    trace::Gem5TraceWriter writer(out);
    for (const auto& event : sweep_trace) writer.on_event(event);
  }
  const std::string sweep_nvmain = dir + "/sweep.nvmain.txt";
  trace::convert_gem5_to_nvmain(sweep_gem5, sweep_nvmain);
  trace::convert_gem5_to_gmdt(sweep_gem5, sweep_store);
  std::vector<cpusim::MemoryEvent> text_sweep_events;
  {
    std::ifstream in(sweep_nvmain);
    text_sweep_events = trace::read_nvmain_trace(in);
  }
  const auto points = dse::paper_design_space();
  const auto text_rows = dse::run_sweep(points, text_sweep_events);

  const tracestore::TraceStoreReader sweep_reader(sweep_store);
  const auto store_sweep_start = Clock::now();
  const auto store_rows = dse::run_sweep(points, sweep_reader);
  const double store_sweep_seconds = seconds_since(store_sweep_start);

  std::size_t mismatched_rows = 0;
  for (std::size_t i = 0; i < text_rows.size(); ++i) {
    const auto a = text_rows[i].metrics.metric_values();
    const auto b = store_rows[i].metrics.metric_values();
    bool equal = a.size() == b.size();
    for (std::size_t k = 0; equal && k < a.size(); ++k) {
      equal = std::bit_cast<std::uint64_t>(a[k]) ==
              std::bit_cast<std::uint64_t>(b[k]);
    }
    if (!equal) ++mismatched_rows;
  }

  const std::size_t text_bytes = file_bytes(nvmain_path);
  const std::size_t store_bytes = file_bytes(store_path);
  const double size_ratio =
      static_cast<double>(text_bytes) / static_cast<double>(store_bytes);
  const double load_speedup = text_load_seconds / store_load_seconds;
  const double parallel_load_speedup =
      text_load_seconds / store_parallel_load_seconds;

  std::printf("{\n");
  std::printf("  \"trace_events\": %zu,\n", events.size());
  std::printf("  \"gem5_text_bytes\": %zu,\n", file_bytes(gem5_path));
  std::printf("  \"nvmain_text_bytes\": %zu,\n", text_bytes);
  std::printf("  \"gmdt_bytes\": %zu,\n", store_bytes);
  std::printf("  \"size_ratio_text_over_gmdt\": %.2f,\n", size_ratio);
  std::printf("  \"text_pack_seconds\": %.4f,\n", text_pack_seconds);
  std::printf("  \"gmdt_pack_seconds\": %.4f,\n", store_pack_seconds);
  std::printf("  \"text_load_seconds\": %.4f,\n", text_load_seconds);
  std::printf("  \"gmdt_load_seconds\": %.4f,\n", store_load_seconds);
  std::printf("  \"gmdt_parallel_load_seconds\": %.4f,\n",
              store_parallel_load_seconds);
  std::printf("  \"load_speedup_vs_text\": %.2f,\n", load_speedup);
  std::printf("  \"parallel_load_speedup_vs_text\": %.2f,\n",
              parallel_load_speedup);
  std::printf("  \"loaded_events_match\": %s,\n",
              text_events == store_events ? "true" : "false");
  std::printf("  \"sweep_points\": %zu,\n", store_rows.size());
  std::printf("  \"store_fed_sweep_seconds\": %.3f,\n", store_sweep_seconds);
  std::printf("  \"sweep_rows_bit_identical\": %s\n",
              mismatched_rows == 0 ? "true" : "false");
  std::printf("}\n");
  return mismatched_rows == 0 ? 0 : 1;
}
